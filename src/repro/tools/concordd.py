"""The ``concordd`` CLI: scripted control-plane rollout scenarios.

Usage::

    python -m repro.tools.concordd rollout
    python -m repro.tools.concordd rollout --locks 8 --seed 3 --audit
    python -m repro.tools.concordd drill --seed 5

The ``rollout`` scenario is the acceptance path for the control plane:
two clients share one kernel running a contended shard workload;
*alice* submits a **bad NUMA policy** (anti-NUMA waiter grouping plus an
expensive per-acquisition accounting program — Table 1's "increase
critical section" hazard), *bob* submits the paper's **good NUMA
policy**.  Both roll out through the canary engine; the SLO guard must
catch alice's policy mid-benchmark and roll it back, while bob's reaches
ACTIVE fleet-wide.  Exit status 0 means exactly that happened.

The ``drill`` scenario is the acceptance path for the robustness layer:
it kills the daemon (:class:`~repro.faults.InjectedCrash`) mid-canary
under an adversarial fault plan, restarts it over the same journal,
and asserts :meth:`Concordd.recover` restores the world — the healthy
ACTIVE policy re-attached with the same hook programs and lock impls,
the crashed canary ROLLED_BACK with its installation gone, journal and
audit in agreement — then trips the runtime circuit breaker on the
survivor and asserts fail-open degradation to stock lock behaviour.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List

from ..bpf.maps import HashMap
from ..concord import Concord
from ..concord.policies import make_numa_policy
from ..concord.policy import PolicySpec
from ..controlplane import (
    AdaptationLoop,
    AllOf,
    Concordd,
    FairnessGuard,
    PolicyJournal,
    PolicyState,
    PolicySubmission,
    SLOGuard,
    TailWaitGuard,
    culling_impl_factory,
)
from ..controlplane.journal import JournalCorruption
from ..faults import (
    SITE_ADAPTIVE_PROPOSE,
    SITE_NET_LINK_DELIVER,
    SITE_NET_PARTITION_FLIP,
    SITE_REPLICATION_APPEND,
    FaultPlan,
    InjectedCrash,
    injected,
)
from ..fleet import (
    FleetCoordinator,
    FleetManager,
    FleetRolloutState,
    HealthMonitor,
    PlacementMap,
    RolloutPlanner,
)
from ..fleet.planner import FleetPlan, WaveSpec
from ..kernel import Kernel
from ..locks import MCSLock, ShflLock, SpinParkMutex
from ..locks.culling import CullingLock
from ..locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED
from ..netsim import Fabric, LinkModel, PartitionEvent, PartitionSchedule
from ..replication import (
    ReplicaGroup,
    SerializationLedger,
    SiteState,
    SiteUnreadable,
    StaleLeaderFenced,
    TxnStatus,
)
from ..sim import Topology, ops
from ..storage import Scrubber, flip_byte, fold_entries
from ..traffic import (
    LockBinding,
    PhaseSchedule,
    PoissonProcess,
    Tenant,
    TenantSet,
    TraceGenerator,
    TraceRunner,
)
from ..userspace import PolicyClient
from ..workloads import MalthusianBench, format_sweep_table, knee_threads, sweep

__all__ = [
    "main",
    "build_parser",
    "bad_numa_submission",
    "tail_spike_submission",
    "run_adapt_scenario",
    "run_rollout_scenario",
    "run_drill_scenario",
    "run_fleet_scenario",
    "run_fleet_degraded_scenario",
    "run_guards_scenario",
    "run_partition_scenario",
    "run_replicated_scenario",
    "run_scrub_scenario",
    "run_traffic_scenario",
]

#: Anti-NUMA grouping: prefer waiters from the *other* socket — exactly
#: backwards from ShflLock's point, so handoffs bounce the cache line
#: across the interconnect.
ANTI_NUMA_SOURCE = """
def anti_numa(ctx):
    return ctx.curr_socket != ctx.shuffler_socket
"""

#: A per-acquisition "NUMA accounting" program fat enough to matter:
#: runs with the lock held (Table 1: increase critical section).
NUMA_AUDIT_SOURCE = """
def numa_audit(ctx):
    acc = 0
    for i in range(60):
        acc = acc + ctx.socket
        acc = acc ^ i
    return 0
"""


def bad_numa_submission(lock_selector: str, name: str = "bad-numa") -> PolicySubmission:
    """The scenario's misbehaving policy bundle."""
    return PolicySubmission(
        specs=(
            PolicySpec(
                name=name,
                hook=HOOK_CMP_NODE,
                source=ANTI_NUMA_SOURCE,
                lock_selector=lock_selector,
            ),
            PolicySpec(
                name=f"{name}.audit",
                hook=HOOK_LOCK_ACQUIRED,
                source=NUMA_AUDIT_SOURCE,
                lock_selector=lock_selector,
            ),
        ),
    )


#: A tail-spike policy: cheap bookkeeping on every acquisition, plus an
#: expensive "audit" burn on every 64th — rare enough to leave the mean
#: wait nearly untouched, heavy enough to multiply the p99.  This is the
#: regression class an average-based SLO guard is structurally blind to.
TAIL_SPIKE_SOURCE = """
def tail_spike(ctx):
    if ctx.lock_id == target.lookup(0):
        n = seen.lookup(ctx.lock_id) + 1
        seen.update(ctx.lock_id, n)
        if n % 32 == 0:
            acc = 0
            for i in range(60):
                acc = acc + i
                acc = acc ^ n
    return 0
"""

#: Second half of the spike: a separate program (own verifier insn
#: budget) reading the same counter, so the combined burn is twice what
#: any single program may cost.
TAIL_SPIKE_ECHO_SOURCE = """
def tail_spike_echo(ctx):
    if ctx.lock_id == target.lookup(0):
        n = seen.lookup(ctx.lock_id)
        if n % 32 == 0:
            acc = 0
            for i in range(60):
                acc = acc + i
                acc = acc ^ n
    return 0
"""


def tail_spike_submission(
    target_lock_id: int,
    lock_selector: str = "svc.*.lock",
    name: str = "tail-spike",
) -> PolicySubmission:
    """A policy whose damage is confined to one lock's tail latency.

    The selector covers the whole shard set (so the canary set can
    include healthy locks that keep the *average* in budget) but the
    burn fires only on ``target_lock_id``, pre-seeded into the policy's
    config map, and only on every 32nd acquisition — the mean barely
    moves, the p99 multiplies.
    """
    target = HashMap(f"{name}.target", max_entries=4)
    target.update(0, target_lock_id)
    seen = HashMap(f"{name}.seen", max_entries=65536)
    maps = {"seen": seen, "target": target}
    return PolicySubmission(
        specs=(
            PolicySpec(
                name=name,
                hook=HOOK_LOCK_ACQUIRED,
                source=TAIL_SPIKE_SOURCE,
                maps=dict(maps),
                lock_selector=lock_selector,
            ),
            PolicySpec(
                name=f"{name}.echo",
                hook=HOOK_LOCK_ACQUIRED,
                source=TAIL_SPIKE_ECHO_SOURCE,
                maps=dict(maps),
                lock_selector=lock_selector,
            ),
        ),
    )


def _spawn_shard_workload(kernel, stop_at: int, tasks_per_lock: int, cs_ns: int) -> List:
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names("svc.*.lock"):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


def run_rollout_scenario(args) -> int:
    """One kernel by default; ``--kernels N`` repeats the scenario on N
    independent kernels (seed offset per kernel) — every one must pass."""
    nr_kernels = getattr(args, "kernels", 1)
    status = 0
    for index in range(nr_kernels):
        if nr_kernels > 1:
            if index:
                print()
            print(f"=== kernel k{index} (seed {args.seed + index}) ===")
        if _rollout_once(args, seed=args.seed + index) != 0:
            status = 1
    return status


def _rollout_once(args, seed: int) -> int:
    kernel = Kernel(
        Topology(sockets=args.sockets, cores_per_socket=args.cores), seed=seed
    )
    for index in range(args.locks):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    daemon = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=args.max_regression),
        canary_fraction=0.5,
    )
    alice = PolicyClient.connect(daemon, "alice", allowed_selectors=("svc.*",))
    bob = PolicyClient.connect(daemon, "bob", allowed_selectors=("svc.*",))

    stop_at = kernel.now + args.duration_ns
    tasks = _spawn_shard_workload(kernel, stop_at, args.tasks_per_lock, args.cs_ns)

    window = args.duration_ns // 8
    alice.submit(bad_numa_submission("svc.*.lock"))
    bad = alice.rollout(
        "bad-numa",
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 4,
    )
    bob.submit(
        PolicySubmission(
            spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good")
        )
    )
    good = bob.rollout(
        "numa-good",
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 4,
    )
    kernel.run()  # drain the workload

    print(f"bad policy  : {bad.state.name:<12} {bad.verdict.describe()}")
    print(f"good policy : {good.state.name:<12} {good.verdict.describe()}")
    stalled = [t for t in tasks if t.stats.get("ops", 0) == 0]
    print(
        f"workload    : {len(tasks)} tasks, "
        f"{sum(t.stats.get('ops', 0) for t in tasks)} ops, "
        f"{len(stalled)} stalled"
    )
    if args.audit:
        print("\naudit log:")
        print(daemon.audit.format())

    ok = (
        bad.state is PolicyState.ROLLED_BACK
        and good.state is PolicyState.ACTIVE
        and not stalled
    )
    if not ok:
        print("scenario FAILED: expected bad-numa ROLLED_BACK + numa-good ACTIVE", file=sys.stderr)
    return 0 if ok else 1


#: The drill's healthy workhorse policy: per-acquisition metering.
STEADY_SOURCE = """
def steady(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def _spin_park(old):
    """The drill's implementation switch (registered as ``spin_park``)."""
    return SpinParkMutex(old.engine, name=f"sp.{old.name}")


def _steady_submission(name: str = "steady") -> PolicySubmission:
    return PolicySubmission(
        spec=PolicySpec(
            name=name,
            hook=HOOK_LOCK_ACQUIRED,
            source=STEADY_SOURCE.replace("steady", name.replace("-", "_")),
            maps={"hits": HashMap(f"{name}.hits", max_entries=65536)},
            lock_selector="svc.*.lock",
        ),
    )


def _doomed_submission() -> PolicySubmission:
    return PolicySubmission(
        spec=PolicySpec(
            name="doomed",
            hook=HOOK_LOCK_ACQUIRED,
            source=STEADY_SOURCE.replace("steady", "doomed"),
            maps={"hits": HashMap("doomed.hits", max_entries=65536)},
            lock_selector="svc.*.lock",
        ),
        impl_factory=_spin_park,
        impl_name="spin_park",
    )


def _check(failures: List[str], ok: bool, what: str) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {what}")
    if not ok:
        failures.append(what)


def run_drill_scenario(args) -> int:
    """One kernel by default; ``--kernels N`` drills N independent
    kernels, each over its own journal shard (``<path>.kI``)."""
    nr_kernels = getattr(args, "kernels", 1)
    status = 0
    for index in range(nr_kernels):
        if nr_kernels > 1:
            if index:
                print()
            print(f"=== kernel k{index} (seed {args.seed + index}) ===")
        journal = args.journal
        if journal is not None and nr_kernels > 1:
            journal = f"{journal}.k{index}"
        if _drill_once(args, seed=args.seed + index, journal=journal) != 0:
            status = 1
    return status


def _drill_once(args, seed: int, journal: str | None) -> int:
    journal_path = journal or os.path.join(
        tempfile.mkdtemp(prefix="concordd-drill-"), "journal.jsonl"
    )
    registry = {"spin_park": _spin_park}
    kernel = Kernel(
        Topology(sockets=args.sockets, cores_per_socket=args.cores), seed=seed
    )
    for index in range(args.locks):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel, fault_threshold=5)
    selector_locks = kernel.locks.select_names("svc.*.lock")
    original_impls = {
        name: kernel.locks.get(name).core.impl for name in selector_locks
    }
    failures: List[str] = []

    daemon_a = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=0.50),
        journal=PolicyJournal(journal_path),
        impl_registry=registry,
    )
    ops_client = PolicyClient.connect(daemon_a, "ops", allowed_selectors=("svc.*",))
    window = args.duration_ns // 8
    tasks = _spawn_shard_workload(
        kernel, kernel.now + args.duration_ns, args.tasks_per_lock, args.cs_ns
    )

    # -- phase 1: a healthy policy reaches ACTIVE ----------------------
    print(f"phase 1: steady policy rollout (journal: {journal_path})")
    ops_client.submit(_steady_submission())
    steady_a = ops_client.rollout("steady", baseline_ns=window, canary_ns=window)
    _check(failures, steady_a.state is PolicyState.ACTIVE, "steady is ACTIVE")
    steady_programs = {
        name: concord.policies[name].program for name in ("steady",)
    }

    # -- phase 2: kill -9 mid-canary under an adversarial plan ---------
    print("phase 2: daemon killed mid-canary (adversarial fault plan)")
    kill_plan = FaultPlan(seed=seed, name="kill9")
    kill_plan.crash("controlplane.canary.checkpoint", after=1)
    kill_plan.stall("livepatch.drain", delay_ns=4 * window, times=4)
    ops_client.submit(_doomed_submission())
    crashed = False
    try:
        with injected(kill_plan):
            ops_client.rollout(
                "doomed",
                baseline_ns=window,
                canary_ns=4 * window,
                check_every_ns=window // 2,
            )
    except InjectedCrash:
        crashed = True
    daemon_a.detach()  # the process is gone; nothing was torn down
    _check(failures, crashed, "InjectedCrash unwound the rollout, no teardown ran")
    _check(failures, "doomed" in concord.policies, "doomed's canary programs still loaded")
    _check(failures, bool(kernel.patcher.active), "doomed's impl patches still active")

    # -- phase 3: restart + recover under verifier flakes --------------
    print("phase 3: new daemon recovers from the journal (flaky verifier)")
    daemon_b = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=0.50),
        journal=PolicyJournal(journal_path),
        impl_registry=registry,
    )
    flake_plan = FaultPlan(seed=seed, name="flaky-recovery")
    flake_plan.fail("concord.verifier", times=2)
    with injected(flake_plan):
        summary = daemon_b.recover()
    steady_b = daemon_b.status("steady")
    doomed_b = daemon_b.status("doomed")
    _check(failures, summary["reattached"] == ["steady"], "recover() re-attached steady")
    _check(failures, steady_b.state is PolicyState.ACTIVE, "steady still ACTIVE after recovery")
    _check(
        failures,
        concord.policies["steady"].program is steady_programs["steady"]
        and sorted(concord.policies["steady"].attached_locks) == selector_locks,
        "steady's hook program unchanged and attached to every target lock",
    )
    _check(failures, doomed_b.state is PolicyState.ROLLED_BACK, "doomed is ROLLED_BACK")
    _check(failures, not kernel.patcher.active, "doomed's impl patches reverted")
    _check(
        failures,
        flake_plan.fired["concord.verifier"] == 2,
        "recovery retried through 2 injected verifier flakes",
    )
    journal = PolicyJournal(journal_path)
    _check(
        failures,
        journal.last_transition("steady")["to"] == steady_b.state.name
        and journal.last_transition("doomed")["to"] == doomed_b.state.name,
        "journal and audit agree on both final states",
    )
    kernel.run(until=kernel.now + window)  # let revert drains finish
    _check(
        failures,
        all(
            kernel.locks.get(name).core.impl is original_impls[name]
            for name in selector_locks
        ),
        "every lock is back on its pre-drill implementation",
    )

    # -- phase 4: trip the circuit breaker on the survivor -------------
    # Three equal windows on the still-running workload: policy attached
    # and healthy, then faulting (the breaker trips within the first few
    # acquisitions), then pure stock.  Stock out-producing the attached
    # window is the measurable revert: no trampoline dispatch and no
    # hook program left on the acquisition path.
    print("phase 4: runtime faults trip the breaker (fail-open)")

    def total_ops():
        return sum(t.stats.get("ops", 0) for t in tasks)

    start_ops = total_ops()
    kernel.run(until=kernel.now + window)
    active_ops = total_ops() - start_ops  # window 1: policy attached
    fault_plan = FaultPlan(seed=seed, name="helper-faults")
    fault_plan.fail("bpf.helper", times=None, match={"program": "steady*"})
    with injected(fault_plan):
        kernel.run(until=kernel.now + window)  # window 2: faults trip it
    after_faulting = total_ops()
    kernel.run(until=kernel.now + window)
    stock_ops = total_ops() - after_faulting  # window 3: pure stock
    _check(failures, steady_b.state is PolicyState.ROLLED_BACK, "breaker rolled steady back")
    _check(failures, "steady" not in concord.policies, "steady's programs detached")
    _check(
        failures,
        all(not concord.chain(name, HOOK_LOCK_ACQUIRED) for name in selector_locks),
        "no hook chain left on any lock (stock behaviour)",
    )
    _check(
        failures,
        stock_ops >= active_ops,
        f"stock lock out-produces the policy-attached window "
        f"({stock_ops} vs {active_ops} ops): the detach is measurable",
    )
    _check(
        failures,
        PolicyJournal(journal_path).last_transition("steady")["to"] == "ROLLED_BACK",
        "the fail-open rollback was journaled",
    )

    kernel.run()  # drain the workload
    if args.audit:
        print("\naudit log:")
        print(daemon_b.audit.format())
    if failures:
        print(f"\ndrill FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ndrill passed: crash, recovery, and fail-open all behaved")
    return 0


def _good_numa_factory(member) -> PolicySubmission:
    return PolicySubmission(
        spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good")
    )


def _build_fleet(args, journal_dir: str) -> FleetManager:
    """``--kernels`` members, k0 quiet (the canary pick), the rest busy,
    each with its own journal shard under ``journal_dir``."""
    fleet = FleetManager()
    for index in range(args.kernels):
        kernel = Kernel(
            Topology(sockets=args.sockets, cores_per_socket=args.cores),
            seed=args.seed + index,
        )
        nr_locks = 2 if index == 0 else args.locks
        for i in range(nr_locks):
            kernel.add_lock(
                f"svc.shard{i}.lock", ShflLock(kernel.engine, name=f"shard{i}")
            )
        fleet.register(
            f"k{index}",
            kernel,
            guard=SLOGuard(max_avg_wait_regression=args.max_regression),
            canary_fraction=0.5,
            journal=PolicyJournal(
                os.path.join(journal_dir, f"journal.k{index}.jsonl")
            ),
        )
        tasks_per_lock = 1 if index == 0 else args.tasks_per_lock
        _spawn_shard_workload(
            kernel, kernel.now + args.duration_ns, tasks_per_lock, args.cs_ns
        )
    return fleet


def run_fleet_scenario(args) -> int:
    """The fleet acceptance path: one policy, many kernels, waves.

    Three phases over ``--kernels`` independent kernels (k0 quiet, the
    rest busy, so blast radius picks k0 as the canary wave):

    1. the **bad** NUMA policy survives the quiet canary kernel, then
       breaches the busy cohort's SLO guards — the fleet verdict halts
       the rollout and reverts every already-patched kernel to stock;
    2. the **good** NUMA policy walks the same waves to fleet-wide
       ACTIVE;
    3. a **mid-wave crash** (``kill -9`` entering wave 1) leaves a
       partial fleet; a fresh coordinator over the on-disk journals
       resumes wave 1 and converges — never a split fleet.
    """
    if args.kernels < 3:
        print("error: fleet scenario needs --kernels >= 3", file=sys.stderr)
        return 2
    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-fleet-")
    fleet_journal_path = os.path.join(journal_dir, "fleet.jsonl")
    failures: List[str] = []
    fleet = _build_fleet(args, journal_dir)

    print(f"fleet of {len(fleet)} kernels (journals: {journal_dir})")
    placement = PlacementMap.learn(fleet, "svc.*.lock", window_ns=args.duration_ns // 20)
    print(placement.describe())

    window = args.duration_ns // 10
    rollout_kwargs = dict(
        baseline_ns=window, canary_ns=2 * window, check_every_ns=window // 4
    )
    planner = RolloutPlanner(
        max_concurrent_kernels=args.max_concurrent_kernels,
        canary_kernels=1,
        bake_ns=window // 2,
    )
    coordinator = FleetCoordinator(fleet, journal=PolicyJournal(fleet_journal_path))

    def fleet_stock(policy):
        return all(
            (member.daemon.records.get(policy) is None
             or not member.daemon.records[policy].live)
            and policy not in member.concord.policies
            for member in fleet.members()
        )

    def fleet_active(policy):
        return all(
            (record := member.daemon.records.get(policy)) is not None
            and record.state is PolicyState.ACTIVE
            for member in fleet.members()
        )

    # -- phase 1: bad policy halts the fleet ---------------------------
    print("\nphase 1: bad NUMA policy — cross-kernel breach must halt the fleet")
    plan = planner.plan("bad-numa", placement)
    print(plan.describe())
    _check(failures, len(plan.waves) >= 2, f"plan rolls out in {len(plan.waves)} waves")
    _check(
        failures,
        plan.waves[0].canary and plan.waves[0].kernels == ["k0"],
        "canary wave is the lowest-blast-radius kernel (k0)",
    )
    bad = coordinator.execute(
        plan, lambda member: bad_numa_submission("svc.*.lock"), **rollout_kwargs
    )
    print(bad.describe())
    _check(failures, bad.state is FleetRolloutState.HALTED, "fleet verdict HALTED the rollout")
    _check(
        failures,
        any(state != "ACTIVE" for state in bad.outcomes.values()),
        "at least one cohort kernel breached its canary",
    )
    _check(failures, fleet_stock("bad-numa"), "every patched kernel reverted to stock")

    # -- phase 2: good policy goes fleet-wide --------------------------
    print("\nphase 2: good NUMA policy — same waves, fleet-wide ACTIVE")
    plan = planner.plan("numa-good", placement)
    good = coordinator.execute(plan, _good_numa_factory, **rollout_kwargs)
    print(good.describe())
    _check(failures, good.state is FleetRolloutState.COMPLETE, "rollout COMPLETE")
    _check(failures, fleet_active("numa-good"), "numa-good ACTIVE on every kernel")

    # -- phase 3: mid-wave crash, recover from journals ----------------
    print("\nphase 3: daemon killed between waves; recovery resumes, never splits")
    plan = planner.plan("steady", placement)
    kill_plan = FaultPlan(seed=args.seed, name="fleet-kill9")
    kill_plan.crash("fleet.wave.checkpoint", after=1, times=1)
    crashed = False
    try:
        with injected(kill_plan):
            coordinator.execute(
                plan, lambda member: _steady_submission(), **rollout_kwargs
            )
    except InjectedCrash:
        crashed = True
    _check(failures, crashed, "InjectedCrash killed the coordinator entering wave 1")
    wave0 = plan.waves[0].kernels
    _check(
        failures,
        all(
            fleet.member(k).daemon.records["steady"].state is PolicyState.ACTIVE
            for k in wave0
        )
        and all(
            "steady" not in fleet.member(k).daemon.records
            for k in plan.kernels()
            if k not in wave0
        ),
        "crash left a partial fleet (wave 0 patched, later waves not)",
    )
    fresh = FleetCoordinator(fleet, journal=PolicyJournal(fleet_journal_path))
    resumed = fresh.recover(lambda member: _steady_submission(), **rollout_kwargs)
    print(resumed.describe() if resumed is not None else "recovery: nothing in flight")
    _check(
        failures,
        resumed is not None and resumed.state is FleetRolloutState.COMPLETE,
        "recovery resumed the remaining waves to COMPLETE",
    )
    _check(
        failures,
        resumed is not None and resumed.resumed_from_wave == 1,
        "recovery resumed from wave 1 (completed wave trusted)",
    )
    _check(failures, fleet_active("steady"), "steady ACTIVE on every kernel — no split fleet")

    if args.audit:
        for member in fleet.members():
            print(f"\naudit log ({member.name}):")
            print(member.daemon.audit.format())
    if failures:
        print(f"\nfleet scenario FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfleet scenario passed: halt-and-revert, fleet-wide rollout, "
          "and mid-wave crash recovery all behaved")
    return 0


def _kill_member_at_bake(victim: str, seed: int) -> FaultPlan:
    """A persistent outage: the victim answers once more (so it gets
    patched), then every later call to it fails — died mid-wave."""
    plan = FaultPlan(seed=seed, name=f"kill-{victim}")
    plan.fail(
        "fleet.member.call",
        times=None,
        after=1,
        match={"kernel": victim, "op": "bake"},
    )
    return plan


def run_fleet_degraded_scenario(args) -> int:
    """The fleet-health acceptance path: a member dies mid-wave.

    Four phases over ``--kernels`` kernels (minimum 4, so a 0.5 quorum
    survives one dead member; k0 quiet, the rest busy):

    1. **health probes**: every member answers its liveness probe
       (daemon responds, kernel clock advances, journal shard
       appendable) and heartbeats its own journal shard;
    2. **any-breach + death**: one cohort member is killed at its bake;
       the unreachable member breaches the fleet verdict, the rollout
       halts, the victim is quarantined with its installed policy
       journaled as revert debt, and every *reachable* kernel converges
       to stock;
    3. **reinstate + recover**: a fresh coordinator over the same fleet
       journal unwinds the halted rollout, rebuilds the debt ledger
       from the journal, and drains it — the victim comes back at a
       higher epoch, stock like everyone else;
    4. **quorum + death, then heal**: a 0.5-quorum rollout with the
       same member killed again completes *degraded* (survivors at
       plan, the victim quarantined as journaled debt); after a second
       reinstate + recover the debt is drained and a fresh fleet-wide
       rollout reaches ACTIVE on every kernel.
    """
    if args.kernels < 4:
        print("error: fleet-degraded scenario needs --kernels >= 4", file=sys.stderr)
        return 2
    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-degraded-")
    fleet_journal_path = os.path.join(journal_dir, "fleet.jsonl")
    failures: List[str] = []
    fleet = _build_fleet(args, journal_dir)
    print(f"fleet of {len(fleet)} kernels (journals: {journal_dir})")

    placement = PlacementMap.learn(
        fleet, "svc.*.lock", window_ns=args.duration_ns // 20
    )
    window = args.duration_ns // 10
    rollout_kwargs = dict(
        baseline_ns=window, canary_ns=2 * window, check_every_ns=window // 4
    )
    planner_kwargs = dict(
        max_concurrent_kernels=args.max_concurrent_kernels,
        canary_kernels=1,
        bake_ns=window // 2,
    )

    def fleet_events():
        return [
            e.get("event")
            for e in PolicyJournal(fleet_journal_path).entries()
            if e.get("kind") == "fleet"
        ]

    def member_stock(name, policy):
        member = fleet.member(name)
        record = member.daemon.records.get(policy)
        return (record is None or not record.live) and (
            policy not in member.concord.policies
        )

    # -- phase 1: everyone answers the health probe --------------------
    print("\nphase 1: liveness probes — daemon, clock, journal shard")
    monitor = HealthMonitor(fleet)
    probes = monitor.probe_all()
    _check(
        failures,
        len(probes) == len(fleet) and all(r.ok for r in probes.values()),
        f"all {len(probes)} members probe HEALTHY",
    )
    _check(
        failures,
        all(
            any(e.get("kind") == "heartbeat" for e in m.journal.entries())
            for m in fleet.members()
        ),
        "every member heartbeat reached its own journal shard",
    )

    # -- phase 2: any-breach rollout, one member dies at its bake ------
    print("\nphase 2: any-breach rollout — a cohort member dies mid-wave")
    coordinator = FleetCoordinator(
        fleet, journal=PolicyJournal(fleet_journal_path), health=monitor
    )
    plan = RolloutPlanner(**planner_kwargs).plan("steady", placement)
    victim = plan.waves[1].kernels[0]
    print(f"victim: {victim} (killed after it is patched, before its bake)")
    with injected(_kill_member_at_bake(victim, args.seed)):
        halted = coordinator.execute(
            plan, lambda member: _steady_submission(), **rollout_kwargs
        )
    print(halted.describe())
    _check(
        failures,
        halted.state is FleetRolloutState.HALTED,
        "any-breach verdict HALTED the rollout",
    )
    _check(
        failures,
        halted.unreachable_kernels() == [victim],
        f"{victim} recorded UNREACHABLE",
    )
    _check(failures, fleet.is_quarantined(victim), f"{victim} quarantined")
    _check(
        failures,
        [(d["kernel"], d["policy"]) for d in coordinator.debt]
        == [(victim, "steady")],
        "the victim's installed policy is booked as revert debt",
    )
    events = fleet_events()
    _check(
        failures,
        all(e in events for e in ("member-dead", "quarantine", "revert-debt")),
        "member-dead, quarantine, and revert-debt all journaled",
    )
    _check(
        failures,
        all(member_stock(k, "steady") for k in plan.kernels() if k != victim),
        "every reachable kernel converged to stock",
    )

    # -- phase 3: reinstate, recover, drain the debt -------------------
    print("\nphase 3: reinstate + recover — journaled debt is drained")
    epoch_before = fleet.member(victim).epoch
    fresh = FleetCoordinator(fleet, journal=PolicyJournal(fleet_journal_path))
    fresh.reinstate(victim)
    recovered = fresh.recover(lambda member: _steady_submission(), **rollout_kwargs)
    print(recovered.describe() if recovered is not None else "recovery: nothing in flight")
    _check(
        failures,
        recovered is not None and recovered.state is FleetRolloutState.UNWOUND,
        "recovery unwound the halted rollout",
    )
    _check(failures, not fresh.debt, "revert debt drained after reinstatement")
    _check(
        failures,
        "debt-drained" in fleet_events(),
        "the drain was journaled (debt-drained)",
    )
    _check(
        failures,
        fleet.member(victim).epoch > epoch_before,
        f"{victim} reinstated at a higher epoch "
        f"({epoch_before} -> {fleet.member(victim).epoch})",
    )
    _check(
        failures,
        all(member_stock(k, "steady") for k in plan.kernels()),
        "the whole fleet — victim included — is uniformly stock",
    )

    # -- phase 4: quorum completes degraded, then the fleet heals ------
    print("\nphase 4: quorum rollout — the fleet completes degraded, then heals")
    coordinator = FleetCoordinator(fleet, journal=PolicyJournal(fleet_journal_path))
    plan = RolloutPlanner(
        verdict_mode="quorum", quorum=args.quorum, **planner_kwargs
    ).plan("steady", placement)
    victim = plan.waves[1].kernels[0]
    with injected(_kill_member_at_bake(victim, args.seed)):
        degraded = coordinator.execute(
            plan, lambda member: _steady_submission(), **rollout_kwargs
        )
    print(degraded.describe())
    _check(
        failures,
        degraded.state is FleetRolloutState.COMPLETE,
        f"quorum ({args.quorum}) completed the rollout degraded",
    )
    _check(
        failures,
        degraded.unreachable_kernels() == [victim]
        and fleet.is_quarantined(victim),
        f"{victim} unreachable and quarantined, debt booked",
    )
    survivors = [k for k in plan.kernels() if k != victim]
    _check(
        failures,
        all(
            fleet.member(k).daemon.records["steady"].state is PolicyState.ACTIVE
            for k in survivors
        ),
        "every reachable kernel is at plan (steady ACTIVE)",
    )
    healer = FleetCoordinator(fleet, journal=PolicyJournal(fleet_journal_path))
    healer.reinstate(victim)
    healer.recover(lambda member: _steady_submission(), **rollout_kwargs)
    _check(failures, not healer.debt, "second reinstate + recover drained the debt")
    final_plan = RolloutPlanner(**planner_kwargs).plan("numa-good", placement)
    final = healer.execute(final_plan, _good_numa_factory, **rollout_kwargs)
    print(final.describe())
    _check(
        failures,
        final.state is FleetRolloutState.COMPLETE
        and all(
            fleet.member(k).daemon.records["numa-good"].state is PolicyState.ACTIVE
            for k in final_plan.kernels()
        ),
        "healed fleet: fresh rollout ACTIVE on every kernel",
    )

    if args.audit:
        for member in fleet.members():
            print(f"\naudit log ({member.name}):")
            print(member.daemon.audit.format())
    if failures:
        print(
            f"\nfleet-degraded scenario FAILED ({len(failures)} check(s)):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nfleet-degraded scenario passed: probes, quarantine, epoch fencing, "
          "revert debt, and degraded quorum all behaved")
    return 0


def run_guards_scenario(args) -> int:
    """The guard-library acceptance path, in two phases.

    1. **Tail blindness.**  One kernel, ``--locks`` shard locks, the
       tail-spike policy attached to ``svc.shard0.lock`` only.  The
       canary-set *average* wait stays inside the 20 % budget (the old
       ``SLOGuard`` passes on the very same reports) while shard0's p99
       multiplies — the ``TailWaitGuard`` trips and its breach names the
       lock, the metric, and observed-vs-budget.
    2. **Pooled fleet verdict.**  The same policy rolls onto a 3-kernel
       wave whose members' guards each need more canary samples than
       any one kernel sees — every member promotes on verifier trust —
       but the coordinator's pooled guard, fed the wave's *summed*
       histograms, crosses readiness and trips; the fleet halts and
       reverts, the breach naming all three kernels.
    """
    failures: List[str] = []

    # -- phase 1: one lock's p99 regresses, averages stay in budget ----
    print("phase 1: tail-spike on shard0 — avg guard blind, tail guard trips")
    kernel = Kernel(
        Topology(sockets=args.sockets, cores_per_socket=args.cores), seed=args.seed
    )
    for index in range(args.locks):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    daemon = Concordd(
        concord,
        guard=TailWaitGuard(max_tail_regression=args.max_tail_regression),
        canary_fraction=0.5,
    )
    alice = PolicyClient.connect(daemon, "alice", allowed_selectors=("svc.*",))
    stop_at = kernel.now + args.duration_ns
    _spawn_shard_workload(kernel, stop_at, args.tasks_per_lock, args.cs_ns)

    window = args.duration_ns // 4
    canary_locks = [f"svc.shard{i}.lock" for i in range(min(2, args.locks))]
    alice.submit(tail_spike_submission(kernel.lock_id_by_name("svc.shard0.lock")))
    record = alice.rollout(
        "tail-spike",
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 2,
        canary_locks=canary_locks,
    )
    kernel.run()

    print(f"tail guard  : {record.state.name:<12} {record.verdict.describe()}")
    old_verdict = SLOGuard(max_avg_wait_regression=args.max_regression).evaluate(
        record.baseline_report, record.canary_report
    )
    print(f"avg guard   : {'pass' if old_verdict.ok else 'FAIL':<12} {old_verdict.describe()}")
    _check(failures, record.state is PolicyState.ROLLED_BACK, "tail guard rolled the policy back")
    _check(
        failures,
        old_verdict.ready and old_verdict.ok,
        "old SLOGuard passes the same reports (average within budget)",
    )
    breaches = record.verdict.attributed
    _check(
        failures,
        any(b.lock_name == "svc.shard0.lock" and b.metric == "p99_wait_ns" for b in breaches),
        "breach attributes the regression to svc.shard0.lock p99",
    )
    for breach in breaches:
        print(f"  breach: {breach.describe()}")

    # -- phase 2: pooled evidence trips what no member alone can ------
    print("\nphase 2: 3-kernel wave — pooled histograms trip the fleet verdict")
    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-guards-")
    fleet = FleetManager()
    for index in range(3):
        member_kernel = Kernel(
            Topology(sockets=args.sockets, cores_per_socket=args.cores),
            seed=args.seed + 1 + index,
        )
        for i in range(args.locks):
            member_kernel.add_lock(
                f"svc.shard{i}.lock", ShflLock(member_kernel.engine, name=f"shard{i}")
            )
        fleet.register(
            f"k{index}",
            member_kernel,
            # Each member alone never reaches readiness: its canary
            # window holds fewer acquisitions than this threshold, so
            # the per-member verdict defers and the daemon promotes on
            # verifier trust.
            guard=SLOGuard(min_acquisitions=10**9),
            canary_fraction=0.5,
            journal=PolicyJournal(
                os.path.join(journal_dir, f"journal.k{index}.jsonl")
            ),
        )
        _spawn_shard_workload(
            member_kernel,
            member_kernel.now + args.duration_ns,
            args.tasks_per_lock,
            args.cs_ns,
        )
    coordinator = FleetCoordinator(
        fleet,
        journal=PolicyJournal(os.path.join(journal_dir, "fleet.jsonl")),
        pooled_guard=TailWaitGuard(max_tail_regression=args.max_tail_regression),
    )
    plan = FleetPlan(
        "tail-spike",
        [WaveSpec(index=0, kernels=["k0", "k1", "k2"], canary=True, bake_ns=window // 2)],
        canary_locks={f"k{i}": list(canary_locks) for i in range(3)},
    )
    result = coordinator.execute(
        plan,
        lambda member: tail_spike_submission(
            member.kernel.lock_id_by_name("svc.shard0.lock")
        ),
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 2,
    )
    print(result.describe())
    _check(failures, result.state is FleetRolloutState.HALTED, "pooled verdict HALTED the wave")
    _check(
        failures,
        result.halt_cause is not None and "pooled breach" in result.halt_cause,
        "halt cause is the pooled breach",
    )
    _check(
        failures,
        result.halt_cause is not None
        and "svc.shard0.lock" in result.halt_cause
        and all(k in result.halt_cause for k in ("k0", "k1", "k2")),
        "pooled breach names the lock and all three kernels",
    )
    _check(
        failures,
        all(
            not record.live
            for member in fleet.members()
            for record in member.daemon.records.values()
        ),
        "every kernel reverted to stock",
    )
    pooled_entries = [
        e
        for e in coordinator.journal.entries()
        if e.get("event") == "pooled-breach"
    ]
    _check(
        failures,
        any(
            e.get("lock") == "svc.shard0.lock" and e.get("kernels") == ["k0", "k1", "k2"]
            for e in pooled_entries
        ),
        "fleet journal records the attributed pooled-breach event",
    )

    if failures:
        print(f"\nguards scenario FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nguards scenario PASSED")
    return 0


def _traffic_rollout(args, schedule, journal_dir: str, label: str):
    """One trace-driven 3-kernel rollout of the benign metering policy.

    The trace (same seed, same tenants, same bindings for both runs) is
    installed into every member *before* the wave executes, so the
    baseline and canary windows of each member's rollout are measured
    against whatever load the schedule delivers in those windows.  Only
    the schedule differs between the steady and burst runs — the policy,
    guard, and budgets are identical, which is what makes the verdict
    load-dependent rather than policy-dependent.
    """
    arrivals = PoissonProcess(rate_per_ms=args.rate_per_ms)
    tenants = TenantSet(
        [
            Tenant("web", 3.0, [("shard0", 2.0), ("shard1", 1.0)]),
            Tenant("batch", 1.0, [("shard1", 1.0)]),
        ]
    )
    trace = TraceGenerator(schedule, arrivals, tenants, seed=args.seed).generate()
    runner = TraceRunner(
        trace,
        {
            "shard0": LockBinding("svc.shard0.lock", cs_ns=args.cs_ns),
            "shard1": LockBinding("svc.shard1.lock", cs_ns=args.cs_ns),
        },
    )
    fleet = FleetManager()
    for index in range(3):
        kernel = Kernel(
            Topology(sockets=args.sockets, cores_per_socket=args.cores),
            seed=args.seed + 1 + index,
        )
        for i in range(2):
            kernel.add_lock(
                f"svc.shard{i}.lock", ShflLock(kernel.engine, name=f"shard{i}")
            )
        fleet.register(
            f"k{index}",
            kernel,
            # Per-member guards defer (readiness threshold out of reach);
            # the pooled cross-kernel verdict decides alone, so the two
            # runs differ only in the load the pooled evidence saw.
            guard=SLOGuard(min_acquisitions=10**9),
            canary_fraction=0.5,
            journal=PolicyJournal(
                os.path.join(journal_dir, f"journal.{label}.k{index}.jsonl")
            ),
        )
    runner.drive_fleet(fleet)
    coordinator = FleetCoordinator(
        fleet,
        journal=PolicyJournal(os.path.join(journal_dir, f"fleet.{label}.jsonl")),
        pooled_guard=TailWaitGuard(max_tail_regression=args.max_tail_regression),
    )
    window = args.duration_ns // 4
    plan = FleetPlan(
        "traffic-meter",
        [WaveSpec(index=0, kernels=["k0", "k1", "k2"], canary=True, bake_ns=window // 2)],
        canary_locks={
            f"k{i}": ["svc.shard0.lock", "svc.shard1.lock"] for i in range(3)
        },
    )
    result = coordinator.execute(
        plan,
        lambda member: _steady_submission("traffic-meter"),
        baseline_ns=window,
        canary_ns=2 * window,
        check_every_ns=window // 2,
    )
    # Drain the replay tail so per-phase stats cover the whole trace.
    for member in fleet.members():
        member.kernel.run(until=trace.total_ns + args.duration_ns)
    return trace, runner, coordinator, fleet, result


def run_traffic_scenario(args) -> int:
    """The trace-driven load acceptance path, in three phases.

    1. **Malthusian knee.**  The collapse workload's thread sweep must
       peak where the closed-loop model predicts and fall measurably
       past it — the scenario corpus actually contains a collapse.
    2. **Steady trace.**  A Poisson trace at the base rate drives a
       3-kernel rollout of a benign metering policy; the pooled
       ``TailWaitGuard`` sees comparable baseline/canary tails and the
       wave COMPLETEs.
    3. **Burst trace.**  The *same* policy, budgets, seed, and tenants —
       but the schedule spikes ``--burst-scale``× exactly while the
       canary window is open.  The pooled p99 evidence breaches, the
       fleet HALTs, and the breach is journaled with per-lock
       attribution.  Same policy, opposite verdict: the decision is
       about the load, which is the point of the traffic layer.
    """
    failures: List[str] = []

    # -- phase 1: the corpus has a real concurrency knee ---------------
    print("phase 1: malthusian collapse — throughput knees and falls")
    knee_topo = Topology(sockets=2, cores_per_socket=4)
    result = sweep(
        lambda: MalthusianBench(),
        knee_topo,
        [1, 2, 3, 4, 5, 6, 8],
        duration_ns=400_000,
        warmup_ns=100_000,
        seed=args.seed,
    )
    print(format_sweep_table([result], title="malthus sweep (ops/msec)"))
    knee = knee_threads(result)
    expected = MalthusianBench().expected_knee()
    peak = max(p.ops_per_msec for p in result.points)
    tail = result.at(8).ops_per_msec
    print(f"knee: measured n={knee}, predicted n={expected}, "
          f"collapse at n=8: {tail / peak:.2f}x of peak")
    _check(failures, abs(knee - expected) <= 1, "knee lands where the model predicts")
    _check(failures, tail < 0.7 * peak, "throughput collapses past the knee")

    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-traffic-")
    window = args.duration_ns // 4

    # -- phase 2: steady load, the policy clears the pooled guard ------
    print("\nphase 2: steady trace — same policy, pooled tail guard passes")
    steady = PhaseSchedule.steady(args.duration_ns)
    trace_s, runner_s, _coord_s, fleet_s, result_s = _traffic_rollout(
        args, steady, journal_dir, "steady"
    )
    print(f"trace: {trace_s.describe()}")
    print(runner_s.report())
    print(result_s.describe())
    _check(
        failures,
        result_s.state is FleetRolloutState.COMPLETE,
        "steady-load wave COMPLETEs",
    )
    _check(
        failures,
        all(
            any(r.live and r.state is PolicyState.ACTIVE for r in member.daemon.records.values())
            for member in fleet_s.members()
        ),
        "policy ACTIVE on every kernel under steady load",
    )

    # -- phase 3: burst mid-canary, the same policy is halted ----------
    print("\nphase 3: burst trace — same policy, pooled tail guard halts the fleet")
    burst = PhaseSchedule.burst(
        window, 2 * window, args.duration_ns - 3 * window,
        burst_scale=args.burst_scale,
    )
    print(f"schedule: {burst.describe()} (canary window [{window}ns, {3 * window}ns))")
    trace_b, runner_b, coord_b, fleet_b, result_b = _traffic_rollout(
        args, burst, journal_dir, "burst"
    )
    print(f"trace: {trace_b.describe()}")
    print(runner_b.report())
    print(result_b.describe())
    _check(
        failures,
        result_b.state is FleetRolloutState.HALTED,
        "burst-load wave HALTED by the pooled verdict",
    )
    _check(
        failures,
        result_b.halt_cause is not None and "pooled breach" in result_b.halt_cause,
        "halt cause is the pooled breach",
    )
    _check(
        failures,
        all(
            not record.live
            for member in fleet_b.members()
            for record in member.daemon.records.values()
        ),
        "every kernel reverted to stock after the halt",
    )
    pooled_entries = [
        e for e in coord_b.journal.entries() if e.get("event") == "pooled-breach"
    ]
    _check(
        failures,
        any(
            e.get("lock", "").startswith("svc.shard")
            and e.get("kernels") == ["k0", "k1", "k2"]
            for e in pooled_entries
        ),
        "fleet journal records the attributed pooled-breach event",
    )
    burst_p99 = runner_b.phase_stats("burst").wait_p99()
    pre_p99 = runner_b.phase_stats("pre").wait_p99()
    print(f"replay tails: pre p99 {pre_p99}ns, burst p99 {burst_p99}ns")
    _check(failures, burst_p99 > pre_p99, "burst phase degrades the replay tail")

    if failures:
        print(f"\ntraffic scenario FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\ntraffic scenario PASSED: the same policy cleared guards under "
        "steady load and was halted with an attributed breach under burst"
    )
    return 0


def _adapt_bench_world(args, journal):
    """One Malthusian-bench kernel with an adaptation loop over it."""
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=args.seed)
    bench = MalthusianBench()
    bench.setup(kernel)
    concord = Concord(kernel)
    daemon = Concordd(concord, journal=journal)
    return kernel, bench, concord, daemon


def _adapt_bench_loop(daemon, **overrides):
    """The loop timings phase 2/3 share (tuned for the closed-loop bench:
    ~400k ns windows hold a few hundred acquisitions past the knee)."""
    params = dict(
        selector="bench.*",
        window_ns=400_000,
        baseline_ns=80_000,
        canary_ns=120_000,
        check_every_ns=20_000,
    )
    params.update(overrides)
    return AdaptationLoop(daemon=daemon, **params)


def _spawn_bench_workers(kernel, bench, start: int, count: int) -> None:
    order = kernel.topology.fill_order()
    for index in range(start, start + count):
        kernel.spawn(
            lambda task, i=index: bench.worker(task, i),
            cpu=order[index],
            name=f"malthus-{index}",
        )


def _adaptation_entries(journal, event=None):
    entries = [e for e in journal.entries() if e.get("kind") == "adaptation"]
    if event is not None:
        entries = [e for e in entries if e.get("event") == event]
    return entries


def run_adapt_scenario(args) -> int:
    """The adaptive-overload-defense acceptance path, in three phases.

    1. **Fleet burst trace.**  Three kernels replay a crowd-sensitive
       Poisson trace whose burst phase drives the hot lock past its
       coherence capacity (arrivals outrun the collapsed service rate,
       so throughput *falls* while p99 blows up).  The coordinator-mode
       :class:`AdaptationLoop` must detect the collapse on pooled
       evidence, self-propose a Malthusian cull, canary it fleet-wide
       under the tail+fairness guard, and keep it — with post-cull
       throughput at least ``0.8x`` the healthy reference rate.
    2. **Mid-loop kill.**  On the closed-loop bench, the loop is killed
       (:class:`InjectedCrash`) at the ``adaptive.propose`` fault site —
       after ``cull-proposed`` hits the journal, before anything is
       installed.  A rebuilt daemon + loop over the same journal file
       must resolve the open proposal as rolled back (never leaving a
       proposed-but-unjudged cull), re-seed the detector's healthy
       reference from the journaled evidence, and — continuing the loop
       — re-propose and keep the cull under a fresh policy name.
    3. **Over-aggressive cap.**  The same bench, but the loop is forced
       to ``cap_override=1`` under an operator-tightened fairness
       budget (``--max-skew-increase``).  A too-deep cull leaves the
       LIFO passive stack stable, starving socket-clustered waiters;
       the canary's :class:`FairnessGuard` must catch the growing
       per-socket skew and roll the cull back, leaving the stock lock
       in place.  (The auto-derived cap clears the same tightened
       budget — the skew is the cap's fault, not the cull's.)
    """
    failures: List[str] = []
    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-adapt-")

    # -- phase 1: fleet-wide detect -> propose -> canary -> keep -------
    print("phase 1: burst trace collapses the fleet's hot lock; the loop culls it")
    window = args.duration_ns // 4
    schedule = PhaseSchedule.burst(
        window, 2 * window, args.duration_ns - 3 * window,
        burst_scale=args.burst_scale,
    )
    arrivals = PoissonProcess(rate_per_ms=args.rate_per_ms)
    tenants = TenantSet(
        [
            Tenant("web", 3.0, [("hot", 1.0)]),
            Tenant("batch", 1.0, [("hot", 1.0)]),
        ]
    )
    trace = TraceGenerator(
        schedule, arrivals, tenants, seed=args.trace_seed
    ).generate()
    print(f"trace: {trace.describe()}")
    runner = TraceRunner(
        trace,
        {
            "hot": LockBinding(
                "svc.hot.lock",
                cs_ns=args.cs_ns,
                waiter_penalty_ns=args.waiter_penalty_ns,
            )
        },
    )
    fleet = FleetManager()
    for index in range(3):
        kernel = Kernel(
            Topology(sockets=args.sockets, cores_per_socket=args.cores),
            seed=args.seed + 1 + index,
        )
        kernel.add_lock("svc.hot.lock", MCSLock(kernel.engine, name="hot"))
        fleet.register(
            f"k{index}",
            kernel,
            # Defer per-member verdicts: the loop's own composite guard
            # (pooled tail + fairness) judges the canary alone.
            guard=SLOGuard(min_acquisitions=10**9),
            journal=PolicyJournal(
                os.path.join(journal_dir, f"adapt.k{index}.jsonl")
            ),
        )
    runner.drive_fleet(fleet)
    coordinator = FleetCoordinator(
        fleet, journal=PolicyJournal(os.path.join(journal_dir, "adapt.fleet.jsonl"))
    )
    loop = AdaptationLoop(
        coordinator=coordinator,
        selector="svc.hot.lock",
        window_ns=300_000,
        baseline_ns=100_000,
        canary_ns=300_000,
        check_every_ns=100_000,
    )
    decisions = loop.run(passes=10)
    for decision in decisions:
        print(f"  {decision.describe()}")
    _check(
        failures,
        decisions and decisions[-1].outcome == "kept",
        "fleet loop detects the collapse and keeps the cull",
    )
    impls = [
        member.kernel.locks.get("svc.hot.lock").core.impl
        for member in fleet.members()
    ]
    _check(
        failures,
        all(isinstance(impl, CullingLock) for impl in impls),
        "every member's hot lock runs the culling impl",
    )
    detected = _adaptation_entries(coordinator.journal, "collapse-detected")
    proposed = _adaptation_entries(coordinator.journal, "cull-proposed")
    kept = _adaptation_entries(coordinator.journal, "cull-kept")
    _check(
        failures,
        bool(detected) and bool(proposed) and bool(kept),
        "fleet journal has collapse-detected, cull-proposed, cull-kept",
    )
    _check(
        failures,
        bool(proposed)
        and all(impl.cap == proposed[-1].get("cap") for impl in impls),
        "installed caps match the journaled proposal",
    )
    if detected and kept:
        ref_rate = detected[-1]["ref_rate_per_ms"]
        post_rate = kept[-1].get("rate_per_ms", 0.0)
        print(
            f"  post-cull rate {post_rate:.1f} ops/ms vs healthy reference "
            f"{ref_rate:.1f} ops/ms"
        )
        _check(
            failures,
            post_rate >= 0.8 * ref_rate,
            "post-cull throughput >= 0.8x the healthy reference rate",
        )

    # -- phase 2: kill -9 between propose and install ------------------
    print("\nphase 2: loop killed mid-propose; recovery resolves the open cull")
    journal_path = os.path.join(journal_dir, "adapt.bench.jsonl")
    kernel, bench, concord, daemon = _adapt_bench_world(
        args, PolicyJournal(journal_path)
    )
    bench_loop = _adapt_bench_loop(daemon)
    _spawn_bench_workers(kernel, bench, 0, 4)
    kernel.run(until=kernel.now + 100_000)
    first = bench_loop.run_once()  # healthy window becomes the reference
    _check(failures, first.outcome == "idle", "pre-knee window is judged healthy")
    _spawn_bench_workers(kernel, bench, 4, 4)
    kernel.run(until=kernel.now + 100_000)
    kill_plan = FaultPlan(seed=args.seed, name="adapt-kill")
    kill_plan.crash(SITE_ADAPTIVE_PROPOSE)
    crashed = False
    try:
        with injected(kill_plan):
            bench_loop.run_once()
    except InjectedCrash:
        crashed = True
    site = kernel.locks.get("bench.malthus")
    _check(failures, crashed, "InjectedCrash unwound the pass mid-propose")
    open_proposals = _adaptation_entries(PolicyJournal(journal_path), "cull-proposed")
    _check(
        failures,
        bool(open_proposals)
        and not _adaptation_entries(PolicyJournal(journal_path), "cull-rolled-back"),
        "journal ends on an open cull-proposed entry",
    )
    _check(
        failures,
        isinstance(site.core.impl, MCSLock),
        "nothing was installed before the crash",
    )
    journal_b = PolicyJournal(journal_path)
    registry = {f"culling-cap{cap}": culling_impl_factory(cap) for cap in range(1, 9)}
    daemon_b = Concordd(concord, journal=journal_b, impl_registry=registry)
    daemon_b.recover()
    loop_b = _adapt_bench_loop(daemon_b)
    summary = loop_b.recover()
    print(f"  loop recover: {summary}")
    _check(failures, summary["resolved"] == 1, "recover() resolved the open proposal")
    resolved = _adaptation_entries(journal_b, "cull-rolled-back")
    _check(
        failures,
        bool(resolved) and "recovered" in resolved[-1].get("cause", ""),
        "open proposal journaled as rolled back by recovery",
    )
    _check(
        failures,
        isinstance(site.core.impl, MCSLock),
        "no proposed-but-unjudged cull left installed after recovery",
    )
    reference = loop_b.detector.reference("bench.malthus")
    _check(
        failures,
        reference is not None and reference.rate_per_ms > 0,
        "healthy reference re-seeded from the journal",
    )
    continued = loop_b.run(passes=4)
    for decision in continued:
        print(f"  {decision.describe()}")
    _check(
        failures,
        continued and continued[-1].outcome == "kept",
        "continued loop re-proposes and keeps the cull",
    )
    _check(
        failures,
        continued
        and continued[-1].policy == "cull.bench.malthus.2"
        and isinstance(site.core.impl, CullingLock),
        "re-proposal gets a fresh policy name and installs the cull",
    )

    # -- phase 3: over-aggressive cap is rolled back on fairness -------
    print("\nphase 3: forced cap=1 starves sockets; fairness guard rolls it back")
    kernel3, bench3, _concord3, daemon3 = _adapt_bench_world(args, PolicyJournal())
    tight_guard = AllOf(
        TailWaitGuard(max_tail_regression=1.0),
        FairnessGuard(max_skew_increase=args.max_skew_increase),
    )
    loop3 = _adapt_bench_loop(
        daemon3,
        cap_override=1,
        guard=tight_guard,
        canary_ns=300_000,
        check_every_ns=100_000,
    )
    _spawn_bench_workers(kernel3, bench3, 0, 4)
    kernel3.run(until=kernel3.now + 100_000)
    loop3.run_once()  # healthy reference
    _spawn_bench_workers(kernel3, bench3, 4, 4)
    kernel3.run(until=kernel3.now + 100_000)
    verdict = loop3.run_once()
    print(f"  {verdict.describe()}")
    site3 = kernel3.locks.get("bench.malthus")
    _check(failures, verdict.outcome == "rolled-back", "cap=1 cull is rolled back")
    _check(
        failures,
        "skew" in verdict.cause,
        "rollback cause is the per-socket fairness skew",
    )
    _check(
        failures,
        isinstance(site3.core.impl, MCSLock),
        "stock lock restored after the rollback",
    )
    _check(
        failures,
        bool(_adaptation_entries(daemon3.journal, "cull-rolled-back")),
        "rollback verdict journaled",
    )

    if args.audit:
        print("\nfleet adaptation journal:")
        for entry in _adaptation_entries(coordinator.journal):
            print(f"  {entry}")
        print("\nbench audit log:")
        print(daemon_b.audit.format())

    if failures:
        print(f"\nadapt scenario FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nadapt scenario PASSED: collapse detected on pooled evidence, "
        "self-proposed cull kept fleet-wide, crash recovery never left an "
        "unjudged cull, and the over-aggressive cap was rolled back"
    )
    return 0


def _build_replicated_fleet(args, fabric=None):
    """Like :func:`_build_fleet`, but every member's policy journal is a
    :class:`~repro.replication.journal.ReplicatedJournal` over its own
    ``--sites``-way replica group (no journal files at all).  With a
    ``fabric``, each group's replication traffic crosses it (endpoint
    ``kI`` → ``kI/siteJ``), so partitions can cut a member off from its
    own sites."""
    fleet = FleetManager()
    groups = {}
    for index in range(args.kernels):
        kernel = Kernel(
            Topology(sockets=args.sockets, cores_per_socket=args.cores),
            seed=args.seed + index,
        )
        nr_locks = 2 if index == 0 else args.locks
        for i in range(nr_locks):
            kernel.add_lock(
                f"svc.shard{i}.lock", ShflLock(kernel.engine, name=f"shard{i}")
            )
        group = ReplicaGroup(f"k{index}", nr_sites=args.sites, fabric=fabric)
        groups[f"k{index}"] = group
        fleet.register(
            f"k{index}",
            kernel,
            replica_group=group,
            guard=SLOGuard(max_avg_wait_regression=args.max_regression),
            canary_fraction=0.5,
        )
        tasks_per_lock = 1 if index == 0 else args.tasks_per_lock
        _spawn_shard_workload(
            kernel, kernel.now + args.duration_ns, tasks_per_lock, args.cs_ns
        )
    return fleet, groups


def run_replicated_scenario(args) -> int:
    """The replicated-control-plane acceptance path, in four phases.

    Every member's policy journal — and the coordinator's fleet journal
    — is replicated across ``--sites`` replica sites with
    available-copies semantics (quorum commit, fenced leader lease).

    1. **replicated rollout**: a good policy reaches fleet-wide ACTIVE
       with every journal write quorum-committed; daemon pings report
       replication health and every replica site answers its probe;
    2. **leader death mid-rollout**: one member's group leader is killed
       at its next append; the group fails over *within the wave* and
       the rollout completes — no committed ack is lost, the new leader
       serves the full committed log (read-your-writes);
    3. **follower kill + recover**: a recovered site refuses reads
       (:class:`~repro.replication.site.SiteUnreadable`) until the first
       post-recovery committed write lands, whose catch-up provably
       levels its log with the group;
    4. **concurrent overlapping rollouts**: two coordinators open
       ledger transactions over overlapping lock footprints; the first
       committer wins, the second aborts with a journaled serialization
       conflict and its patches are reverted — never both.
    """
    if args.kernels < 3:
        print("error: replicated scenario needs --kernels >= 3", file=sys.stderr)
        return 2
    if args.sites < 3:
        print(
            "error: replicated scenario needs --sites >= 3 "
            "(one site death must leave a quorum)",
            file=sys.stderr,
        )
        return 2
    failures: List[str] = []
    fleet, groups = _build_replicated_fleet(args)
    fleet_group = ReplicaGroup("fleet", nr_sites=args.sites)
    print(
        f"fleet of {len(fleet)} kernels; every journal replicated "
        f"{args.sites} ways (quorum {fleet_group.quorum})"
    )

    placement = PlacementMap.learn(
        fleet, "svc.*.lock", window_ns=args.duration_ns // 20
    )
    window = args.duration_ns // 10
    rollout_kwargs = dict(
        baseline_ns=window, canary_ns=2 * window, check_every_ns=window // 4
    )
    planner = RolloutPlanner(
        max_concurrent_kernels=args.max_concurrent_kernels,
        canary_kernels=1,
        bake_ns=window // 2,
    )
    monitor = HealthMonitor(fleet)
    coordinator = FleetCoordinator(
        fleet, journal=fleet_group.journal(), health=monitor
    )

    def fleet_active(policy, kernels):
        return all(
            (record := fleet.member(k).daemon.records.get(policy)) is not None
            and record.state is PolicyState.ACTIVE
            for k in kernels
        )

    def member_stock(name, policy):
        member = fleet.member(name)
        record = member.daemon.records.get(policy)
        return (record is None or not record.live) and (
            policy not in member.concord.policies
        )

    # -- phase 1: rollout over replicated journals ---------------------
    print("\nphase 1: rollout over replicated journals — quorum commits, site probes")
    good = coordinator.execute(
        planner.plan("numa-good", placement), _good_numa_factory, **rollout_kwargs
    )
    print(good.describe())
    _check(
        failures,
        good.state is FleetRolloutState.COMPLETE,
        "rollout COMPLETE over replicated journals",
    )
    _check(
        failures,
        fleet_active("numa-good", good.plan.kernels()),
        "numa-good ACTIVE on every kernel",
    )
    pings = {m.name: m.daemon.ping() for m in fleet.members()}
    _check(
        failures,
        all(
            p.get("replication", {}).get("commit_index", 0) > 0
            for p in pings.values()
        ),
        "every daemon ping reports replication commit progress",
    )
    probes = monitor.probe_all(include_sites=True)
    site_probes = {k: r for k, r in probes.items() if "/site" in k}
    _check(
        failures,
        len(site_probes) == len(fleet) * args.sites
        and all(r.ok for r in site_probes.values()),
        f"all {len(site_probes)} replica sites answer their probes",
    )

    # -- phase 2: leader killed mid-rollout, failover completes --------
    print("\nphase 2: leader site killed mid-rollout — failover completes the wave")
    victim_member = "k1"
    group = groups[victim_member]
    old_leader = group.leader.name
    print(f"victim: {old_leader} (leader of {victim_member}'s group, dies at its next append)")
    kill = FaultPlan(seed=args.seed, name="kill-leader")
    kill.fail(SITE_REPLICATION_APPEND, times=1, match={"replica": old_leader})
    with injected(kill):
        steady = coordinator.execute(
            planner.plan("steady", placement),
            lambda member: _steady_submission(),
            **rollout_kwargs,
        )
    print(steady.describe())
    print(group.describe())
    _check(
        failures,
        kill.fired[SITE_REPLICATION_APPEND] == 1,
        "the injected fault killed the leader mid-append",
    )
    _check(
        failures,
        steady.state is FleetRolloutState.COMPLETE,
        "failover completed the wave: rollout COMPLETE",
    )
    _check(
        failures,
        fleet_active("steady", steady.plan.kernels()),
        "steady ACTIVE on every kernel",
    )
    _check(
        failures,
        group.failovers >= 1 and group.leader.name != old_leader,
        f"leadership failed over off {old_leader} "
        f"(now {group.leader.name}, lease epoch {group.lease_epoch})",
    )
    _check(
        failures,
        group.site(old_leader).state is SiteState.DOWN,
        "the killed site is DOWN",
    )
    _check(
        failures,
        len(group.entries()) == group.commit_index,
        "no committed ack lost: every committed entry readable after failover",
    )
    last = fleet.member(victim_member).journal.last_transition("steady")
    _check(
        failures,
        last is not None and last["to"] == "ACTIVE",
        "read-your-writes: the new leader serves the full committed log",
    )

    # -- phase 3: recovered follower is read-gated ---------------------
    print("\nphase 3: follower killed + recovered — read-gated until a committed write")
    follow_member = "k2"
    fgroup = groups[follow_member]
    follower = next(s for s in fgroup.sites if s is not fgroup.leader)
    print(f"victim: {follower.name} (follower, killed then recovered)")
    fgroup.fail_site(follower.name)
    recovered = fgroup.recover_site(follower.name)
    refused = False
    try:
        recovered.read(fgroup.commit_index)
    except SiteUnreadable:
        refused = True
    _check(
        failures,
        refused and not recovered.readable,
        f"{follower.name} refuses reads while RECOVERING (available-copies gate)",
    )
    probe = monitor.probe_sites(follow_member)[follower.name]
    _check(
        failures,
        probe.ok and "read-gated" in probe.detail,
        "the health probe reports the site recovering (read-gated)",
    )
    member = fleet.member(follow_member)
    member.journal.heartbeat(int(member.kernel.now), member=follow_member)
    _check(
        failures,
        recovered.readable and recovered.state is SiteState.UP,
        "the first committed write post-recovery lifts the read gate",
    )
    committed = {
        seq: entry
        for seq, entry in fgroup.leader.log.items()
        if seq <= fgroup.commit_index
    }
    _check(
        failures,
        all(recovered.log.get(seq) == entry for seq, entry in committed.items()),
        "catch-up shipped every committed entry the site missed",
    )
    _check(
        failures,
        recovered.read(fgroup.commit_index) == fgroup.entries(),
        "the recovered site serves the same committed log as the leader",
    )

    # -- phase 4: concurrent rollouts, first committer wins ------------
    print("\nphase 4: concurrent overlapping rollouts — first committer wins")
    ledger = SerializationLedger(journal=fleet_group.journal())
    coord_a = FleetCoordinator(
        fleet, journal=fleet_group.journal(), client_id="coord-a", ledger=ledger
    )
    coord_b = FleetCoordinator(
        fleet, journal=fleet_group.journal(), client_id="coord-b", ledger=ledger
    )
    plan_a = planner.plan("tuner-alpha", placement)
    plan_b = planner.plan("tuner-bravo", placement)
    txn_b = coord_b.open_transaction(plan_b)
    result_a = coord_a.execute(
        plan_a, lambda member: _steady_submission("tuner-alpha"), **rollout_kwargs
    )
    result_b = coord_b.execute(
        plan_b, lambda member: _steady_submission("tuner-bravo"), **rollout_kwargs
    )
    print(result_a.describe())
    print(result_b.describe())
    _check(
        failures,
        result_a.state is FleetRolloutState.COMPLETE
        and result_a.txn is not None
        and result_a.txn.status is TxnStatus.COMMITTED,
        "first committer (tuner-alpha) COMPLETE, its transaction committed",
    )
    _check(
        failures,
        result_b.state is FleetRolloutState.HALTED
        and "serialization conflict" in (result_b.halt_cause or ""),
        "second committer aborted: serialization conflict halts the rollout",
    )
    _check(
        failures,
        txn_b.status is TxnStatus.ABORTED,
        "the loser's ledger transaction is ABORTED",
    )
    _check(
        failures,
        [t.txn_id for t in ledger.committed()] == ["tuner-alpha@coord-a"],
        "exactly one of the two overlapping rollouts committed",
    )
    events = [
        e.get("event")
        for e in fleet_group.journal().entries()
        if e.get("kind") in ("fleet", "replication")
    ]
    _check(
        failures,
        "serialization-conflict" in events and "txn-abort" in events,
        "the conflict and the txn abort are journaled",
    )
    _check(
        failures,
        all(member_stock(k, "tuner-bravo") for k in plan_b.kernels())
        and fleet_active("tuner-alpha", plan_a.kernels()),
        "the aborted rollout reverted every kernel; the winner stands",
    )

    if args.audit:
        for member in fleet.members():
            print(f"\naudit log ({member.name}):")
            print(member.daemon.audit.format())
    if failures:
        print(
            f"\nreplicated scenario FAILED ({len(failures)} check(s)):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nreplicated scenario passed: quorum commits, leader failover, "
        "the recovery read gate, and commit-time serialization all behaved"
    )
    return 0


def run_scrub_scenario(args) -> int:
    """The storage-integrity acceptance path, in three phases.

    Every durable record now carries a CRC32 + sequence envelope, and
    the ``storage.corrupt.*`` model is *silent* rot: a flipped byte the
    write never noticed.  This scenario proves the three answers:

    1. **scrub + quorum repair** (replicated fleet): one byte of one
       committed record on one replica site is flipped; the health
       monitor's scrub pass detects it, the site is rebuilt
       byte-for-byte from quorum peers, and post-repair reads equal the
       pre-corruption committed prefix exactly — zero committed-entry
       loss.  The verdict lands everywhere it should: the site's
       ``last_scrub``, the group's health, and journaled
       ``scrub-failed`` / ``scrub-repaired`` events;
    2. **snapshot compaction** (same fleet): a member's journal is
       folded into a checksummed snapshot while one level follower is
       down; recovery over snapshot + tail reconstructs the same
       fleet-wide ACTIVE state, and anti-entropy digests agree across a
       site holding the snapshot and one still holding raw records —
       content, not representation, is what is compared;
    3. **quarantined salvage** (file-journal fleet): a mid-journal byte
       of one *unreplicated* shard is flipped.  The corruption error
       names the physical line, the shard path, and the owning member;
       fleet recovery does not abort — the member is quarantined, the
       valid prefix salvaged (rotten suffix kept as ``<path>.corrupt``),
       the stranded ACTIVE policy booked as revert debt, and reinstate +
       drain returns the member to stock while the survivors keep
       serving.
    """
    if args.kernels < 3:
        print("error: scrub scenario needs --kernels >= 3", file=sys.stderr)
        return 2
    if args.sites < 3:
        print(
            "error: scrub scenario needs --sites >= 3 "
            "(repair needs quorum peers)",
            file=sys.stderr,
        )
        return 2
    failures: List[str] = []
    fleet, groups = _build_replicated_fleet(args)
    fleet_group = ReplicaGroup("fleet", nr_sites=args.sites)
    fleet_journal = fleet_group.journal()
    scrubber = Scrubber(journal=fleet_journal)
    monitor = HealthMonitor(fleet, scrubber=scrubber)
    coordinator = FleetCoordinator(fleet, journal=fleet_journal, health=monitor)
    print(
        f"fleet of {len(fleet)} kernels, journals replicated {args.sites} "
        f"ways, scrubber wired into the health monitor"
    )

    placement = PlacementMap.learn(
        fleet, "svc.*.lock", window_ns=args.duration_ns // 20
    )
    window = args.duration_ns // 10
    rollout_kwargs = dict(
        baseline_ns=window, canary_ns=2 * window, check_every_ns=window // 4
    )
    planner = RolloutPlanner(
        max_concurrent_kernels=args.max_concurrent_kernels,
        canary_kernels=1,
        bake_ns=window // 2,
    )

    def fleet_active(the_fleet, policy, kernels):
        return all(
            (record := the_fleet.member(k).daemon.records.get(policy)) is not None
            and record.state is PolicyState.ACTIVE
            for k in kernels
        )

    def member_stock(the_fleet, name, policy):
        member = the_fleet.member(name)
        record = member.daemon.records.get(policy)
        return (record is None or not record.live) and (
            policy not in member.concord.policies
        )

    # -- phase 1: silent rot on one replica, scrub detects + repairs ---
    print("\nphase 1: silent rot on one replica — scrub detects, quorum repairs")
    good = coordinator.execute(
        planner.plan("numa-good", placement), _good_numa_factory, **rollout_kwargs
    )
    print(good.describe())
    _check(
        failures,
        good.state is FleetRolloutState.COMPLETE,
        "rollout COMPLETE over replicated journals",
    )
    victim_group = groups["k1"]
    committed_before = victim_group.entries()
    follower = next(s for s in victim_group.sites if s is not victim_group.leader)
    seq = max(s for s in follower.log if s <= victim_group.commit_index)
    follower.log[seq] = flip_byte(follower.log[seq], salt=seq)
    print(f"flipped one byte of {follower.name}'s record at seq {seq}")
    probes = monitor.probe_all()
    verdict = probes.get("k1:scrub")
    _check(
        failures,
        verdict is not None and verdict.ok and "repaired" in verdict.detail,
        "the health monitor's scrub pass detected and healed the rot",
    )
    _check(
        failures,
        (follower.last_scrub or "").startswith("repaired from"),
        f"{follower.name} was rebuilt from a quorum peer "
        f"({follower.last_scrub})",
    )
    _check(
        failures,
        # The probe round itself appended heartbeats, so compare the
        # prefix: everything committed before the flip must read back
        # exactly.
        victim_group.entries()[: len(committed_before)] == committed_before,
        "zero committed-entry loss: post-repair reads equal the "
        "pre-corruption committed prefix",
    )
    _check(
        failures,
        victim_group.repairs >= 1 and scrubber.repairs >= 1,
        "the repair is counted by the group and the scrubber",
    )
    health = victim_group.health()
    _check(
        failures,
        health["repairs"] >= 1
        and str(health["sites"][follower.name]["scrub"]).startswith("repaired")
        and all(s["lag"] == 0 for s in health["sites"].values()),
        "group health surfaces the scrub verdict and zero replication lag",
    )
    events = [
        e.get("event") for e in fleet_journal.entries() if e.get("kind") == "fleet"
    ]
    _check(
        failures,
        "scrub-failed" in events and "scrub-repaired" in events,
        "the scrub verdict and the repair are journaled",
    )

    # -- phase 2: compaction, then recovery over snapshot + tail -------
    print("\nphase 2: snapshot compaction — recovery replays snapshot + tail")
    target = "k2"
    tgroup = groups[target]
    member = fleet.member(target)
    for _ in range(4):  # heartbeats coalesce under folding
        member.journal.heartbeat(int(member.kernel.now), member=target)
    raw_site = next(s for s in tgroup.sites if s is not tgroup.leader)
    tgroup.fail_site(raw_site.name)  # level when killed: keeps raw records
    before = tgroup.entries()
    stats = fleet.member(target).journal.compact()
    print(
        f"compacted {target}: {stats['before']} entries -> {stats['after']} "
        f"(snapshot at seq {stats['last_seq']})"
    )
    _check(
        failures,
        stats["after"] < stats["before"],
        "compaction folded the committed prefix",
    )
    _check(
        failures,
        tgroup.entries() == fold_entries(before),
        "the compacted group serves exactly the folded committed prefix",
    )
    tgroup.recover_site(raw_site.name)
    member.journal.heartbeat(int(member.kernel.now), member=target)
    report = scrubber.scrub_group(tgroup)
    _check(
        failures,
        report.ok and raw_site.base is None and tgroup.leader.base is not None,
        "anti-entropy digests agree across snapshot and raw-log "
        "representations of the same prefix",
    )
    for name in ("k0", "k1"):
        fleet.member(name).journal.compact()
    resumed = coordinator.recover(_good_numa_factory, **rollout_kwargs)
    _check(
        failures,
        resumed is None,
        "recovery over compacted journals finds nothing in flight",
    )
    _check(
        failures,
        fleet_active(fleet, "numa-good", good.plan.kernels()),
        "snapshot + tail replay reconstructs fleet-wide ACTIVE state",
    )

    # -- phase 3: an unreplicated shard rots — quarantine + salvage ----
    print("\nphase 3: an unreplicated shard rots — quarantine, salvage, revert debt")
    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="concordd-scrub-")
    file_fleet = _build_fleet(args, journal_dir)
    file_journal = PolicyJournal(os.path.join(journal_dir, "fleet.jsonl"))
    file_coord = FleetCoordinator(file_fleet, journal=file_journal)
    placement2 = PlacementMap.learn(
        file_fleet, "svc.*.lock", window_ns=args.duration_ns // 20
    )
    good2 = file_coord.execute(
        planner.plan("numa-good", placement2), _good_numa_factory, **rollout_kwargs
    )
    _check(
        failures,
        good2.state is FleetRolloutState.COMPLETE,
        "file-journal rollout COMPLETE",
    )
    victim = file_fleet.member("k1")
    for _ in range(3):
        victim.journal.heartbeat(int(victim.kernel.now), member="k1")
    shard = victim.journal.path
    with open(shard, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    rotten_line = len(lines) - 1  # 1-based: the second-to-last line
    lines[rotten_line - 1] = (
        flip_byte(lines[rotten_line - 1].rstrip("\n"), salt=17) + "\n"
    )
    with open(shard, "w", encoding="utf-8") as fh:
        fh.writelines(lines)
    print(f"flipped one byte of {shard} line {rotten_line} (mid-journal)")
    caught = None
    try:
        PolicyJournal(shard).entries()
    except JournalCorruption as exc:
        caught = exc
    _check(
        failures,
        caught is not None
        and caught.line == rotten_line
        and caught.path == shard
        and "not a torn write" in str(caught),
        "the corruption error reports the physical line and the shard path",
    )
    file_coord.recover(_good_numa_factory, **rollout_kwargs)
    _check(
        failures,
        file_fleet.is_quarantined("k1"),
        "fleet recovery quarantined the rotten shard's member instead of aborting",
    )
    _check(
        failures,
        os.path.exists(shard + ".corrupt"),
        "the rotten suffix is preserved as evidence (<shard>.corrupt)",
    )
    _check(
        failures,
        any(d["kernel"] == "k1" and d["policy"] == "numa-good" for d in file_coord.debt),
        "the stranded ACTIVE policy is booked as revert debt",
    )
    rot_events = [
        e
        for e in file_journal.entries()
        if e.get("kind") == "fleet" and e.get("event") == "shard-corrupt"
    ]
    _check(
        failures,
        rot_events
        and rot_events[0].get("kernel") == "k1"
        and "member k1" in str(rot_events[0].get("cause", "")),
        "the corruption is journaled naming the owning member",
    )
    _check(
        failures,
        fleet_active(
            file_fleet, "numa-good", [k for k in good2.plan.kernels() if k != "k1"]
        ),
        "the surviving kernels keep serving numa-good",
    )
    file_coord.reinstate("k1")
    drained = file_coord.drain_debt()
    _check(
        failures,
        any(d["kernel"] == "k1" for d in drained),
        "reinstate + drain pays the quarantined member's debt",
    )
    _check(
        failures,
        member_stock(file_fleet, "k1", "numa-good"),
        "the reinstated member is back to stock",
    )

    if args.audit:
        for member in fleet.members():
            print(f"\naudit log ({member.name}):")
            print(member.daemon.audit.format())
    if failures:
        print(f"\nscrub scenario FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nscrub scenario passed: checksums caught the rot, quorum peers "
        "repaired it, snapshots replayed faithfully, and the unreplicated "
        "casualty was quarantined with its debt booked"
    )
    return 0


def run_partition_scenario(args) -> int:
    """The partition-tolerance acceptance path, in five phases.

    Every cross-member message — coordinator calls, health probes, and
    each member's replication traffic — crosses one simulated
    :class:`~repro.netsim.Fabric`.  The coordinator's fleet journal
    stays *off* the fabric: the control plane must be able to record a
    halt even while the data path is dark.

    1. **fabric online**: a rollout completes fleet-wide with every
       message over a modelled wire (latency + jitter), every replica
       site answering its probe;
    2. **mid-rollout partition (any-breach)**: one cohort member's link
       goes dark at its bake (a timed ``net.partition.flip``); the
       envelope retries, exhausts, journals ``rpc-exhausted`` classified
       ``unreachable``, and the any-breach verdict halts — the victim
       quarantined, its policy booked as revert debt, every reachable
       kernel back to stock;
    3. **deadline-exceeded (quorum)**: a second coordinator with a tight
       per-call timeout and total sim-time deadline rolls out under
       quorum verdict while one member's link crawls; its envelope gives
       up by *time* — journaled ``deadline-exceeded``, distinct from the
       quarantined member's ``unreachable`` — and the rollout completes
       degraded;
    4. **split brain**: a seeded, replayable
       :class:`~repro.netsim.PartitionSchedule` asymmetrically splits
       one member's group leader from the majority mid-traffic; the
       group commits on the quorum side, fails over, and the deposed
       leader's stale lease is fenced (:class:`StaleLeaderFenced`) —
       its site marked DOWN *partitioned* (log intact), distinct from a
       failed site;
    5. **heal + reconcile**: the schedule heals on time; catch-up and
       scrub converge every site of every group to the same committed
       prefix, the quarantined member is reinstated and its revert debt
       drained, and a final rollout leaves the fleet uniform — never a
       split fleet.
    """
    if args.kernels < 4:
        print(
            "error: partition scenario needs --kernels >= 4 "
            "(two casualties must leave a 0.5 quorum)",
            file=sys.stderr,
        )
        return 2
    if args.sites < 3:
        print(
            "error: partition scenario needs --sites >= 3 "
            "(one partitioned site must leave a quorum)",
            file=sys.stderr,
        )
        return 2
    failures: List[str] = []
    fabric = Fabric(seed=args.seed)
    fabric.set_model(LinkModel(latency_ns=400, jitter_ns=100))
    fleet, groups = _build_replicated_fleet(args, fabric=fabric)
    fleet_group = ReplicaGroup("fleet", nr_sites=args.sites)
    print(
        f"fleet of {len(fleet)} kernels on a simulated fabric "
        f"(seed {args.seed}); journals replicated {args.sites} ways"
    )

    placement = PlacementMap.learn(
        fleet, "svc.*.lock", window_ns=args.duration_ns // 20
    )
    window = args.duration_ns // 10
    rollout_kwargs = dict(
        baseline_ns=window, canary_ns=2 * window, check_every_ns=window // 4
    )
    planner_kwargs = dict(
        max_concurrent_kernels=args.max_concurrent_kernels,
        canary_kernels=1,
        bake_ns=window // 2,
    )
    monitor = HealthMonitor(fleet, fabric=fabric)
    coordinator = FleetCoordinator(
        fleet,
        journal=fleet_group.journal(),
        health=monitor,
        fabric=fabric,
        rpc_jitter_seed=args.seed,
    )

    def fleet_events():
        return [
            e
            for e in fleet_group.journal().entries()
            if e.get("kind") == "fleet"
        ]

    def fleet_active(policy, kernels):
        return all(
            (record := fleet.member(k).daemon.records.get(policy)) is not None
            and record.state is PolicyState.ACTIVE
            for k in kernels
        )

    def member_stock(name, policy):
        member = fleet.member(name)
        record = member.daemon.records.get(policy)
        return (record is None or not record.live) and (
            policy not in member.concord.policies
        )

    def refuel():
        # Re-arm every member's shard workload: each rollout burns
        # simulated time, and a guard judging a drained workload sees
        # starvation, not the policy.
        for m in fleet.members():
            per_lock = 1 if m.name == "k0" else args.tasks_per_lock
            _spawn_shard_workload(
                m.kernel, m.kernel.now + args.duration_ns, per_lock, args.cs_ns
            )

    # -- phase 1: the fabric is online, rollout crosses it -------------
    print("\nphase 1: rollout across the fabric — every message over a modelled wire")
    planner = RolloutPlanner(**planner_kwargs)
    plan1 = planner.plan("numa-good", placement)
    good = coordinator.execute(plan1, _good_numa_factory, **rollout_kwargs)
    print(good.describe())
    _check(
        failures,
        good.state is FleetRolloutState.COMPLETE,
        "rollout COMPLETE with every call over the fabric",
    )
    _check(
        failures,
        fleet_active("numa-good", plan1.kernels()),
        "numa-good ACTIVE on every kernel",
    )
    _check(
        failures,
        fabric.delivered > 0 and fabric.rejected == 0,
        f"the fabric carried the rollout ({fabric.delivered} deliveries, none rejected)",
    )
    probes = monitor.probe_all(include_sites=True)
    _check(
        failures,
        all(r.ok for r in probes.values()),
        f"all {len(probes)} member and site probes cross the fabric HEALTHY",
    )

    # -- phase 2: a link goes dark mid-rollout; any-breach halts -------
    print("\nphase 2: mid-rollout partition — any-breach halts, debt booked")
    refuel()
    plan2 = planner.plan("steady", placement)
    victim = plan2.waves[1].kernels[0]
    print(f"victim: {victim} (its link goes dark at its bake, for 2ms of sim time)")
    kill = FaultPlan(seed=args.seed, name=f"partition-{victim}")
    kill.stall(
        SITE_NET_PARTITION_FLIP,
        delay_ns=2_000_000,
        times=1,
        match={"dst": victim, "op": "bake"},
    )
    with injected(kill):
        halted = coordinator.execute(
            plan2, lambda member: _steady_submission(), **rollout_kwargs
        )
    print(halted.describe())
    _check(
        failures,
        kill.fired[SITE_NET_PARTITION_FLIP] == 1 and fabric.flips == 1,
        "the injected timed partition took the victim's link dark",
    )
    _check(
        failures,
        halted.state is FleetRolloutState.HALTED,
        "any-breach verdict HALTED the rollout",
    )
    _check(
        failures,
        halted.unreachable_kernels() == [victim]
        and fleet.is_quarantined(victim),
        f"{victim} recorded UNREACHABLE and quarantined",
    )
    _check(
        failures,
        (victim, "steady") in [(d["kernel"], d["policy"]) for d in coordinator.debt],
        "the victim's installed policy is booked as revert debt",
    )
    exhausted = [e for e in fleet_events() if e.get("event") == "rpc-exhausted"]
    _check(
        failures,
        any(
            e["kernel"] == victim
            and e["classification"] == "unreachable"
            and e["attempts"] > 1
            for e in exhausted
        ),
        "the envelope's give-up is journaled: rpc-exhausted, classified unreachable",
    )
    events = [e.get("event") for e in fleet_events()]
    _check(
        failures,
        all(e in events for e in ("member-dead", "quarantine", "revert-debt")),
        "member-dead, quarantine, and revert-debt all journaled",
    )
    _check(
        failures,
        all(member_stock(k, "steady") for k in plan2.kernels() if k != victim),
        "every reachable kernel converged to stock",
    )

    # -- phase 3: deadline-exceeded under a quorum verdict -------------
    print("\nphase 3: crawling link + tight deadline — quorum completes degraded")
    refuel()
    deadline_coord = FleetCoordinator(
        fleet,
        journal=fleet_group.journal(),
        client_id="deadline-coord",
        health=monitor,
        member_retries=4,
        fabric=fabric,
        rpc_timeout_ns=5_000,
        rpc_deadline_ns=40_000,
        rpc_jitter_seed=args.seed,
    )
    plan3 = RolloutPlanner(
        verdict_mode="quorum", quorum=args.quorum, **planner_kwargs
    ).plan("deadline-tuner", placement)
    # The slow member sits in the last wave: the quorum check runs on
    # outcomes-so-far after every wave, and two casualties in one early
    # wave would sink it before the survivors could vote.
    slow = next(
        k
        for wave in reversed(plan3.waves[1:])
        for k in wave.kernels
        if k != victim
    )
    print(
        f"slow member: {slow} (every delivery stalls 50us; per-call timeout "
        f"5us, total deadline 40us)"
    )
    lag = FaultPlan(seed=args.seed, name=f"lag-{slow}")
    lag.stall(
        SITE_NET_LINK_DELIVER, delay_ns=50_000, times=None, match={"dst": slow}
    )
    with injected(lag):
        degraded = deadline_coord.execute(
            plan3,
            lambda member: _steady_submission("deadline-tuner"),
            **rollout_kwargs,
        )
    print(degraded.describe())
    _check(
        failures,
        degraded.state is FleetRolloutState.COMPLETE,
        f"quorum ({args.quorum}) completed the rollout degraded",
    )
    _check(
        failures,
        set(degraded.unreachable_kernels()) == {victim, slow},
        f"{victim} (quarantined) and {slow} (deadline) both recorded UNREACHABLE",
    )
    exhausted = [e for e in fleet_events() if e.get("event") == "rpc-exhausted"]
    _check(
        failures,
        any(
            e["kernel"] == slow and e["classification"] == "deadline-exceeded"
            for e in exhausted
        ),
        f"{slow}'s loss journaled deadline-exceeded (time, not attempts)",
    )
    _check(
        failures,
        any(
            e["kernel"] == victim and e["classification"] == "unreachable"
            for e in exhausted
        )
        and not any(
            e["kernel"] == slow and e["classification"] == "unreachable"
            for e in exhausted
        ),
        "the two losses are classified distinctly in the journal",
    )
    survivors = [k for k in plan3.kernels() if k not in (victim, slow)]
    _check(
        failures,
        fleet_active("deadline-tuner", survivors) and member_stock(slow, "deadline-tuner"),
        "survivors at plan; the deadline casualty untouched (never patched)",
    )

    # -- phase 4: scheduled asymmetric split — stale leader fenced -----
    print("\nphase 4: split brain — a scheduled asymmetric partition deposes a leader")
    split_member = next(k for k in sorted(groups) if k not in (victim, slow))
    group = groups[split_member]
    old_leader = group.leader.name
    stale = group.lease()
    epoch_before = group.lease_epoch
    commit_before = group.commit_index
    majority = tuple(
        s.name for s in group.sites if s.name != old_leader
    ) + (split_member,)
    t0 = fabric.clock_ns
    schedule = PartitionSchedule(
        [
            PartitionEvent(
                at_ns=t0 + 1_000,
                action="partition",
                groups=(majority, (old_leader,)),
                asymmetric=True,
            ),
            PartitionEvent(at_ns=t0 + 1_000_000, action="heal"),
        ],
        name=f"split-brain-{args.seed}",
    )
    fabric.schedule = schedule
    print(schedule.describe())
    print(
        f"deposed: {old_leader} (leader of {split_member}'s group; it hears "
        f"the majority, nothing it sends crosses out)"
    )
    replayed = PartitionSchedule.deserialize(schedule.serialize())
    _check(
        failures,
        replayed.serialize() == schedule.serialize() and schedule.ends_healed,
        "the schedule serializes for replay and ends healed",
    )
    fabric.advance(t0 + 2_000)
    _check(
        failures,
        [e.action for e in fabric.applied] == ["partition"],
        "the schedule's partition applied at its simulated time",
    )
    member = fleet.member(split_member)
    member.journal.heartbeat(int(member.kernel.now), member=split_member)
    _check(
        failures,
        group.failovers >= 1
        and group.leader.name != old_leader
        and group.lease_epoch > epoch_before,
        f"the group failed over around the cut ({old_leader} -> "
        f"{group.leader.name}, lease epoch {group.lease_epoch})",
    )
    _check(
        failures,
        group.commit_index > commit_before,
        "the majority side kept committing during the split",
    )
    fenced = False
    try:
        group.append({"kind": "note", "op": "stale-write"}, lease=stale)
    except StaleLeaderFenced:
        fenced = True
    _check(
        failures,
        fenced and group.commit_index == group.site(group.leader.name).commit_index,
        "the deposed leader's stale lease is fenced; the write commits nowhere",
    )
    health = group.health()
    _check(
        failures,
        health["sites"][old_leader]["state"] == "DOWN"
        and health["sites"][old_leader]["partitioned"],
        "health marks the cut site DOWN partitioned (log intact)",
    )
    contrast_group = groups[slow]
    dead_follower = next(
        s for s in contrast_group.sites if s is not contrast_group.leader
    )
    contrast_group.fail_site(dead_follower.name, cause="operator kill")
    _check(
        failures,
        not contrast_group.health()["sites"][dead_follower.name]["partitioned"]
        and "partitioned" not in dead_follower.describe(),
        "a failed site is NOT marked partitioned — the two outages are distinct",
    )
    probe = monitor.probe_sites(split_member)[old_leader]
    _check(
        failures,
        not probe.ok and "partitioned, log intact" in probe.detail,
        "the site probe reports the partition, not a dead disk",
    )

    # -- phase 5: heal, reconcile, drain — never a split fleet ---------
    print("\nphase 5: heal + reconcile — catch-up, scrub, drained debt, uniform fleet")
    fabric.advance(t0 + 1_100_000)
    _check(
        failures,
        [e.action for e in fabric.applied] == ["partition", "heal"],
        "the schedule healed the fabric at its simulated time",
    )
    _check(
        failures,
        fabric.reachable(split_member, old_leader)
        and fabric.reachable(coordinator.client_id, victim),
        "every link is back up (the timed flip healed with the schedule)",
    )
    for name in sorted(groups):
        g = groups[name]
        for site in g.sites:
            if site.state is SiteState.DOWN:
                g.recover_site(site.name)
        m = fleet.member(name)
        m.journal.heartbeat(int(m.kernel.now), member=name)
    scrubber = Scrubber(journal=fleet_group.journal())
    reports = {name: scrubber.scrub_group(groups[name]) for name in sorted(groups)}
    _check(
        failures,
        all(r.ok for r in reports.values()),
        "post-heal scrub passes on every group",
    )
    _check(
        failures,
        all(
            site.committed_entries(g.commit_index) == g.entries()
            for g in groups.values()
            for site in g.sites
        ),
        "every site of every group converged to the same committed prefix",
    )
    coordinator.reinstate(victim)
    coordinator.reinstate(slow)
    recovered = coordinator.recover(_good_numa_factory, **rollout_kwargs)
    _check(
        failures,
        recovered is None and not coordinator.debt,
        "reinstate + recover paid the revert debt — none stranded, nothing in flight",
    )
    _check(
        failures,
        "debt-drained" in [e.get("event") for e in fleet_events()],
        "the drain was journaled (debt-drained)",
    )
    _check(
        failures,
        member_stock(victim, "steady"),
        f"{victim}'s owed policy is back to stock",
    )
    refuel()
    final = coordinator.execute(
        planner.plan("numa-good", placement), _good_numa_factory, **rollout_kwargs
    )
    print(final.describe())
    print(fabric.describe())
    _check(
        failures,
        final.state is FleetRolloutState.COMPLETE
        and fleet_active("numa-good", plan1.kernels()),
        "healed fleet: numa-good uniformly ACTIVE again",
    )
    _check(
        failures,
        not any(fleet.is_quarantined(m.name) for m in fleet.members())
        and all(member_stock(k, "steady") for k in plan2.kernels()),
        "never a split fleet: no quarantine left, the halted policy uniformly stock",
    )

    if args.audit:
        for member in fleet.members():
            print(f"\naudit log ({member.name}):")
            print(member.daemon.audit.format())
    if failures:
        print(
            f"\npartition scenario FAILED ({len(failures)} check(s)):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\npartition scenario passed: the fabric carried the fleet, partitions "
        "were classified and journaled, the stale leader was fenced, and the "
        "heal reconciled every copy"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.concordd",
        description="Run scripted concordd control-plane scenarios.",
    )
    sub = parser.add_subparsers(dest="scenario", required=True)
    rollout = sub.add_parser(
        "rollout", help="bad policy canaries and rolls back; good policy goes ACTIVE"
    )
    rollout.add_argument("--sockets", type=int, default=2)
    rollout.add_argument("--cores", type=int, default=8, help="cores per socket")
    rollout.add_argument("--locks", type=int, default=4, help="shard locks to register")
    rollout.add_argument("--tasks-per-lock", type=int, default=4)
    rollout.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    rollout.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="simulated workload duration in milliseconds",
    )
    rollout.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="SLO guard avg-wait regression budget (default: the paper's 20%%)",
    )
    rollout.add_argument("--seed", type=int, default=7)
    rollout.add_argument(
        "--kernels",
        type=int,
        default=1,
        help="run the scenario on N independent kernels (default 1)",
    )
    rollout.add_argument("--audit", action="store_true", help="print the full audit log")
    rollout.set_defaults(runner=run_rollout_scenario)

    drill = sub.add_parser(
        "drill",
        help="kill the daemon mid-canary, recover from the journal, "
        "then trip the circuit breaker",
    )
    drill.add_argument("--sockets", type=int, default=2)
    drill.add_argument("--cores", type=int, default=8, help="cores per socket")
    drill.add_argument("--locks", type=int, default=4, help="shard locks to register")
    drill.add_argument("--tasks-per-lock", type=int, default=4)
    drill.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    drill.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="simulated workload duration in milliseconds",
    )
    drill.add_argument(
        "--journal",
        default=None,
        help="journal path (default: a fresh temp directory)",
    )
    drill.add_argument("--seed", type=int, default=7)
    drill.add_argument(
        "--kernels",
        type=int,
        default=1,
        help="drill N independent kernels, each on its own journal shard",
    )
    drill.add_argument("--audit", action="store_true", help="print the full audit log")
    drill.set_defaults(runner=run_drill_scenario)

    fleet = sub.add_parser(
        "fleet",
        help="placement-aware waves across many kernels: bad policy halts "
        "the fleet and reverts; good policy goes fleet-wide; mid-wave "
        "crash recovers from the journals",
    )
    fleet.add_argument("--sockets", type=int, default=2)
    fleet.add_argument("--cores", type=int, default=8, help="cores per socket")
    fleet.add_argument(
        "--kernels", type=int, default=3, help="fleet size (minimum 3)"
    )
    fleet.add_argument(
        "--locks", type=int, default=4, help="shard locks per busy kernel"
    )
    fleet.add_argument("--tasks-per-lock", type=int, default=4)
    fleet.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    fleet.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=8.0,
        help="simulated workload duration in milliseconds",
    )
    fleet.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="per-kernel SLO guard avg-wait regression budget",
    )
    fleet.add_argument(
        "--max-concurrent-kernels",
        type=int,
        default=2,
        help="wave width after the canary wave",
    )
    fleet.add_argument(
        "--journal-dir",
        default=None,
        help="directory for the per-kernel + fleet journals "
        "(default: a fresh temp directory)",
    )
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--audit", action="store_true", help="print the full audit log")
    fleet.set_defaults(runner=run_fleet_scenario)

    degraded = sub.add_parser(
        "fleet-degraded",
        help="kill a member mid-wave: any-breach halts and converges to "
        "stock, quorum completes degraded; reinstate + recover drains "
        "the journaled revert debt",
    )
    degraded.add_argument("--sockets", type=int, default=2)
    degraded.add_argument("--cores", type=int, default=8, help="cores per socket")
    degraded.add_argument(
        "--kernels", type=int, default=4, help="fleet size (minimum 4)"
    )
    degraded.add_argument(
        "--locks", type=int, default=4, help="shard locks per busy kernel"
    )
    degraded.add_argument("--tasks-per-lock", type=int, default=4)
    degraded.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    degraded.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=8.0,
        help="simulated workload duration in milliseconds",
    )
    degraded.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="per-kernel SLO guard avg-wait regression budget",
    )
    degraded.add_argument(
        "--max-concurrent-kernels",
        type=int,
        default=2,
        help="wave width after the canary wave",
    )
    degraded.add_argument(
        "--quorum",
        type=float,
        default=0.5,
        help="fraction of kernels that must pass for the degraded rollout",
    )
    degraded.add_argument(
        "--journal-dir",
        default=None,
        help="directory for the per-kernel + fleet journals "
        "(default: a fresh temp directory)",
    )
    degraded.add_argument("--seed", type=int, default=7)
    degraded.add_argument("--audit", action="store_true", help="print the full audit log")
    degraded.set_defaults(runner=run_fleet_degraded_scenario)

    replicated = sub.add_parser(
        "replicated",
        help="journals replicated over N-site groups: leader death fails "
        "over mid-wave, a recovered follower is read-gated until a "
        "committed write, and concurrent overlapping rollouts "
        "serialize (first committer wins)",
    )
    replicated.add_argument("--sockets", type=int, default=2)
    replicated.add_argument("--cores", type=int, default=8, help="cores per socket")
    replicated.add_argument(
        "--kernels", type=int, default=3, help="fleet size (minimum 3)"
    )
    replicated.add_argument(
        "--sites", type=int, default=3, help="replication factor (minimum 3)"
    )
    replicated.add_argument(
        "--locks", type=int, default=4, help="shard locks per busy kernel"
    )
    replicated.add_argument("--tasks-per-lock", type=int, default=4)
    replicated.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    replicated.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=8.0,
        help="simulated workload duration in milliseconds",
    )
    replicated.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="per-kernel SLO guard avg-wait regression budget",
    )
    replicated.add_argument(
        "--max-concurrent-kernels",
        type=int,
        default=2,
        help="wave width after the canary wave",
    )
    replicated.add_argument("--seed", type=int, default=7)
    replicated.add_argument("--audit", action="store_true", help="print the full audit log")
    replicated.set_defaults(runner=run_replicated_scenario)

    scrub = sub.add_parser(
        "scrub",
        help="flip bytes in replicated and unreplicated policy stores: "
        "scrub detects, quorum peers repair, snapshots replay, and a "
        "rotten unreplicated shard quarantines with salvage + debt",
    )
    scrub.add_argument("--sockets", type=int, default=2)
    scrub.add_argument("--cores", type=int, default=8, help="cores per socket")
    scrub.add_argument(
        "--kernels", type=int, default=3, help="fleet size (minimum 3)"
    )
    scrub.add_argument(
        "--sites", type=int, default=3, help="replication factor (minimum 3)"
    )
    scrub.add_argument(
        "--locks", type=int, default=4, help="shard locks per busy kernel"
    )
    scrub.add_argument("--tasks-per-lock", type=int, default=4)
    scrub.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    scrub.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=8.0,
        help="simulated workload duration in milliseconds",
    )
    scrub.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="per-kernel SLO guard avg-wait regression budget",
    )
    scrub.add_argument(
        "--max-concurrent-kernels",
        type=int,
        default=2,
        help="wave width after the canary wave",
    )
    scrub.add_argument(
        "--journal-dir",
        default=None,
        help="directory for phase 3's unreplicated journal shards "
        "(default: a fresh temp directory)",
    )
    scrub.add_argument("--seed", type=int, default=7)
    scrub.add_argument("--audit", action="store_true", help="print the full audit log")
    scrub.set_defaults(runner=run_scrub_scenario)

    partition = sub.add_parser(
        "partition",
        help="simulated network fabric: a mid-rollout partition halts "
        "any-breach with classified rpc-exhausted debt, a deadline "
        "rollout completes degraded under quorum, a scheduled "
        "asymmetric split fences the stale leader, and the heal "
        "reconciles every replica",
    )
    partition.add_argument("--sockets", type=int, default=2)
    partition.add_argument("--cores", type=int, default=8, help="cores per socket")
    partition.add_argument(
        "--kernels", type=int, default=4, help="fleet size (minimum 4)"
    )
    partition.add_argument(
        "--sites", type=int, default=3, help="replication factor (minimum 3)"
    )
    partition.add_argument(
        "--locks", type=int, default=4, help="shard locks per busy kernel"
    )
    partition.add_argument("--tasks-per-lock", type=int, default=4)
    partition.add_argument("--cs-ns", type=int, default=300, help="critical-section length")
    partition.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=8.0,
        help="simulated workload duration in milliseconds",
    )
    partition.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="per-kernel SLO guard avg-wait regression budget",
    )
    partition.add_argument(
        "--max-concurrent-kernels",
        type=int,
        default=2,
        help="wave width after the canary wave",
    )
    partition.add_argument(
        "--quorum",
        type=float,
        default=0.5,
        help="fraction of kernels that must pass the degraded rollout",
    )
    partition.add_argument("--seed", type=int, default=7)
    partition.add_argument("--audit", action="store_true", help="print the full audit log")
    partition.set_defaults(runner=run_partition_scenario)

    guards = sub.add_parser(
        "guards",
        help="tail guard catches a per-lock p99 regression the avg guard "
        "misses; pooled fleet verdict trips on cross-kernel evidence",
    )
    guards.add_argument("--sockets", type=int, default=2)
    guards.add_argument("--cores", type=int, default=8, help="cores per socket")
    guards.add_argument("--locks", type=int, default=4, help="shard locks to register")
    guards.add_argument("--tasks-per-lock", type=int, default=2)
    guards.add_argument("--cs-ns", type=int, default=400, help="critical-section length")
    guards.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="simulated workload duration in milliseconds",
    )
    guards.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="avg-wait budget the old guard judges by (default: the paper's 20%%)",
    )
    guards.add_argument(
        "--max-tail-regression",
        type=float,
        default=0.50,
        help="per-lock p99 regression budget for the tail guard",
    )
    guards.add_argument("--seed", type=int, default=7)
    guards.add_argument(
        "--journal-dir", default=None, help="fleet journal directory (default: tmpdir)"
    )
    guards.set_defaults(runner=run_guards_scenario)

    traffic = sub.add_parser(
        "traffic",
        help="trace-driven load: malthusian knee check, then the same "
        "policy passes the pooled tail guard under a steady trace and "
        "is halted with an attributed breach under a burst trace",
    )
    traffic.add_argument("--sockets", type=int, default=2)
    traffic.add_argument("--cores", type=int, default=8, help="cores per socket")
    traffic.add_argument(
        "--rate-per-ms",
        dest="rate_per_ms",
        type=float,
        default=150.0,
        help="base Poisson arrival rate per kernel (events per simulated ms)",
    )
    traffic.add_argument(
        "--burst-scale",
        dest="burst_scale",
        type=float,
        default=8.0,
        help="rate multiplier during the burst phase",
    )
    traffic.add_argument("--cs-ns", type=int, default=500, help="per-request hold time")
    traffic.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="trace duration in simulated milliseconds",
    )
    traffic.add_argument(
        "--max-tail-regression",
        type=float,
        default=0.60,
        help="pooled p99 regression budget for the tail guard",
    )
    traffic.add_argument("--seed", type=int, default=7)
    traffic.add_argument(
        "--journal-dir", default=None, help="fleet journal directory (default: tmpdir)"
    )
    traffic.add_argument("--audit", action="store_true", help="print the full audit log")
    traffic.set_defaults(runner=run_traffic_scenario)

    adapt = sub.add_parser(
        "adapt",
        help="adaptive overload defense: the loop detects a trace-driven "
        "collapse on pooled fleet evidence, self-proposes a Malthusian "
        "cull and keeps it; a mid-propose kill is recovered without "
        "leaving an unjudged cull; an over-aggressive cap is rolled "
        "back by the fairness guard",
    )
    adapt.add_argument("--sockets", type=int, default=2)
    adapt.add_argument("--cores", type=int, default=4, help="cores per socket")
    adapt.add_argument(
        "--rate-per-ms",
        dest="rate_per_ms",
        type=float,
        default=100.0,
        help="base Poisson arrival rate per kernel (events per simulated ms)",
    )
    adapt.add_argument(
        "--burst-scale",
        dest="burst_scale",
        type=float,
        default=8.0,
        help="rate multiplier during the burst phase",
    )
    adapt.add_argument("--cs-ns", type=int, default=500, help="per-request hold time")
    adapt.add_argument(
        "--waiter-penalty-ns",
        dest="waiter_penalty_ns",
        type=int,
        default=2000,
        help="per-active-waiter hold inflation (the coherence collapse "
        "physics; high enough that the collapsed service rate falls "
        "below the base arrival rate)",
    )
    adapt.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=4.0,
        help="trace duration in simulated milliseconds",
    )
    adapt.add_argument(
        "--trace-seed",
        dest="trace_seed",
        type=int,
        default=42,
        help="trace-generator seed (the burst shape; kernel seeds come "
        "from --seed)",
    )
    adapt.add_argument(
        "--max-skew-increase",
        dest="max_skew_increase",
        type=float,
        default=0.10,
        help="phase 3's tightened per-socket fairness budget (the "
        "over-aggressive cap must blow through it)",
    )
    adapt.add_argument("--seed", type=int, default=42)
    adapt.add_argument(
        "--journal-dir", default=None, help="journal directory (default: tmpdir)"
    )
    adapt.add_argument("--audit", action="store_true", help="print the full audit log")
    adapt.set_defaults(runner=run_adapt_scenario)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.duration_ms <= 0:
        print("error: --duration-ms must be positive", file=sys.stderr)
        return 2
    args.duration_ns = int(args.duration_ms * 1e6)
    return args.runner(args)


if __name__ == "__main__":
    raise SystemExit(main())
