"""Command-line regeneration of the paper's exhibits.

Usage::

    python -m repro.tools.figures fig2a
    python -m repro.tools.figures fig2b --threads 1,20,80 --duration-ms 1
    python -m repro.tools.figures fig2c --chart
    python -m repro.tools.figures all

Prints the same tables the benchmark suite saves under
``benchmarks/results/``; handy for quick calibration loops without
pytest in the way.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from ..sim import paper_machine
from ..workloads import (
    HashTableBench,
    Lock2,
    PageFault2,
    ascii_chart,
    format_normalized,
    format_sweep_table,
    sweep,
)

__all__ = ["main"]

DEFAULT_THREADS = "1,10,20,40,80"


def _parse_threads(text: str) -> List[int]:
    try:
        values = sorted({int(part) for part in text.split(",") if part.strip()})
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad thread list {text!r}") from None
    if not values or min(values) < 1:
        raise argparse.ArgumentTypeError("thread counts must be positive")
    return values


def _sweep_modes(workload_cls, modes, topo, threads, duration_ns, seed):
    out = {}
    for mode in modes:
        started = time.time()
        out[mode] = sweep(
            lambda m=mode: workload_cls(m),
            topo,
            threads,
            duration_ns=duration_ns,
            seed=seed,
        )
        print(f"  [{mode}: {time.time() - started:.1f}s]", file=sys.stderr)
    return out


def run_fig2a(args) -> str:
    topo = paper_machine()
    data = _sweep_modes(
        PageFault2, ("stock", "bravo", "concord-bravo"),
        topo, args.threads, args.duration_ns, args.seed,
    )
    text = format_sweep_table(list(data.values()), "Figure 2(a) page_fault2 (ops/msec)")
    if args.chart:
        text += "\n\n" + ascii_chart({m: s.series() for m, s in data.items()})
    return text


def run_fig2b(args) -> str:
    topo = paper_machine()
    data = _sweep_modes(
        Lock2, ("stock", "shfllock", "concord-shfllock"),
        topo, args.threads, args.duration_ns, args.seed,
    )
    text = format_sweep_table(list(data.values()), "Figure 2(b) lock2 (ops/msec)")
    if args.chart:
        text += "\n\n" + ascii_chart({m: s.series() for m, s in data.items()})
    return text


def run_fig2c(args) -> str:
    topo = paper_machine()
    data = _sweep_modes(
        HashTableBench, ("shfllock", "concord-shfllock", "concord-nopolicy"),
        topo, args.threads, args.duration_ns, args.seed,
    )
    return (
        format_normalized(
            data["shfllock"], data["concord-shfllock"],
            "Figure 2(c): Concord-ShflLock / ShflLock",
        )
        + "\n\n"
        + format_normalized(
            data["shfllock"], data["concord-nopolicy"],
            "Worst case: patched site, no userspace code",
        )
    )


_RUNNERS = {"fig2a": run_fig2a, "fig2b": run_fig2b, "fig2c": run_fig2c}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.figures",
        description="Regenerate the paper's evaluation exhibits on the simulator.",
    )
    parser.add_argument(
        "exhibit",
        choices=sorted(_RUNNERS) + ["all"],
        help="which exhibit to regenerate",
    )
    parser.add_argument(
        "--threads",
        type=_parse_threads,
        default=_parse_threads(DEFAULT_THREADS),
        help=f"comma-separated thread counts (default {DEFAULT_THREADS})",
    )
    parser.add_argument(
        "--duration-ms",
        dest="duration_ms",
        type=float,
        default=2.0,
        help="simulated measurement window per point, in milliseconds",
    )
    parser.add_argument("--seed", type=int, default=42, help="simulation seed")
    parser.add_argument(
        "--chart", action="store_true", help="append an ASCII shape chart"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.duration_ms <= 0:
        print("error: --duration-ms must be positive", file=sys.stderr)
        return 2
    args.duration_ns = int(args.duration_ms * 1e6)
    targets = sorted(_RUNNERS) if args.exhibit == "all" else [args.exhibit]
    for index, target in enumerate(targets):
        if index:
            print()
        print(_RUNNERS[target](args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
