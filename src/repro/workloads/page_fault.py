"""``page_fault2`` — the Figure 2(a) workload.

will-it-scale's page_fault2: every iteration each thread mmaps an
anonymous region, write-faults every page in it, and unmaps it.  The
fault path takes ``mmap_lock`` for read; the map/unmap bookends take it
for write.  One operation = one page populated (will-it-scale's
counter).

Three configurations, matching the figure's series:

* ``stock``          — plain neutral rw-semaphore (unpatched call site);
* ``bravo``          — BRAVO compiled in (wrapped before the run, no
  patched-site trampoline);
* ``concord-bravo``  — stock at boot; Concord livepatches the BRAVO
  layer in during setup, so every acquisition also pays the patched
  call-site costs.
"""

from __future__ import annotations

from typing import Any, Dict

from ..concord.framework import Concord
from ..concord.policies.reader_bias import install_bravo
from ..kernel.core import Kernel
from ..kernel.mm import AddressSpace
from ..locks.bravo import BravoLock
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["PageFault2", "MODES"]

MODES = ("stock", "bravo", "concord-bravo")

#: Pages touched per mmap/touch*/munmap iteration.  will-it-scale maps
#: 128 MB (32k pages) per round; 512 keeps simulation cost sane while
#: keeping write-lock operations rare (1 mmap+munmap per 512 faults).
PAGES_PER_ITERATION = 512
#: Userspace work between faults (ns) — the benchmark's write loop.
THINK_NS = 120


class PageFault2(Workload):
    """One shared address space; per-thread regions; fault-heavy."""

    def __init__(self, mode: str = "stock", pages: int = PAGES_PER_ITERATION) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.pages = pages
        self.name = f"page_fault2[{mode}]"
        self.mm: AddressSpace = None
        self.concord: Concord = None
        self.threads = 0  # set by the runner before setup

    def setup(self, kernel: Kernel) -> None:
        self.mm = AddressSpace(kernel, name="mm")
        # Pre-map each worker's first region (the benchmark's setup phase
        # runs before timing starts); later remaps happen naturally
        # staggered, so the measurement window never starts with every
        # thread serialized behind the write lock.
        for index in range(self.threads):
            self.mm._vmas[self._region_base(index)] = self.pages
        if self.mode == "bravo":
            # Compiled-in BRAVO: wrap the implementation directly (no
            # livepatch, no trampoline) — what a rebuilt kernel would run.
            site = self.mm.mmap_lock
            site.core.impl = BravoLock(
                kernel.engine, site.core.impl, name="mm.bravo.compiled"
            )
        elif self.mode == "concord-bravo":
            self.concord = Concord(kernel)
            install_bravo(self.concord, "mm.mmap_lock")

    @staticmethod
    def _region_base(worker_index: int) -> int:
        return (worker_index + 1) * 1_000_000

    def worker(self, task, worker_index: int):
        mm = self.mm
        pages = self.pages
        rng = task.engine.rng
        # Each thread owns a disjoint page range, remapped every round.
        base = self._region_base(worker_index)
        first = True
        while True:
            if not first:
                yield from mm.mmap(task, base, pages)
            first = False
            for page in range(base, base + pages):
                yield from mm.page_fault(task, page)
                task.stats["ops"] = task.stats.get("ops", 0) + 1
                yield Delay(rng.randint(THINK_NS // 2, THINK_NS * 2))
            yield from mm.munmap(task, base)

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        out: Dict[str, Any] = {"faults": self.mm.faults, "mmaps": self.mm.mmaps}
        impl = self.mm.mmap_lock.core.impl
        if isinstance(impl, BravoLock):
            out["bravo_fastpath"] = impl.fastpath_reads
            out["bravo_slowpath"] = impl.slowpath_reads
            out["bravo_revocations"] = impl.revocations
        return out
