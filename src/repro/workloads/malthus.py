"""``malthus`` — scalability collapse past a concurrency knee.

The Malthusian Locks observation (PAPERS.md): admitting every waiter to
the contention pool is not neutral — past saturation each extra thread
*reduces* throughput, because the critical section itself slows down as
the waiting crowd grows (cache pressure from queue nodes and the lock
word bouncing through more caches).

This workload makes the knee measurable and deterministic: an MCS lock
(so queueing itself is fair and flat) plus a critical-section cost that
grows linearly with the number of in-flight contenders::

    cs(n_inflight) = cs_ns + waiter_penalty_ns * (n_inflight - 1)

Below the knee (``threads < 1 + think/cs``) the lock is not saturated
and throughput climbs with threads; past it, every added thread only
deepens the queue and inflates ``cs``, so throughput *falls* — the
collapse a culling policy should detect in the p99 histogram and
reverse by parking excess waiters.

Only the *active* crowd pays the penalty: a lock impl that parks excess
waiters (``CullingLock``) exports ``parked_count``, and parked waiters
are subtracted from the in-flight count before the penalty is charged —
they sit on a passive stack, not in anyone's cache.  That is the whole
Malthusian mechanism: culling shrinks the crowd, the critical section
shrinks back to ``cs_ns``, throughput recovers.  For stock impls
(no ``parked_count``) the cost model is unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..kernel.core import Kernel
from ..locks.mcs import MCSLock
from ..sim.ops import Delay
from .runner import SweepResult, Workload

__all__ = ["MalthusianBench", "knee_threads"]

#: Base critical-section cost at one contender.
CS_NS = 700
#: Mean think time between operations.
THINK_NS = 2100
#: Extra critical-section cost per additional in-flight contender.
WAITER_PENALTY_NS = 350


class MalthusianBench(Workload):
    def __init__(
        self,
        cs_ns: int = CS_NS,
        think_ns: int = THINK_NS,
        waiter_penalty_ns: int = WAITER_PENALTY_NS,
    ) -> None:
        self.cs_ns = cs_ns
        self.think_ns = think_ns
        self.waiter_penalty_ns = waiter_penalty_ns
        self.name = "malthus"
        self.site = None
        self._inflight = 0
        self.peak_inflight = 0
        self._waits: List[int] = []

    def expected_knee(self) -> int:
        """The saturation point of the closed M/D/1-ish loop."""
        return max(1, round((self.cs_ns + self.think_ns) / self.cs_ns))

    def setup(self, kernel: Kernel) -> None:
        self.site = kernel.add_lock(
            "bench.malthus", MCSLock(kernel.engine, name="bench.malthus")
        )

    def _parked(self) -> int:
        """Waiters culled onto a passive stack (they cost no coherence)."""
        core = getattr(self.site, "core", None)
        impl = core.impl if core is not None else self.site
        return getattr(impl, "parked_count", 0)

    def worker(self, task, worker_index: int):
        site = self.site
        rng = task.engine.rng
        while True:
            self._inflight += 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
            entered = task.engine.now
            yield from site.acquire(task)
            self._waits.append(task.engine.now - entered)
            crowd = max(0, self._inflight - 1 - self._parked())
            yield Delay(self.cs_ns + self.waiter_penalty_ns * crowd)
            yield from site.release(task)
            self._inflight -= 1
            task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(self.think_ns // 2, (3 * self.think_ns) // 2))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        waits = sorted(self._waits)

        def q(frac: float) -> int:
            if not waits:
                return 0
            return waits[min(len(waits) - 1, int(frac * len(waits)))]

        return {
            "acquisitions": self.site.core.impl.acquisitions,
            "expected_knee": self.expected_knee(),
            "peak_inflight": self.peak_inflight,
            "wait_p50_ns": q(0.50),
            "wait_p99_ns": q(0.99),
        }


def knee_threads(result: SweepResult) -> Optional[int]:
    """The thread count where throughput peaked (the measured knee).

    Returns ``None`` on a monotone sweep that never collapses: if the
    peak sits on the *last* measured point, throughput was still
    climbing when the sweep ended, and there is no knee to report.
    Callers (the collapse detector above all) must treat ``None`` as
    "healthy so far, keep watching" rather than inventing a knee at the
    sweep boundary — the old behaviour of returning the boundary point
    made a scalable lock look collapsed.
    """
    points = sorted(result.points, key=lambda p: p.threads)
    best = None
    for point in points:
        if best is None or point.ops_per_msec > best.ops_per_msec:
            best = point
    if best is None or best is points[-1]:
        return None
    return best.threads
