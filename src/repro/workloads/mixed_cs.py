"""Long vs short critical sections — the scheduler-subversion workload.

After Patel et al. (EuroSys '20): a few "hog" threads hold the lock for
long critical sections while many "mouse" threads need it briefly.
Under FIFO ordering lock *opportunities* are equal but lock *time* is
not: hogs monopolize the resource and subvert the CPU scheduler's goals.

The benchmark reports each class's throughput and share of total lock
hold time; the SCL policy (usage-based reordering) should push hold-time
shares toward proportional.
"""

from __future__ import annotations

from typing import Any, Dict

from ..concord.framework import Concord
from ..concord.policies.scl import make_scl_policies
from ..kernel.core import Kernel
from ..locks.shfllock import ShflLock
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["MixedCSBench", "MODES"]

MODES = ("fifo", "scl")

SHORT_CS_NS = 300
LONG_CS_NS = 6000
_THINK_MAX_NS = 400


class MixedCSBench(Workload):
    def __init__(self, mode: str = "fifo", hog_every: int = 4) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.hog_every = hog_every
        self.name = f"mixed_cs[{mode}]"
        self.site = None
        self.concord: Concord = None
        self.hold_ns = {"hog": 0, "mouse": 0}

    def setup(self, kernel: Kernel) -> None:
        self.site = kernel.add_lock(
            "bench.mixed", ShflLock(kernel.engine, name="mixed.shfllock")
        )
        if self.mode == "scl":
            self.concord = Concord(kernel)
            specs, _usage = make_scl_policies(lock_selector="bench.mixed")
            for spec in specs:
                self.concord.load_policy(spec)

    def worker(self, task, worker_index: int):
        is_hog = worker_index % self.hog_every == 0
        task.stats["class"] = "hog" if is_hog else "mouse"
        cs_ns = LONG_CS_NS if is_hog else SHORT_CS_NS
        rng = task.engine.rng
        site = self.site
        label = task.stats["class"]
        while True:
            yield from site.acquire(task)
            yield Delay(cs_ns)
            self.hold_ns[label] += cs_ns
            yield from site.release(task)
            task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(0, _THINK_MAX_NS))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        total = sum(self.hold_ns.values()) or 1
        return {
            "hog_hold_share": self.hold_ns["hog"] / total,
            "mouse_hold_share": self.hold_ns["mouse"] / total,
        }
