"""Benchmark workloads reproducing the paper's evaluation.

* :mod:`.page_fault` — will-it-scale ``page_fault2`` (Figure 2a);
* :mod:`.lock2` — will-it-scale ``lock2`` (Figure 2b);
* :mod:`.hashtable` — global-lock hash table (Figure 2c);
* :mod:`.rename_bench` — multi-lock VFS chains (lock inheritance);
* :mod:`.mixed_cs` — long/short critical sections (scheduler subversion);
* :mod:`.range_lock` — address-space interval contention (Scalable Range Locks);
* :mod:`.malthus` — collapse past a concurrency knee (Malthusian Locks);
* :mod:`.runner` / :mod:`.report` — the measurement harness.
"""

from .hashtable import HashTableBench, SimHashTable
from .lock2 import Lock2
from .malthus import MalthusianBench, knee_threads
from .mixed_cs import MixedCSBench
from .page_fault import PageFault2
from .range_lock import RangeLockBench
from .rename_bench import RenameBench
from .report import ascii_chart, format_normalized, format_sweep_table, normalized_series
from .runner import RunResult, SweepResult, Workload, run_throughput, sweep

__all__ = [
    "HashTableBench",
    "SimHashTable",
    "Lock2",
    "MalthusianBench",
    "knee_threads",
    "MixedCSBench",
    "PageFault2",
    "RangeLockBench",
    "RenameBench",
    "ascii_chart",
    "format_normalized",
    "format_sweep_table",
    "normalized_series",
    "RunResult",
    "SweepResult",
    "Workload",
    "run_throughput",
    "sweep",
]
