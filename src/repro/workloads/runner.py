"""Workload harness: fixed-duration throughput runs and thread sweeps.

will-it-scale methodology: pin one worker per CPU (filling sockets in
order, as the paper's 8-socket runs do), start workers with random skew
(real threads never start in lockstep), warm up, then measure operations
completed in a fixed window of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..kernel.core import Kernel
from ..sim.topology import Topology

__all__ = ["Workload", "RunResult", "SweepResult", "run_throughput", "sweep"]

#: Default measurement window (simulated ns).
DEFAULT_DURATION_NS = 3_000_000
#: Default warmup before the window opens.
DEFAULT_WARMUP_NS = 400_000
#: Worker start times are spread over this interval.
START_SKEW_NS = 50_000


class Workload:
    """Base class for benchmark workloads.

    Subclasses implement :meth:`setup` (build kernel objects, install
    policies — returns nothing) and :meth:`worker` (an infinite
    generator loop that increments ``task.stats["ops"]``).
    """

    name = "workload"

    def setup(self, kernel: Kernel) -> None:
        raise NotImplementedError

    def worker(self, task, worker_index: int):
        raise NotImplementedError

    def teardown(self, kernel: Kernel) -> None:
        """Optional post-run hook (collect workload-specific stats)."""

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        """Extra result fields recorded per run."""
        return {}


@dataclass
class RunResult:
    """One fixed-duration measurement."""

    workload: str
    threads: int
    duration_ns: int
    ops: int
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_msec(self) -> float:
        return self.ops / (self.duration_ns / 1e6) if self.duration_ns else 0.0

    def __repr__(self) -> str:
        return (
            f"RunResult({self.workload}, n={self.threads}, "
            f"{self.ops_per_msec:.1f} ops/msec)"
        )


@dataclass
class SweepResult:
    """A thread-count sweep of one configuration."""

    workload: str
    points: List[RunResult]

    def series(self) -> List[tuple]:
        return [(p.threads, p.ops_per_msec) for p in self.points]

    def at(self, threads: int) -> Optional[RunResult]:
        for p in self.points:
            if p.threads == threads:
                return p
        return None


def run_throughput(
    workload: Workload,
    topology: Topology,
    threads: int,
    duration_ns: int = DEFAULT_DURATION_NS,
    warmup_ns: int = DEFAULT_WARMUP_NS,
    seed: int = 42,
    **kernel_kwargs,
) -> RunResult:
    """Run one fixed-duration throughput measurement."""
    if threads > topology.nr_cpus:
        raise ValueError(f"{threads} threads > {topology.nr_cpus} cpus")
    kernel = Kernel(topology, seed=seed, **kernel_kwargs)
    workload.threads = threads  # visible to setup (e.g. to pre-map regions)
    workload.setup(kernel)
    base_ns = kernel.now  # setup may consume simulated time
    rng = kernel.engine.rng
    order = topology.fill_order()
    tasks = []
    for index in range(threads):
        task = kernel.spawn(
            lambda t, i=index: workload.worker(t, i),
            cpu=order[index],
            name=f"{workload.name}-{index}",
            at=base_ns + rng.randint(0, START_SKEW_NS),
        )
        tasks.append(task)

    baseline: Dict[int, int] = {}

    def snapshot():
        for task in tasks:
            baseline[task.tid] = task.stats.get("ops", 0)

    warm_end = base_ns + START_SKEW_NS + warmup_ns
    kernel.engine.call_at(warm_end, snapshot)
    kernel.run(until=warm_end + duration_ns)
    workload.teardown(kernel)
    ops = sum(task.stats.get("ops", 0) - baseline.get(task.tid, 0) for task in tasks)
    return RunResult(
        workload=workload.name,
        threads=threads,
        duration_ns=duration_ns,
        ops=ops,
        extras=workload.extras(kernel),
    )


def sweep(
    workload_factory: Callable[[], Workload],
    topology: Topology,
    thread_counts: Sequence[int],
    **kwargs,
) -> SweepResult:
    """Sweep thread counts; a fresh workload instance per point."""
    points = []
    name = None
    for threads in thread_counts:
        workload = workload_factory()
        name = workload.name
        points.append(run_throughput(workload, topology, threads, **kwargs))
    return SweepResult(workload=name or "workload", points=points)
