"""``lock2`` — the Figure 2(b) workload.

will-it-scale's contended-lock microbenchmark: every thread hammers one
global kernel spinlock with a tiny critical section.  One operation =
one acquire/release pair.

Series from the figure:

* ``stock``            — MCS queue lock (Linux qspinlock's discipline);
* ``shfllock``         — ShflLock with the NUMA policy compiled in;
* ``concord-shfllock`` — plain ShflLock at boot; Concord loads the NUMA
  cmp_node program at setup, so shuffling decisions run in the BPF VM
  and the call site pays the patched trampoline.
"""

from __future__ import annotations

from typing import Any, Dict

from ..concord.framework import Concord
from ..concord.policies.numa import make_numa_policy
from ..kernel.core import Kernel
from ..locks.mcs import MCSLock
from ..locks.shfllock import NumaPolicy, ShflLock
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["Lock2", "MODES"]

MODES = ("stock", "shfllock", "concord-shfllock")

CS_NS = 100
THINK_MAX_NS = 400


class Lock2(Workload):
    def __init__(self, mode: str = "stock", cs_ns: int = CS_NS) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.cs_ns = cs_ns
        self.name = f"lock2[{mode}]"
        self.site = None
        self.concord: Concord = None

    def setup(self, kernel: Kernel) -> None:
        engine = kernel.engine
        if self.mode == "stock":
            impl = MCSLock(engine, name="lock2.qspinlock")
        elif self.mode == "shfllock":
            impl = ShflLock(engine, name="lock2.shfllock", policy=NumaPolicy())
        else:
            impl = ShflLock(engine, name="lock2.shfllock")
        self.site = kernel.add_lock("bench.lock2", impl)
        if self.mode == "concord-shfllock":
            self.concord = Concord(kernel)
            self.concord.load_policy(
                make_numa_policy(lock_selector="bench.lock2", name="lock2-numa")
            )

    def worker(self, task, worker_index: int):
        site = self.site
        cs_ns = self.cs_ns
        rng = task.engine.rng
        while True:
            yield from site.acquire(task)
            yield Delay(cs_ns)
            yield from site.release(task)
            task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(0, THINK_MAX_NS))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        impl = self.site.core.impl
        out: Dict[str, Any] = {"acquisitions": impl.acquisitions}
        if isinstance(impl, ShflLock):
            out["shuffle_passes"] = impl.shuffle_passes
            out["shuffle_moves"] = impl.shuffle_moves
        return out
