"""Multi-lock VFS workload for the lock-inheritance use case (§3.1.1).

Two thread classes share a directory pair:

* **renamers** move files between the directories — each rename takes
  the rename mutex plus both directory locks (a 3-lock chain, so a
  renamer frequently *holds* locks while waiting for the next one);
* **creators** churn files in one directory — single-lock operations.

Under FIFO ordering a lock-holding renamer can sit at the back of a
directory lock's queue behind lock-free creators, stalling everyone
queued on the locks it already holds.  The inheritance policy moves
holders forward; the benchmark reports per-class throughput and rename
latency with and without it.
"""

from __future__ import annotations

from typing import Any, Dict

from ..concord.framework import Concord
from ..concord.policies.inheritance import make_inheritance_policy
from ..kernel.core import Kernel
from ..kernel.vfs import VFS
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["RenameBench", "MODES"]

MODES = ("fifo", "inheritance")

_THINK_MAX_NS = 500


class RenameBench(Workload):
    def __init__(self, mode: str = "fifo", renamer_ratio: float = 0.25, files: int = 64) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.renamer_ratio = renamer_ratio
        self.files = files
        self.name = f"rename[{mode}]"
        self.vfs: VFS = None
        self.dir_a = None
        self.dir_b = None
        self.concord: Concord = None
        self.rename_latencies = []

    def setup(self, kernel: Kernel) -> None:
        self.vfs = VFS(kernel)
        # Build the directory pair synchronously via a setup task.
        done = {}

        def builder(task):
            self.dir_a = yield from self.vfs.mkdir(task, self.vfs.root, "a")
            self.dir_b = yield from self.vfs.mkdir(task, self.vfs.root, "b")
            for index in range(self.files):
                yield from self.vfs.create(task, self.dir_a, f"f{index}")
            done["ok"] = True

        kernel.spawn(builder, cpu=0, name="vfs-setup", at=0)
        kernel.run(until=1)  # drain setup before workers spawn
        while not done:
            kernel.run(until=kernel.now + 100_000)
        if self.mode == "inheritance":
            self.concord = Concord(kernel)
            spec, _declared = make_inheritance_policy(lock_selector="vfs.inode.*.lock")
            self.concord.load_policy(spec)

    def worker(self, task, worker_index: int):
        rng = task.engine.rng
        is_renamer = (worker_index % max(1, int(1 / self.renamer_ratio))) == 0
        task.stats["class"] = "renamer" if is_renamer else "creator"
        seq = 0
        while True:
            if is_renamer:
                name = f"f{rng.randrange(self.files)}"
                src, dst = (
                    (self.dir_a, self.dir_b) if rng.random() < 0.5 else (self.dir_b, self.dir_a)
                )
                start = task.engine.now
                try:
                    yield from self.vfs.rename(task, src, name, dst, name)
                    self.rename_latencies.append(task.engine.now - start)
                    task.stats["ops"] = task.stats.get("ops", 0) + 1
                except Exception:
                    pass  # file moved by a peer: retry another
            else:
                # Creators split across both directories so each
                # directory's queue mixes lock-free creators with
                # lock-holding renamers — the inheritance scenario.
                target = self.dir_a if worker_index % 2 else self.dir_b
                name = f"w{worker_index}.{seq}"
                seq += 1
                yield from self.vfs.create(task, target, name)
                yield from self.vfs.unlink(task, target, name)
                task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(0, _THINK_MAX_NS))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        lat = sorted(self.rename_latencies)
        out: Dict[str, Any] = {"renames": self.vfs.renames, "creates": self.vfs.creates}
        if lat:
            out["rename_p50_ns"] = lat[len(lat) // 2]
            out["rename_p99_ns"] = lat[min(len(lat) - 1, int(len(lat) * 0.99))]
        return out
