"""``rangelock`` — address-space interval contention (Scalable Range Locks).

An mmap/munmap-style workload over a paged address space: most
operations are page accesses that read a small interval of the worker's
own region, the rest are map/unmap calls that write a larger interval
placed anywhere in the space.  Two modes share the same op stream:

* ``range``  — a :class:`~repro.locks.range_lock.RangeLock`: operations
  serialize only where their intervals overlap with a writer;
* ``global`` — one :class:`~repro.locks.rwsem.RWSemaphore` over the
  whole space (the classic ``mmap_sem``): every map/unmap excludes
  every page access.

With disjoint per-worker read regions the range mode keeps scaling
where the global semaphore flatlines — the effect Scalable Range Locks
measures on real kernels.
"""

from __future__ import annotations

from typing import Any, Dict

from ..kernel.core import Kernel
from ..locks.range_lock import RangeLock
from ..locks.rwsem import RWSemaphore
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["RangeLockBench", "RANGE_MODES"]

RANGE_MODES = ("range", "global")

#: Total address space, in pages.
SPACE_PAGES = 4096
#: Critical-section cost of a page access (fault service).
READ_CS_NS = 250
#: Critical-section cost of a map/unmap (VMA surgery).
WRITE_CS_NS = 600
#: Think time upper bound between operations.
THINK_MAX_NS = 400
#: Fraction of operations that are map/unmap writes.
WRITE_FRACTION = 0.2


class RangeLockBench(Workload):
    def __init__(
        self,
        mode: str = "range",
        pages: int = SPACE_PAGES,
        write_fraction: float = WRITE_FRACTION,
    ) -> None:
        if mode not in RANGE_MODES:
            raise ValueError(f"mode must be one of {RANGE_MODES}")
        self.mode = mode
        self.pages = pages
        self.write_fraction = write_fraction
        self.name = f"rangelock[{mode}]"
        self.rlock: RangeLock = None
        self.site = None

    def setup(self, kernel: Kernel) -> None:
        if self.mode == "range":
            self.rlock = RangeLock(kernel.engine, name="mm.addr_space")
        else:
            self.site = kernel.add_rwlock(
                "mm.mmap_sem", RWSemaphore(kernel.engine, name="mm.mmap_sem")
            )

    def worker(self, task, worker_index: int):
        rng = task.engine.rng
        pages = self.pages
        # Each worker faults within its own slice of the space; map and
        # unmap ranges land anywhere, so writers cross slice boundaries.
        threads = max(1, getattr(self, "threads", 1))
        slice_pages = max(8, pages // threads)
        slice_base = (worker_index * slice_pages) % pages
        while True:
            write = rng.random() < self.write_fraction
            if write:
                span = rng.randint(8, 64)
                start = rng.randint(0, max(0, pages - span))
                cs = WRITE_CS_NS
            else:
                span = rng.randint(1, 4)
                start = slice_base + rng.randint(0, max(0, slice_pages - span))
                cs = READ_CS_NS
            end = start + span
            if self.mode == "range":
                if write:
                    yield from self.rlock.write_acquire(task, start, end)
                    yield Delay(cs)
                    yield from self.rlock.write_release(task, start, end)
                else:
                    yield from self.rlock.read_acquire(task, start, end)
                    yield Delay(cs)
                    yield from self.rlock.read_release(task, start, end)
            else:
                if write:
                    yield from self.site.write_acquire(task)
                    yield Delay(cs)
                    yield from self.site.write_release(task)
                else:
                    yield from self.site.read_acquire(task)
                    yield Delay(cs)
                    yield from self.site.read_release(task)
            task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(0, THINK_MAX_NS))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        if self.mode == "range":
            return {
                "acquisitions": self.rlock.acquisitions,
                "read_grants": self.rlock.read_grants,
                "write_grants": self.rlock.write_grants,
                "conflicts": self.rlock.conflicts,
                "peak_concurrency": self.rlock.peak_concurrency,
            }
        impl = self.site.core.impl
        return {"acquisitions": impl.acquisitions}
