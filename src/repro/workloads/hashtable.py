"""Global-lock hash table — the Figure 2(c) worst case.

"We use a benchmark that uses a global lock to protect the hash table
... dynamically modifying lock algorithms can incur up to 20 % overhead
in the worst-case scenario when no userspace code is executed."

Critical sections are tiny (a hash + a bucket probe), so any per-entry
cost at a patched call site — the livepatch trampoline and Concord's
dispatch check — lands directly on the serialized path.  The benchmark
reports the throughput of ``concord-shfllock`` normalized to plain
``shfllock``; the gap *is* the framework overhead.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..concord.framework import Concord
from ..concord.policies.numa import make_numa_policy
from ..kernel.core import Kernel
from ..locks.shfllock import NumaPolicy, ShflLock
from ..sim.ops import Delay
from .runner import Workload

__all__ = ["HashTableBench", "SimHashTable", "MODES"]

MODES = ("shfllock", "concord-shfllock", "concord-nopolicy")

#: ns per bucket entry scanned inside the critical section.
_SCAN_PER_ENTRY_NS = 18
_HASH_NS = 25
_INSERT_NS = 60
_THINK_MAX_NS = 250


class SimHashTable:
    """A chained hash table whose operation costs scale with chain length."""

    def __init__(self, buckets: int = 1024) -> None:
        self.buckets: List[List[int]] = [[] for _ in range(buckets)]
        self.size = 0

    def bucket_of(self, key: int) -> int:
        return hash(key) % len(self.buckets)

    def lookup_cost(self, key: int) -> int:
        chain = self.buckets[self.bucket_of(key)]
        return _HASH_NS + _SCAN_PER_ENTRY_NS * max(1, len(chain))

    def contains(self, key: int) -> bool:
        return key in self.buckets[self.bucket_of(key)]

    def insert(self, key: int) -> None:
        chain = self.buckets[self.bucket_of(key)]
        if key not in chain:
            chain.append(key)
            self.size += 1

    def delete(self, key: int) -> bool:
        chain = self.buckets[self.bucket_of(key)]
        if key in chain:
            chain.remove(key)
            self.size -= 1
            return True
        return False


class HashTableBench(Workload):
    """Mixed lookup/insert/delete under one global lock.

    Modes:

    * ``shfllock``         — compiled NUMA ShflLock, unpatched site;
    * ``concord-shfllock`` — NUMA policy loaded via Concord (patched);
    * ``concord-nopolicy`` — patched site with an *empty* hook set:
      isolates the pure trampoline cost ("no userspace code executed").
    """

    def __init__(self, mode: str = "shfllock", keyspace: int = 4096) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.mode = mode
        self.keyspace = keyspace
        self.name = f"hashtable[{mode}]"
        self.table = SimHashTable()
        self.site = None
        self.concord: Concord = None

    def setup(self, kernel: Kernel) -> None:
        engine = kernel.engine
        if self.mode == "shfllock":
            impl = ShflLock(engine, name="ht.shfllock", policy=NumaPolicy())
        elif self.mode == "concord-shfllock":
            impl = ShflLock(engine, name="ht.shfllock")
        else:  # concord-nopolicy: keep the compiled policy, add patching
            impl = ShflLock(engine, name="ht.shfllock", policy=NumaPolicy())
        self.site = kernel.add_lock("bench.hashtable", impl)
        if self.mode == "concord-shfllock":
            self.concord = Concord(kernel)
            self.concord.load_policy(
                make_numa_policy(lock_selector="bench.hashtable", name="ht-numa")
            )
        elif self.mode == "concord-nopolicy":
            # Patched call site, no programs: pure framework overhead.
            self.site.set_patched(True)
        # Pre-populate to a steady-state fill level.
        for key in range(0, self.keyspace, 2):
            self.table.insert(key)

    def worker(self, task, worker_index: int):
        table = self.table
        site = self.site
        rng = task.engine.rng
        keyspace = self.keyspace
        while True:
            key = rng.randrange(keyspace)
            op = rng.random()
            yield from site.acquire(task)
            if op < 0.8:
                yield Delay(table.lookup_cost(key))
                table.contains(key)
            elif op < 0.9:
                yield Delay(table.lookup_cost(key) + _INSERT_NS)
                table.insert(key)
            else:
                yield Delay(table.lookup_cost(key) + _INSERT_NS)
                table.delete(key)
            yield from site.release(task)
            task.stats["ops"] = task.stats.get("ops", 0) + 1
            yield Delay(rng.randint(0, _THINK_MAX_NS))

    def extras(self, kernel: Kernel) -> Dict[str, Any]:
        return {"table_size": self.table.size}
