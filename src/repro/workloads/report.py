"""Result formatting: the tables and series the paper's figures show."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .runner import SweepResult

__all__ = ["format_sweep_table", "format_normalized", "ascii_chart"]


def format_sweep_table(sweeps: Sequence[SweepResult], title: str = "") -> str:
    """Side-by-side ops/msec table, one column per configuration."""
    if not sweeps:
        return "(no data)"
    threads = [p.threads for p in sweeps[0].points]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'#thread':>8}" + "".join(f"{s.workload:>24}" for s in sweeps)
    lines.append(header)
    lines.append("-" * len(header))
    for index, n in enumerate(threads):
        row = f"{n:>8}"
        for s in sweeps:
            row += f"{s.points[index].ops_per_msec:>24.1f}"
        lines.append(row)
    return "\n".join(lines)


def format_normalized(
    base: SweepResult, other: SweepResult, title: str = ""
) -> str:
    """Normalized-throughput table (Figure 2c style: other / base)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'#thread':>8}{'normalized':>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for bp, op in zip(base.points, other.points):
        ratio = op.ops_per_msec / bp.ops_per_msec if bp.ops_per_msec else 0.0
        lines.append(f"{bp.threads:>8}{ratio:>14.3f}")
    return "\n".join(lines)


def normalized_series(base: SweepResult, other: SweepResult) -> List[Tuple[int, float]]:
    out = []
    for bp, op in zip(base.points, other.points):
        ratio = op.ops_per_msec / bp.ops_per_msec if bp.ops_per_msec else 0.0
        out.append((bp.threads, ratio))
    return out


def ascii_chart(
    series: Dict[str, Sequence[Tuple[int, float]]],
    width: int = 60,
    height: int = 14,
    title: str = "",
) -> str:
    """A rough terminal plot — enough to eyeball a figure's shape."""
    points = [pt for vals in series.values() for pt in vals]
    if not points:
        return "(no data)"
    xmax = max(x for x, _ in points) or 1
    ymax = max(y for _, y in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (label, vals) in enumerate(sorted(series.items())):
        mark = markers[index % len(markers)]
        for x, y in vals:
            col = min(width - 1, int((x / xmax) * (width - 1)))
            row = min(height - 1, int((y / ymax) * (height - 1)))
            grid[height - 1 - row][col] = mark
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:.1f} +" + "-" * width)
    for row in grid:
        lines.append("     |" + "".join(row))
    lines.append("   0 +" + "-" * width + f"> {xmax} threads")
    for index, label in enumerate(sorted(series)):
        lines.append(f"     {markers[index % len(markers)]} = {label}")
    return "\n".join(lines)
