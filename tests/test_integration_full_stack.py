"""Full-stack integration: every layer in one simulation.

One kernel runs a mixed application — page-faulting threads, VFS churn,
and a hot app lock — while the "privileged process" concurrently
profiles, loads policies, switches implementations, and annotates
tasks.  Everything must stay correct (the lock layer's invariants are
live throughout) and every framework surface must report coherent data.
"""

import pytest

from repro.concord import Concord, LockProfiler
from repro.concord.policies import (
    install_bravo,
    make_inheritance_policy,
    make_numa_policy,
    make_priority_policy,
)
from repro.kernel import VFS, AddressSpace, Kernel, annotate_priority_path
from repro.locks import BravoLock, ShflLock
from repro.sim import Topology, ops
from repro.userspace import UserspaceRuntime


@pytest.mark.parametrize("seed", [3, 23])
def test_full_stack_scenario(seed):
    topo = Topology(sockets=4, cores_per_socket=4)
    kernel = Kernel(topo, seed=seed)
    mm = AddressSpace(kernel)
    vfs = VFS(kernel)
    runtime = UserspaceRuntime(kernel, app_name="svc")
    applock = runtime.create_lock("state", ShflLock(kernel.engine, name="svc.state"))
    concord = Concord(kernel)

    # --- phase 0: set the world up (a setup task builds directories).
    dirs = {}

    def setup(task):
        dirs["a"] = yield from vfs.mkdir(task, vfs.root, "a")
        dirs["b"] = yield from vfs.mkdir(task, vfs.root, "b")
        for index in range(16):
            yield from vfs.create(task, dirs["a"], f"f{index}")

    kernel.spawn(setup, cpu=0)
    kernel.run()

    # --- policies: NUMA on the app lock, inheritance on inode locks,
    #     priority boosting everywhere.
    concord.load_policy(make_numa_policy(lock_selector="user.svc.state"))
    inh_spec, _holds = make_inheritance_policy(lock_selector="vfs.inode.*.lock")
    concord.load_policy(inh_spec)
    boost_spec, boost_map = make_priority_policy(lock_selector="user.svc.state")
    concord.load_policy(boost_spec)

    # --- profiling runs across kernel AND app locks at once.
    session = LockProfiler(concord).start("*")

    stop_at = kernel.now + 1_200_000
    rng = kernel.engine.rng

    def faulter(task, base):
        task.stats["ops"] = 0
        mm._vmas[base] = 64
        page = base
        while task.engine.now < stop_at:
            yield from mm.page_fault(task, page)
            page += 1
            if page >= base + 64:
                yield from mm.munmap(task, base)
                yield from mm.mmap(task, base, 64)
                page = base
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    def renamer(task):
        task.stats["ops"] = 0
        while task.engine.now < stop_at:
            name = f"f{rng.randrange(16)}"
            src, dst = (dirs["a"], dirs["b"]) if rng.random() < 0.5 else (dirs["b"], dirs["a"])
            try:
                yield from vfs.rename(task, src, name, dst, name)
                task.stats["ops"] += 1
            except Exception:
                pass
            yield ops.Delay(rng.randint(0, 400))

    def app_worker(task):
        task.stats["ops"] = 0
        while task.engine.now < stop_at:
            yield from applock.acquire(task)
            yield ops.Delay(250)
            yield from applock.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    tasks = []
    for index in range(4):
        tasks.append(kernel.spawn(lambda t, b=(index + 1) * 10_000: faulter(t, b), cpu=index))
    for index in range(4, 8):
        tasks.append(kernel.spawn(renamer, cpu=index))
    for index in range(8, 14):
        task = runtime.spawn(app_worker, cpu=index)
        tasks.append(task)
        if index == 8:
            annotate_priority_path(task)
            boost_map[task.tid] = 1

    # --- mid-run: install BRAVO over mmap_lock (live).
    kernel.engine.call_at(300_000, lambda: install_bravo(concord, "mm.mmap_lock"))

    kernel.run(until=stop_at + 400_000)

    # Everybody made progress.
    assert all(task.stats.get("ops", 0) > 0 for task in tasks)
    # The live switch engaged.
    assert isinstance(mm.mmap_lock.core.impl, BravoLock)
    assert concord.switch_latency("mm.mmap_lock") is not None
    # The profiler saw the kernel, VFS, and app locks.
    report = session.stop()
    assert report.by_name("mm.mmap_lock").acquired > 0
    assert report.by_name("user.svc.state").acquired > 0
    assert any(p.lock_name.startswith("vfs.inode") and p.acquired for p in report.profiles)
    # Framework bookkeeping is coherent.
    described = concord.describe()
    assert len(described["policies"]) == 3  # profiler unloaded its four
    assert "user.svc.state" in described["patched_locks"]
    # No invariant violation occurred (locks raise immediately if so) and
    # the event log recorded the whole story.
    kinds = {event.kind for event in concord.events}
    assert {"verified", "attached", "switched", "detached"} <= kinds
