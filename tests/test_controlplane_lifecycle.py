"""concordd lifecycle: the state machine, the audit log, submissions."""

import pytest

from repro.concord.policy import PolicySpec
from repro.controlplane import (
    AuditLog,
    LifecycleError,
    PolicyState,
    PolicySubmission,
    TRANSITIONS,
)
from repro.controlplane.lifecycle import LIVE_STATES, TERMINAL_STATES, PolicyRecord
from repro.locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED

RETURN_ZERO = "def f(ctx):\n    return 0\n"


def spec(name="p", hook=HOOK_CMP_NODE, selector="a.*", **kw):
    return PolicySpec(name=name, hook=hook, source=RETURN_ZERO, lock_selector=selector, **kw)


def record(name="p"):
    return PolicyRecord(PolicySubmission(spec=spec(name)), "client", now_ns=0)


class TestStateMachine:
    def test_happy_path_promote(self):
        audit = AuditLog()
        rec = record()
        for state in (
            PolicyState.SUBMITTED,
            PolicyState.VERIFIED,
            PolicyState.CANARY,
            PolicyState.ACTIVE,
            PolicyState.RETIRED,
        ):
            rec.transition(state, "step", audit, now_ns=1)
        assert audit.history("p")[-1] is PolicyState.RETIRED
        assert rec.terminal

    def test_rollback_path(self):
        audit = AuditLog()
        rec = record()
        rec.transition(PolicyState.SUBMITTED, "s", audit, 0)
        rec.transition(PolicyState.VERIFIED, "v", audit, 1)
        rec.transition(PolicyState.CANARY, "c", audit, 2)
        rec.transition(PolicyState.ROLLED_BACK, "slo", audit, 3)
        assert rec.terminal and not rec.live

    def test_first_state_must_be_submitted(self):
        with pytest.raises(LifecycleError):
            record().transition(PolicyState.ACTIVE, "skip", AuditLog(), 0)

    def test_illegal_jump_rejected(self):
        audit = AuditLog()
        rec = record()
        rec.transition(PolicyState.SUBMITTED, "s", audit, 0)
        with pytest.raises(LifecycleError, match="illegal transition"):
            rec.transition(PolicyState.ACTIVE, "skip canary", audit, 1)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == ()
        assert set(TERMINAL_STATES) == {
            PolicyState.ROLLED_BACK,
            PolicyState.REJECTED,
            PolicyState.RETIRED,
        }

    def test_live_states_partition(self):
        assert set(LIVE_STATES) | set(TERMINAL_STATES) == set(PolicyState)


class TestAuditLog:
    def test_records_carry_cause_and_client(self):
        audit = AuditLog()
        rec = record()
        rec.transition(PolicyState.SUBMITTED, "because tests", audit, 7)
        (entry,) = audit.records
        assert entry.time_ns == 7
        assert entry.client == "client"
        assert entry.frm is None and entry.to is PolicyState.SUBMITTED
        assert "because tests" in entry.format()

    def test_append_only_view(self):
        audit = AuditLog()
        rec = record()
        rec.transition(PolicyState.SUBMITTED, "s", audit, 0)
        view = audit.records
        rec.transition(PolicyState.VERIFIED, "v", audit, 1)
        # The earlier snapshot is immutable; the log itself grew.
        assert len(view) == 1 and len(audit) == 2
        with pytest.raises(AttributeError):
            audit.records.append  # tuples don't append

    def test_filters(self):
        audit = AuditLog()
        a, b = record("a"), record("b")
        a.transition(PolicyState.SUBMITTED, "s", audit, 0)
        b.transition(PolicyState.SUBMITTED, "s", audit, 0)
        assert [r.policy for r in audit.for_policy("a")] == ["a"]
        assert len(audit.for_client("client")) == 2
        assert audit.history("b") == [PolicyState.SUBMITTED]


class TestPolicySubmission:
    def test_needs_something(self):
        with pytest.raises(ValueError):
            PolicySubmission()

    def test_impl_only_needs_name_and_selector(self):
        with pytest.raises(ValueError):
            PolicySubmission(impl_factory=lambda old: old)
        sub = PolicySubmission(
            impl_factory=lambda old: old, name="swap", lock_selector="a.*"
        )
        assert sub.specs == () and sub.name == "swap"

    def test_bundle_takes_name_and_selector_from_first_spec(self):
        sub = PolicySubmission(
            specs=(spec("one"), spec("one.audit", hook=HOOK_LOCK_ACQUIRED))
        )
        assert sub.name == "one"
        assert sub.lock_selector == "a.*"
        assert "cmp_node program + lock_acquired program" in sub.describe()

    def test_bundle_selector_must_agree(self):
        with pytest.raises(ValueError, match="disagree"):
            PolicySubmission(specs=(spec("one"), spec("two", selector="b.*")))

    def test_bundle_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            PolicySubmission(specs=(spec("dup"), spec("dup", hook=HOOK_LOCK_ACQUIRED)))

    def test_spec_and_specs_are_exclusive(self):
        with pytest.raises(ValueError):
            PolicySubmission(spec=spec(), specs=(spec(),))
