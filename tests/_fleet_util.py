"""Shared builders for the fleet test files.

Every fleet test wants the same scaffolding: a few independent kernels
with ``svc.shard*.lock`` instances, a shard workload pounding them, and
a learned placement map.  Centralised here so the coordinator, planner,
and recovery tests agree on what "a fleet" is.
"""

from repro.bpf.maps import HashMap
from repro.concord.policies.numa import make_numa_policy
from repro.concord.policy import PolicySpec
from repro.controlplane import PolicySubmission, SLOGuard
from repro.fleet import FleetManager, PlacementMap
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology, ops
from repro.tools.concordd import bad_numa_submission

WORKLOAD_NS = 6_000_000
WINDOW_NS = 200_000

METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def spawn_shard_workload(kernel, stop_at, tasks_per_lock, cs_ns=900):
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names("svc.*.lock"):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


def add_member(
    fleet,
    name,
    locks=2,
    seed=11,
    tasks_per_lock=2,
    max_regression=0.50,
    workload_ns=WORKLOAD_NS,
    **daemon_kwargs,
):
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=seed)
    for index in range(locks):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    daemon_kwargs.setdefault("guard", SLOGuard(max_avg_wait_regression=max_regression))
    daemon_kwargs.setdefault("canary_fraction", 0.5)
    member = fleet.register(name, kernel, **daemon_kwargs)
    if workload_ns:
        spawn_shard_workload(kernel, kernel.now + workload_ns, tasks_per_lock)
    return member


def three_kernel_fleet(**daemon_kwargs):
    """k0 quiet, k1/k2 busy — blast radius orders k0 first."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, **daemon_kwargs)
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, **daemon_kwargs)
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, **daemon_kwargs)
    return fleet


def learn(fleet, window_ns=150_000):
    return PlacementMap.learn(fleet, "svc.*.lock", window_ns=window_ns)


def good_factory(member):
    return PolicySubmission(
        spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good")
    )


def bad_factory(member):
    return bad_numa_submission("svc.*.lock")


def meter_factory(member):
    return PolicySubmission(
        spec=PolicySpec(
            name="meter",
            hook=HOOK_LOCK_ACQUIRED,
            source=METER_SOURCE,
            maps={"hits": HashMap("meter.hits", max_entries=4096)},
            lock_selector="svc.*.lock",
        )
    )


ROLLOUT_KWARGS = dict(
    baseline_ns=WINDOW_NS,
    canary_ns=2 * WINDOW_NS,
    check_every_ns=WINDOW_NS // 4,
)
