"""Statistics primitives."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry, Summary


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        counter.reset()
        assert int(counter) == 0


class TestSummary:
    def test_streaming_moments(self):
        summary = Summary()
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for sample in samples:
            summary.observe(sample)
        assert summary.count == 8
        assert summary.mean == pytest.approx(5.0)
        assert summary.stddev == pytest.approx(2.0)
        assert summary.min == 2.0 and summary.max == 9.0

    def test_merge_equals_combined(self):
        left, right, combined = Summary(), Summary(), Summary()
        for index in range(50):
            (left if index % 2 else right).observe(float(index))
            combined.observe(float(index))
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_into_empty(self):
        left, right = Summary(), Summary()
        right.observe(3.0)
        left.merge(right)
        assert left.count == 1 and left.mean == 3.0


class TestHistogram:
    def test_percentiles_monotone(self):
        hist = Histogram()
        for sample in range(1, 1000):
            hist.observe(float(sample))
        p50, p90, p99 = hist.percentile(50), hist.percentile(90), hist.percentile(99)
        assert p50 <= p90 <= p99
        assert hist.count == 999

    def test_percentile_is_upper_bound(self):
        hist = Histogram()
        for _ in range(100):
            hist.observe(10.0)
        assert hist.percentile(50) >= 10.0

    def test_overflow_bucket(self):
        hist = Histogram(lowest=1.0, base=2.0, buckets=4)  # covers up to 8
        hist.observe(100.0)
        assert hist.overflow == 1
        assert math.isinf(list(hist.nonzero_buckets())[-1][0])

    def test_bad_configs(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0)
        with pytest.raises(ValueError):
            Histogram(base=1.0)
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(0)

    def test_empty_percentile_zero(self):
        assert Histogram().percentile(99) == 0.0


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.summary("s") is registry.summary("s")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_flat_keys(self):
        registry = StatsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.summary("lat").observe(10.0)
        snap = registry.snapshot()
        assert snap["cache.hits"] == 3
        assert snap["lat.count"] == 1
        assert snap["lat.mean"] == 10.0

    def test_reset(self):
        registry = StatsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.counter("x").value == 0
