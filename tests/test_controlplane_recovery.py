"""Crash-safe persistence: the policy journal and ``Concordd.recover``.

The crash model is ``kill -9`` mid-operation (an :class:`InjectedCrash`
from the fault plan): the daemon process dies with no teardown, the
simulated kernel — locks, loaded programs, half-finished drains — lives
on.  A new daemon over the same journal must replay to the journal's
final word and then *reconcile* the kernel: ACTIVE policies end up
re-verified and re-attached (same hook programs, same lock impls),
mid-canary policies end up ROLLED_BACK with their installation gone,
and crash debris (the dead rollout's profiler programs) is swept.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.bpf.maps import HashMap
from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    Concordd,
    ControlPlaneError,
    JournalError,
    PolicyJournal,
    PolicyState,
    PolicySubmission,
    SLOGuard,
)
from repro.faults import FaultPlan, InjectedCrash, injected
from repro.kernel import Kernel
from repro.locks import ShflLock, SpinParkMutex
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology, ops
from repro.userspace import PolicyClient

SELECTOR = "svc.*.lock"

METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def meter_submission(name="steady", impl_factory=None, impl_name=""):
    return PolicySubmission(
        spec=PolicySpec(
            name=name,
            hook=HOOK_LOCK_ACQUIRED,
            source=METER_SOURCE,
            maps={"hits": HashMap(f"{name}.hits", max_entries=4096)},
            lock_selector=SELECTOR,
        ),
        impl_factory=impl_factory,
        impl_name=impl_name,
    )


def spin_park(old):
    return SpinParkMutex(old.engine, name=f"sp.{old.name}")


def make_kernel(seed=11):
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=seed)
    for index in range(4):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    return kernel


def make_daemon(concord, journal, **kwargs):
    return Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=0.20),
        journal=journal,
        impl_registry={"spin_park": spin_park},
        **kwargs,
    )


def hammer(kernel, stop_at, tasks_per_lock=2, cs_ns=300):
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names(SELECTOR):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


class TestPolicyJournal:
    def test_memory_roundtrip(self):
        journal = PolicyJournal()
        journal.append({"kind": "client", "client": "a"})
        journal.append({"kind": "transition", "policy": "p", "to": "VERIFIED"})
        assert len(journal) == 2
        assert journal.last_transition("p")["to"] == "VERIFIED"
        assert journal.last_transition("ghost") is None

    def test_file_roundtrip_and_reopen(self, tmp_path):
        path = str(tmp_path / "bpf" / "concord" / "journal.jsonl")
        journal = PolicyJournal(path)
        journal.append({"kind": "client", "client": "a"})
        journal.close()
        # A restarted daemon reopens the same path and continues it.
        journal2 = PolicyJournal(path)
        journal2.append({"kind": "client", "client": "b"})
        entries = journal2.entries()
        assert [e["client"] for e in entries] == ["a", "b"]

    def test_entries_need_a_kind(self):
        with pytest.raises(JournalError):
            PolicyJournal().append({"client": "a"})

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        journal.append({"kind": "client", "client": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "transition", "pol')  # the torn write
        survivors = PolicyJournal(path).entries()
        assert [e["kind"] for e in survivors] == ["client"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('not json at all\n')
            fh.write(json.dumps({"kind": "client", "client": "a"}) + "\n")
        with pytest.raises(JournalError, match="not a torn write"):
            PolicyJournal(path).entries()

    def test_append_after_torn_tail_truncates_the_fragment(self, tmp_path):
        """The restart-glue regression: a restarted daemon opens the
        journal in append mode, and without open-time truncation its
        first entry would glue onto the torn fragment — forging a
        corrupt *mid-file* line that replay rightly refuses."""
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        journal.append({"kind": "client", "client": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "transition", "pol')  # crash mid-write
        restarted = PolicyJournal(path)
        restarted.append({"kind": "client", "client": "b"})
        assert [e["client"] for e in restarted.entries()] == ["a", "b"]

    def test_lazy_reopen_after_close_trims_the_tail_too(self, tmp_path):
        # append() reopens a closed handle lazily; that path must trim
        # a tail torn while the handle was closed.
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        journal.append({"kind": "client", "client": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "cl')
        journal.append({"kind": "client", "client": "b"})
        assert [e["client"] for e in journal.entries()] == ["a", "b"]

    @settings(max_examples=40, deadline=None)
    @given(
        nr_entries=st.integers(min_value=1, max_value=6),
        cut_seed=st.integers(min_value=0, max_value=10**9),
    )
    def test_torn_tail_recovery_at_any_byte_offset(
        self, nr_entries, cut_seed, tmp_path_factory
    ):
        """Property: truncate the journal at *any* byte offset (the
        crash model's worst case) and a restarted daemon keeps exactly
        the complete lines before the cut, drops the fragment, and
        appends cleanly on top."""
        path = str(tmp_path_factory.mktemp("torn") / "journal.jsonl")
        journal = PolicyJournal(path)
        for index in range(nr_entries):
            journal.append({"kind": "client", "client": f"c{index}"})
        journal.close()
        with open(path, "rb") as fh:
            data = fh.read()
        cut = cut_seed % (len(data) + 1)
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        survivors = data[:cut].count(b"\n")
        restarted = PolicyJournal(path)
        restarted.append({"kind": "client", "client": "post-crash"})
        clients = [e["client"] for e in restarted.entries()]
        restarted.close()
        assert clients == [f"c{i}" for i in range(survivors)] + ["post-crash"]


class TestDaemonJournaling:
    def test_lifecycle_is_journaled(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        daemon = make_daemon(Concord(kernel), PolicyJournal(path))
        client = PolicyClient.connect(daemon, "ops")
        client.submit(meter_submission())
        client.rollout("steady", baseline_ns=40_000, canary_ns=40_000)

        entries = PolicyJournal(path).entries()
        kinds = [e["kind"] for e in entries]
        assert kinds[0] == "client"
        assert kinds[1] == "submission"
        assert kinds[2:] == ["transition"] * (len(kinds) - 2)
        states = [e["to"] for e in entries if e["kind"] == "transition"]
        assert states == ["SUBMITTED", "VERIFIED", "CANARY", "ACTIVE"]
        # Transitions carry the rollout artifacts recovery needs.
        final = entries[-1]
        assert final["target_locks"] == kernel.locks.select_names(SELECTOR)
        assert final["canary_locks"] == ["svc.shard0.lock", "svc.shard1.lock"]

    def test_submission_entry_round_trips_specs(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        daemon = make_daemon(Concord(kernel), PolicyJournal(path))
        client = PolicyClient.connect(daemon, "ops")
        client.submit(
            meter_submission(impl_factory=spin_park, impl_name="spin_park")
        )
        entry = [e for e in PolicyJournal(path).entries() if e["kind"] == "submission"][0]
        assert entry["impl_name"] == "spin_park"
        assert entry["has_impl"] is True
        (spec_entry,) = entry["specs"]
        assert spec_entry["name"] == "steady"
        assert spec_entry["hook"] == HOOK_LOCK_ACQUIRED
        assert spec_entry["maps"] == ["hits"]


class TestRecover:
    def test_recover_requires_journal_and_fresh_daemon(self):
        kernel = make_kernel()
        daemon = Concordd(Concord(kernel))
        with pytest.raises(ControlPlaneError, match="needs a journal"):
            daemon.recover()

    def test_active_policy_survives_daemon_restart(self, tmp_path):
        """The headline guarantee: kill the daemon with a policy ACTIVE,
        recover, and the same hook programs + lock impls are attached."""
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        client.submit(
            meter_submission(impl_factory=spin_park, impl_name="spin_park")
        )
        record_a = client.rollout("steady", baseline_ns=40_000, canary_ns=40_000)
        assert record_a.state is PolicyState.ACTIVE
        impls_before = {
            name: kernel.locks.get(name).core.impl
            for name in kernel.locks.select_names(SELECTOR)
        }
        daemon_a.detach()  # the crash: nothing is torn down

        daemon_b = make_daemon(concord, PolicyJournal(path))
        summary = daemon_b.recover()
        record_b = daemon_b.status("steady")
        assert record_b is not record_a  # genuinely rebuilt, not shared
        assert record_b.state is PolicyState.ACTIVE
        assert summary["reattached"] == ["steady"]
        assert summary["rolled_back"] == []
        # Same program attached to every target, same impl on every lock.
        loaded = concord.policies["steady"]
        assert sorted(loaded.attached_locks) == kernel.locks.select_names(SELECTOR)
        for name, impl in impls_before.items():
            assert kernel.locks.get(name).core.impl is impl, name
        # Journal and record agree on the final state.
        assert PolicyJournal(path).last_transition("steady")["to"] == record_b.state.name

    def test_cold_kernel_recovery_reinstalls_everything(self, tmp_path):
        """Recovery with a *rebooted* kernel (nothing loaded): the
        journal alone is enough to re-verify, re-pin, re-attach, and
        re-apply the implementation switch."""
        path = str(tmp_path / "journal.jsonl")
        kernel_a = make_kernel()
        daemon_a = make_daemon(Concord(kernel_a), PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        client.submit(
            meter_submission(impl_factory=spin_park, impl_name="spin_park")
        )
        assert client.rollout(
            "steady", baseline_ns=40_000, canary_ns=40_000
        ).state is PolicyState.ACTIVE

        kernel_b = make_kernel()  # fresh boot, stock locks
        concord_b = Concord(kernel_b)
        daemon_b = make_daemon(concord_b, PolicyJournal(path))
        summary = daemon_b.recover()
        assert summary["reattached"] == ["steady"]
        loaded = concord_b.policies["steady"]
        assert sorted(loaded.attached_locks) == kernel_b.locks.select_names(SELECTOR)
        for name in kernel_b.locks.select_names(SELECTOR):
            assert isinstance(kernel_b.locks.get(name).core.impl, SpinParkMutex), name

    def test_crash_mid_canary_rolls_back_on_recovery(self, tmp_path):
        """The drill scenario at library level: InjectedCrash mid-watch-
        window, restart, recover — the canary's whole installation is
        gone and the record lands ROLLED_BACK."""
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        originals = {
            name: kernel.locks.get(name).core.impl
            for name in kernel.locks.select_names(SELECTOR)
        }
        hammer(kernel, stop_at=kernel.now + 400_000)
        client.submit(
            meter_submission(name="doomed", impl_factory=spin_park, impl_name="spin_park")
        )
        plan = FaultPlan(name="kill9")
        plan.crash("controlplane.canary.checkpoint", after=1)
        with injected(plan):
            with pytest.raises(InjectedCrash):
                client.rollout(
                    "doomed",
                    baseline_ns=40_000,
                    canary_ns=120_000,
                    check_every_ns=20_000,
                )
        daemon_a.detach()
        # The kernel is left dirty: canary installation still live.
        assert "doomed" in concord.policies
        assert kernel.patcher.active

        daemon_b = make_daemon(concord, PolicyJournal(path))
        summary = daemon_b.recover()
        record = daemon_b.status("doomed")
        assert record.state is PolicyState.ROLLED_BACK
        assert summary["rolled_back"] == ["doomed"]
        assert "doomed" in summary["swept"] or "doomed" not in concord.policies
        assert not kernel.patcher.active  # impl switches reverted
        cause = daemon_b.audit.for_policy("doomed")[-1].cause
        assert "crashed mid-canary" in cause
        kernel.run()  # drain the workload + revert drains
        for name, impl in originals.items():
            assert kernel.locks.get(name).core.impl is impl, name
        # The dead rollout's profiler programs were swept too.
        assert not any(n.startswith("profile") for n in concord.policies)
        # Journal and audit agree on the final state.
        assert PolicyJournal(path).last_transition("doomed")["to"] == "ROLLED_BACK"

    def test_recovery_retries_through_verifier_flakes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        client.submit(meter_submission())
        assert client.rollout(
            "steady", baseline_ns=40_000, canary_ns=40_000
        ).state is PolicyState.ACTIVE
        daemon_a.detach()

        daemon_b = make_daemon(concord, PolicyJournal(path))
        plan = FaultPlan(name="flaky-recovery")
        plan.fail("concord.verifier", times=2)  # two flakes, three tries
        with injected(plan):
            summary = daemon_b.recover()
        assert summary["reattached"] == ["steady"]
        assert daemon_b.status("steady").state is PolicyState.ACTIVE
        assert plan.fired["concord.verifier"] == 2

    def test_lost_impl_factory_rolls_back_fail_open(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        originals = {
            name: kernel.locks.get(name).core.impl
            for name in kernel.locks.select_names(SELECTOR)
        }
        client.submit(
            meter_submission(impl_factory=spin_park, impl_name="spin_park")
        )
        assert client.rollout(
            "steady", baseline_ns=40_000, canary_ns=40_000
        ).state is PolicyState.ACTIVE
        daemon_a.detach()

        # The new daemon has no impl_registry: the factory is gone.
        daemon_b = Concordd(concord, journal=PolicyJournal(path))
        summary = daemon_b.recover()
        record = daemon_b.status("steady")
        assert record.state is PolicyState.ROLLED_BACK
        assert summary["rolled_back"] == ["steady"]
        assert "impl_registry" in record.error or "impl_registry" in (
            daemon_b.audit.for_policy("steady")[-1].cause
        )
        kernel.run()
        for name, impl in originals.items():
            assert kernel.locks.get(name).core.impl is impl, name

    def test_crash_mid_verification_rejects_on_recovery(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client = PolicyClient.connect(daemon_a, "ops")
        plan = FaultPlan(name="kill9-verify")
        plan.crash("concord.verifier")
        with injected(plan):
            with pytest.raises(InjectedCrash):
                client.submit(meter_submission(name="halfway"))
        daemon_a.detach()

        daemon_b = make_daemon(concord, PolicyJournal(path))
        summary = daemon_b.recover()
        assert summary["rejected"] == ["halfway"]
        assert daemon_b.status("halfway").state is PolicyState.REJECTED
        assert "resubmit" in daemon_b.audit.for_policy("halfway")[-1].cause

    def test_quota_accounts_recovered_policies(self, tmp_path):
        """A re-attached ACTIVE policy still occupies its quota slot; a
        recovery-rolled-back one does not."""
        path = str(tmp_path / "journal.jsonl")
        kernel = make_kernel()
        concord = Concord(kernel)
        daemon_a = make_daemon(concord, PolicyJournal(path))
        client_a = PolicyClient.connect(daemon_a, "ops", max_live_policies=1)
        client_a.submit(meter_submission())
        assert client_a.rollout(
            "steady", baseline_ns=40_000, canary_ns=40_000
        ).state is PolicyState.ACTIVE
        daemon_a.detach()

        daemon_b = make_daemon(concord, PolicyJournal(path))
        daemon_b.recover()
        client_b = PolicyClient(daemon_b, "ops")  # identity was replayed
        from repro.controlplane import AdmissionError

        with pytest.raises(AdmissionError):
            client_b.submit(meter_submission(name="overquota"))
