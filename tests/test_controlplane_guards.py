"""The guard library: typed per-lock attribution, tail and fairness
oracles, composition, and pooled cross-kernel verdicts.

The load-bearing scenario is *tail blindness*: a policy that multiplies
one lock's p99 while the canary-set average stays in budget must slip
past ``SLOGuard`` and trip ``TailWaitGuard`` — with the breach naming
the lock, the metric, and observed-vs-budget.  The fleet half is the
mirror image: a regression no single member has the samples to judge
must trip the coordinator's pooled guard over the wave's summed
histograms.
"""

import os

import pytest

from repro.concord.profiler import (
    LockProfile,
    MAX_SOCKETS,
    ProfileReport,
    WAIT_BUCKETS,
)
from repro.controlplane import PolicyJournal
from repro.controlplane.guards import (
    AGGREGATE,
    AllOf,
    AnyOf,
    Breach,
    FairnessGuard,
    GuardVerdict,
    SLOGuard,
    TailWaitGuard,
    WaveDriftGuard,
    pool_reports,
)
from repro.fleet import FleetCoordinator, FleetManager, FleetRolloutState
from repro.fleet.coordinator import FleetVerdict
from repro.fleet.planner import FleetPlan, WaveSpec
from repro.tools.concordd import tail_spike_submission

from tests._fleet_util import add_member


def prof(
    name,
    acquired=100,
    avg_wait=1_000.0,
    avg_hold=500.0,
    hist=None,
    sockets=None,
):
    hist = tuple(hist or ())
    hist += (0,) * (WAIT_BUCKETS - len(hist))
    sockets = tuple(sockets or ())
    sockets += (0,) * (MAX_SOCKETS - len(sockets))
    return LockProfile(
        lock_name=name,
        attempts=acquired,
        contended=sum(hist),
        acquired=acquired,
        wait_total_ns=int(avg_wait * acquired),
        hold_total_ns=int(avg_hold * acquired),
        releases=acquired,
        wait_histogram=hist,
        per_socket_acquired=sockets,
    )


def report(*profiles, started=0, stopped=1_000_000):
    return ProfileReport(list(profiles), started, stopped)


class TestBreachAttribution:
    def test_breach_names_lock_metric_and_budget(self):
        breach = Breach("svc.a.lock", "p99_wait_ns", 1_000.0, 3_100.0, 0.5)
        text = breach.describe()
        assert "svc.a.lock" in text
        assert "p99 wait regressed" in text
        assert "+210%" in text
        assert "budget +50%" in text
        assert str(breach) == text

    def test_aggregate_breach_keeps_legacy_phrase(self):
        text = Breach(AGGREGATE, "avg_wait_ns", 1_000.0, 1_500.0, 0.2).describe()
        assert "canary locks" in text
        assert "avg wait regressed" in text

    def test_pooled_breach_names_kernels(self):
        breach = Breach(
            "svc.a.lock", "p99_wait_ns", 1_000.0, 3_000.0, 0.5, kernels=("k0", "k1")
        )
        assert "[pooled: k0, k1]" in breach.describe()

    def test_verdict_keeps_strings_and_typed_views(self):
        breach = Breach("svc.a.lock", "p99_wait_ns", 1_000.0, 3_000.0, 0.5)
        verdict = GuardVerdict(False, [breach], [], ready=True)
        assert verdict.breaches == [breach.describe()]
        assert verdict.attributed == [breach]
        assert all(isinstance(b, str) for b in verdict.breaches)


class TestSLOGuardBackCompat:
    def test_slo_module_still_exports_the_guard(self):
        from repro.controlplane.slo import LockDelta, SLOGuard as Legacy, SLOVerdict

        assert Legacy is SLOGuard
        assert SLOVerdict is GuardVerdict
        assert LockDelta._fields[0] == "lock_name"

    def test_aggregate_breach_string_is_iterable_and_matches_legacy_grep(self):
        baseline = report(prof("svc.a.lock", avg_wait=1_000.0))
        canary = report(prof("svc.a.lock", avg_wait=2_000.0))
        verdict = SLOGuard(max_avg_wait_regression=0.20).evaluate(baseline, canary)
        assert not verdict.ok and verdict.ready
        assert any("avg wait regressed" in b for b in verdict.breaches)
        assert verdict.attributed[0].lock_name == AGGREGATE
        assert verdict.attributed[0].metric == "avg_wait_ns"

    def test_hold_floor_is_separate_from_wait_floor(self):
        # Baseline holds average 10ns; canary 30ns (3x).  The old code
        # clamped the hold baseline with the *wait* floor (50ns), which
        # swallowed the regression entirely.
        baseline = report(prof("svc.a.lock", avg_wait=1_000.0, avg_hold=10.0))
        canary = report(prof("svc.a.lock", avg_wait=1_000.0, avg_hold=30.0))
        guard = SLOGuard(
            max_avg_wait_regression=5.0,
            max_avg_hold_regression=0.5,
            wait_floor_ns=50.0,
            hold_floor_ns=5.0,
        )
        verdict = guard.evaluate(baseline, canary)
        assert not verdict.ok
        assert verdict.attributed[0].metric == "avg_hold_ns"

    def test_hold_floor_defaults_to_wait_floor(self):
        guard = SLOGuard(wait_floor_ns=80.0)
        assert guard.hold_floor_ns == 80.0
        assert SLOGuard(wait_floor_ns=80.0, hold_floor_ns=10.0).hold_floor_ns == 10.0


class TestVerdictReadinessEdges:
    def test_exactly_min_acquisitions_is_ready(self):
        baseline = report(prof("svc.a.lock", acquired=20, avg_wait=1_000.0))
        canary = report(prof("svc.a.lock", acquired=20, avg_wait=1_000.0))
        guard = SLOGuard(min_acquisitions=20)
        assert guard.evaluate(baseline, canary).ready
        one_short = report(prof("svc.a.lock", acquired=19, avg_wait=1_000.0))
        assert not guard.evaluate(baseline, one_short).ready

    def test_empty_delta_set_defers(self):
        baseline = report(prof("svc.a.lock"))
        verdict = SLOGuard(min_acquisitions=0).evaluate(baseline, report())
        assert verdict.ok and not verdict.ready
        assert verdict.deltas == []

    def test_canary_lock_absent_from_baseline_is_surfaced(self):
        # A selector typo used to be silently skipped — and a canary set
        # judged against nothing would read as "within budget".
        baseline = report(prof("svc.a.lock"))
        canary = report(prof("svc.a.lock"), prof("svc.typo.lock"))
        verdict = SLOGuard().evaluate(baseline, canary)
        assert verdict.missing == ["svc.typo.lock"]
        assert "svc.typo.lock" in verdict.describe()
        nothing = SLOGuard().evaluate(baseline, report(prof("svc.typo.lock")))
        assert not nothing.ready and nothing.missing == ["svc.typo.lock"]
        assert "missing from the baseline" in nothing.describe()


class TestTailWaitGuard:
    def baseline(self):
        # Both locks: all waits in [1024, 2048).
        return report(
            prof("svc.a.lock", acquired=200, hist=[0] * 10 + [200]),
            prof("svc.b.lock", acquired=200, hist=[0] * 10 + [200]),
        )

    def spiked(self):
        # svc.a.lock: 2% of waits jump two buckets; the mean barely
        # moves, the p99 lands in [4096, 8192).
        return report(
            prof(
                "svc.a.lock",
                acquired=200,
                avg_wait=1_100.0,
                hist=[0] * 10 + [196, 0, 4],
            ),
            prof("svc.b.lock", acquired=200, hist=[0] * 10 + [200]),
        )

    def test_trips_on_one_lock_tail_with_attribution(self):
        verdict = TailWaitGuard(max_tail_regression=0.5).evaluate(
            self.baseline(), self.spiked()
        )
        assert verdict.ready and not verdict.ok
        assert len(verdict.attributed) == 1
        breach = verdict.attributed[0]
        assert breach.lock_name == "svc.a.lock"
        assert breach.metric == "p99_wait_ns"
        assert breach.observed > breach.baseline * 1.5
        assert breach.budget == 0.5

    def test_avg_guard_is_blind_to_the_same_reports(self):
        verdict = SLOGuard(max_avg_wait_regression=0.20).evaluate(
            self.baseline(), self.spiked()
        )
        assert verdict.ready and verdict.ok

    def test_quiet_locks_are_skipped(self):
        baseline = report(
            prof("svc.a.lock", acquired=100, hist=[0] * 10 + [100]),
            prof("svc.b.lock", acquired=3, hist=[3]),
        )
        canary = report(
            prof("svc.a.lock", acquired=100, hist=[0] * 10 + [100]),
            # 3 samples, wildly regressed — below min_lock_acquisitions.
            prof("svc.b.lock", acquired=3, hist=[0] * 15 + [3]),
        )
        verdict = TailWaitGuard(min_lock_acquisitions=5).evaluate(baseline, canary)
        assert verdict.ok

    def test_metric_names_track_the_quantile(self):
        assert TailWaitGuard(quantile=0.99).metric == "p99_wait_ns"
        assert TailWaitGuard(quantile=0.5).metric == "p50_wait_ns"


class TestWaveDriftGuard:
    """Wave-over-wave drift: wave N's pooled canary judged against the
    *anchor* (wave 0) pooled canary, not against a pre-rollout baseline
    — catches a policy whose cost compounds as the fleet fills in."""

    def anchor(self):
        return report(
            prof("svc.a.lock", acquired=200, hist=[0] * 10 + [200]),
            prof("svc.b.lock", acquired=200, hist=[0] * 10 + [200]),
        )

    def drifted(self):
        # svc.a.lock's tail walks two buckets up by wave N.
        return report(
            prof("svc.a.lock", acquired=200, hist=[0] * 10 + [196, 0, 4]),
            prof("svc.b.lock", acquired=200, hist=[0] * 10 + [200]),
        )

    def test_trips_on_wave_over_wave_drift(self):
        verdict = WaveDriftGuard(max_tail_drift=0.5).evaluate(
            self.anchor(), self.drifted()
        )
        assert verdict.ready and not verdict.ok
        breach = verdict.attributed[0]
        assert breach.lock_name == "svc.a.lock"
        assert breach.metric == "p99_wait_drift_ns"
        assert "drifted from the anchor wave" in breach.describe()

    def test_steady_waves_pass(self):
        verdict = WaveDriftGuard(max_tail_drift=0.5).evaluate(
            self.anchor(), self.anchor()
        )
        assert verdict.ready and verdict.ok

    def test_metric_names_track_the_quantile(self):
        assert WaveDriftGuard(quantile=0.99).metric == "p99_wait_drift_ns"
        assert WaveDriftGuard(quantile=0.5).metric == "p50_wait_drift_ns"

    def test_is_a_tail_guard_with_its_own_budget_name(self):
        guard = WaveDriftGuard(max_tail_drift=0.3)
        assert isinstance(guard, TailWaitGuard)
        assert guard.max_tail_drift == 0.3
        assert guard.max_tail_regression == 0.3


class TestSLOModuleParity:
    def test_every_guard_name_is_importable_from_slo(self):
        """The back-compat contract the slo docstring promises: code
        pinned to the old import path never finds a name missing there
        that exists in guards."""
        import repro.controlplane.guards as guards
        import repro.controlplane.slo as slo

        assert set(slo.__all__) == set(guards.__all__)
        for name in guards.__all__:
            assert getattr(slo, name) is getattr(guards, name), name


class TestFairnessGuard:
    def test_trips_when_one_socket_starves(self):
        baseline = report(
            prof("svc.a.lock", acquired=100, hist=[100], sockets=[50, 50])
        )
        canary = report(
            prof("svc.a.lock", acquired=100, hist=[100], sockets=[95, 5])
        )
        verdict = FairnessGuard(max_skew_increase=0.25).evaluate(baseline, canary)
        assert verdict.ready and not verdict.ok
        breach = verdict.attributed[0]
        assert breach.metric == "socket_skew"
        assert breach.lock_name == "svc.a.lock"
        # 95% of 2 sockets -> imbalance 1.9 vs balanced 1.0.
        assert breach.observed == pytest.approx(1.9)
        assert breach.baseline == pytest.approx(1.0)

    def test_untouched_sockets_do_not_count_as_starved(self):
        # The workload only ever ran on socket 0: nothing regressed.
        baseline = report(prof("svc.a.lock", acquired=50, hist=[50], sockets=[50]))
        canary = report(prof("svc.a.lock", acquired=50, hist=[50], sockets=[50]))
        verdict = FairnessGuard().evaluate(baseline, canary)
        assert verdict.ok


class TestComposition:
    def trip_tail(self):
        baseline = report(prof("svc.a.lock", acquired=100, hist=[0] * 10 + [100]))
        canary = report(
            prof("svc.a.lock", acquired=100, avg_wait=1_100.0, hist=[0] * 10 + [97, 0, 3])
        )
        return baseline, canary

    def test_all_of_trips_when_any_member_trips(self):
        baseline, canary = self.trip_tail()
        guard = AllOf(SLOGuard(max_avg_wait_regression=0.5), TailWaitGuard())
        verdict = guard.evaluate(baseline, canary)
        assert verdict.ready and not verdict.ok
        assert verdict.attributed[0].metric == "p99_wait_ns"

    def test_any_of_passes_when_one_member_passes(self):
        baseline, canary = self.trip_tail()
        guard = AnyOf(SLOGuard(max_avg_wait_regression=0.5), TailWaitGuard())
        assert guard.evaluate(baseline, canary).ok

    def test_cold_members_abstain(self):
        baseline, canary = self.trip_tail()
        guard = AllOf(SLOGuard(min_acquisitions=10**9), TailWaitGuard())
        verdict = guard.evaluate(baseline, canary)
        # The cold SLO guard must not veto the ready tail breach.
        assert verdict.ready and not verdict.ok

    def test_all_cold_defers(self):
        baseline, canary = self.trip_tail()
        guard = AllOf(
            SLOGuard(min_acquisitions=10**9), TailWaitGuard(min_acquisitions=10**9)
        )
        verdict = guard.evaluate(baseline, canary)
        assert verdict.ok and not verdict.ready

    def test_empty_composition_is_rejected(self):
        with pytest.raises(ValueError):
            AllOf()
        with pytest.raises(ValueError):
            AnyOf()


class TestPoolReports:
    def test_pools_sum_counters_histograms_and_sockets(self):
        a = report(
            prof("svc.a.lock", acquired=10, hist=[0, 5], sockets=[6, 4]),
            started=100,
            stopped=200,
        )
        b = report(
            prof("svc.a.lock", acquired=15, hist=[2, 3], sockets=[5, 10]),
            prof("svc.b.lock", acquired=7),
            started=50,
            stopped=150,
        )
        pooled = pool_reports([a, b])
        merged = pooled.by_name("svc.a.lock")
        assert merged.acquired == 25
        assert merged.wait_histogram[:2] == (2, 8)
        assert merged.per_socket_acquired[:2] == (11, 14)
        assert pooled.by_name("svc.b.lock").acquired == 7
        assert pooled.started_ns == 50 and pooled.stopped_ns == 200

    def test_pooled_counts_cross_readiness_no_member_reaches(self):
        guard = TailWaitGuard(min_acquisitions=30, max_tail_regression=0.5)
        baselines, canaries = [], []
        for _ in range(3):
            baselines.append(
                report(prof("svc.a.lock", acquired=15, hist=[0] * 10 + [15]))
            )
            canaries.append(
                report(
                    prof(
                        "svc.a.lock",
                        acquired=15,
                        avg_wait=1_200.0,
                        hist=[0] * 10 + [14, 0, 1],
                    )
                )
            )
        for base, canary in zip(baselines, canaries):
            assert not guard.evaluate(base, canary).ready  # each member defers
        pooled = guard.evaluate(pool_reports(baselines), pool_reports(canaries))
        assert pooled.ready and not pooled.ok
        assert pooled.attributed[0].lock_name == "svc.a.lock"


class TestFleetVerdictPooling:
    def test_pooled_breach_fails_both_modes(self):
        breach = Breach("svc.a.lock", "p99_wait_ns", 1_000.0, 3_000.0, 0.5, ("k0",))
        any_mode = FleetVerdict("any-breach", 1.0, ["k0", "k1"], [], pooled=(breach,))
        quorum = FleetVerdict("quorum", 0.5, ["k0", "k1", "k2"], [], pooled=(breach,))
        assert not any_mode.ok and not quorum.ok
        assert "pooled breach" in any_mode.describe()
        assert "svc.a.lock" in any_mode.describe()
        # Without the pooled breach both verdicts pass.
        assert FleetVerdict("any-breach", 1.0, ["k0"], []).ok
        assert FleetVerdict("quorum", 0.5, ["k0", "k1", "k2"], []).ok


class TestPooledFleetRollout:
    def test_wave_halts_on_pooled_evidence_no_member_can_judge(self, tmp_path):
        fleet = FleetManager()
        for index, name in enumerate(("k0", "k1", "k2")):
            # Per-member guards never reach readiness: each daemon
            # promotes on verifier trust, only the pooled wave evidence
            # can catch the regression.
            add_member(
                fleet,
                name,
                locks=2,
                seed=21 + index,
                tasks_per_lock=2,
                guard=SLOGuard(min_acquisitions=10**9),
                journal=PolicyJournal(os.path.join(tmp_path, f"{name}.jsonl")),
            )
        coordinator = FleetCoordinator(
            fleet,
            journal=PolicyJournal(os.path.join(tmp_path, "fleet.jsonl")),
            pooled_guard=TailWaitGuard(max_tail_regression=0.5),
        )
        plan = FleetPlan(
            "tail-spike",
            [WaveSpec(index=0, kernels=["k0", "k1", "k2"], canary=True, bake_ns=100_000)],
            canary_locks={
                name: ["svc.shard0.lock", "svc.shard1.lock"]
                for name in ("k0", "k1", "k2")
            },
        )
        result = coordinator.execute(
            plan,
            lambda member: tail_spike_submission(
                member.kernel.lock_id_by_name("svc.shard0.lock")
            ),
            baseline_ns=500_000,
            canary_ns=1_000_000,
            check_every_ns=250_000,
        )

        assert result.state is FleetRolloutState.HALTED
        assert "pooled breach" in result.halt_cause
        assert "svc.shard0.lock" in result.halt_cause
        for name in ("k0", "k1", "k2"):
            assert name in result.halt_cause
        # Halt converged the whole wave back to stock.
        for member in fleet.members():
            record = member.daemon.records.get("tail-spike")
            assert record is not None and not record.live
            assert "tail-spike" not in member.concord.policies
        entries = [
            e
            for e in coordinator.journal.entries()
            if e.get("event") == "pooled-breach"
        ]
        assert entries and entries[0]["lock"] == "svc.shard0.lock"
        assert entries[0]["kernels"] == ["k0", "k1", "k2"]
        assert entries[0]["metric"] == "p99_wait_ns"
