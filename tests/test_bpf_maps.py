"""Map types: hash, array, per-CPU variants, limits, userspace access."""

import pytest

from repro.bpf import ArrayMap, HashMap, PerCPUArrayMap, PerCPUHashMap, RuntimeFault
from repro.bpf.errors import BPFError


class TestHashMap:
    def test_crud(self):
        m = HashMap("m")
        assert m.lookup(1) is None
        m.update(1, 100)
        assert m.lookup(1) == 100
        assert m.delete(1) is True
        assert m.delete(1) is False

    def test_dict_sugar(self):
        m = HashMap("m")
        m[5] = 50
        assert m[5] == 50
        with pytest.raises(KeyError):
            _ = m[6]

    def test_capacity_enforced(self):
        m = HashMap("m", max_entries=2)
        m[1] = 1
        m[2] = 2
        with pytest.raises(RuntimeFault):
            m[3] = 3
        m[1] = 10  # overwriting existing keys is fine at capacity

    def test_u64_wrapping(self):
        m = HashMap("m")
        m.update(-1, -2)
        assert m.lookup((1 << 64) - 1) == (1 << 64) - 2

    def test_items_sorted(self):
        m = HashMap("m")
        for key in (5, 1, 3):
            m[key] = key
        assert list(m.items()) == [(1, 1), (3, 3), (5, 5)]


class TestArrayMap:
    def test_zero_initialized(self):
        m = ArrayMap("a", max_entries=4)
        assert m.lookup(0) == 0
        assert m.lookup(3) == 0

    def test_bounds(self):
        m = ArrayMap("a", max_entries=4)
        assert m.lookup(4) is None
        with pytest.raises(RuntimeFault):
            m.update(4, 1)

    def test_delete_resets_to_zero(self):
        m = ArrayMap("a", max_entries=4)
        m.update(2, 9)
        assert m.delete(2) is True
        assert m.lookup(2) == 0


class TestPerCPU:
    def test_percpu_array_isolation_and_sum(self):
        m = PerCPUArrayMap("p", max_entries=4, nr_cpus=4)
        m.update(0, 10, cpu=0)
        m.update(0, 20, cpu=1)
        assert m.lookup(0, cpu=0) == 10
        assert m.lookup(0, cpu=1) == 20
        assert m.lookup(0, cpu=2) == 0
        assert m.sum(0) == 30

    def test_percpu_hash_isolation_and_sum(self):
        m = PerCPUHashMap("p", nr_cpus=2)
        m.update(7, 5, cpu=0)
        m.update(7, 6, cpu=1)
        assert m.sum(7) == 11
        assert m.lookup(7, cpu=0) == 5

    def test_percpu_sum_bad_key(self):
        m = PerCPUArrayMap("p", max_entries=2, nr_cpus=2)
        with pytest.raises(KeyError):
            m.sum(9)


class TestValidation:
    def test_bad_max_entries(self):
        with pytest.raises(BPFError):
            HashMap("m", max_entries=0)
