"""The figures CLI."""

import pytest

from repro.tools.figures import _parse_threads, build_parser, main


class TestParsing:
    def test_thread_list(self):
        assert _parse_threads("1,10,80") == [1, 10, 80]
        assert _parse_threads("80,1,1") == [1, 80]  # dedup + sort

    def test_bad_thread_list(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_threads("a,b")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_threads("0,4")

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig2a"])
        assert args.exhibit == "fig2a"
        assert args.threads == [1, 10, 20, 40, 80]
        assert args.duration_ms == 2.0

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9z"])


class TestExecution:
    def test_fig2b_smoke(self, capsys):
        code = main(["fig2b", "--threads", "1,4", "--duration-ms", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2(b)" in out
        assert "lock2[stock]" in out

    def test_fig2c_normalized_output(self, capsys):
        code = main(["fig2c", "--threads", "1,4", "--duration-ms", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized" in out

    def test_chart_flag(self, capsys):
        code = main(["fig2a", "--threads", "1,2", "--duration-ms", "0.3", "--chart"])
        assert code == 0
        assert "threads" in capsys.readouterr().out

    def test_bad_duration(self, capsys):
        assert main(["fig2a", "--duration-ms", "-1"]) == 2
