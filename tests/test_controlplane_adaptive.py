"""The adaptation loop: collapse detection, self-proposed culls,
canary keep/rollback, and crash recovery."""

import pytest

from repro.concord import Concord
from repro.concord.profiler import LockProfile, ProfileReport, WAIT_BUCKETS
from repro.controlplane import (
    AdaptationLoop,
    CollapseDetector,
    Concordd,
    PolicyJournal,
    PolicyState,
    culling_impl_factory,
    default_cull_guard,
)
from repro.faults import FaultPlan, InjectedCrash, injected
from repro.faults.registry import SITE_ADAPTIVE_DETECT, SITE_ADAPTIVE_PROPOSE
from repro.kernel import Kernel
from repro.locks import MCSLock
from repro.locks.culling import CullingLock
from repro.sim import Topology
from repro.workloads.malthus import MalthusianBench


def _profile(name="svc.lock", acquired=100, avg_wait=1_000.0, avg_hold=500.0,
             p99_bucket=12):
    histogram = [0] * WAIT_BUCKETS
    histogram[p99_bucket] = acquired
    return LockProfile(
        lock_name=name,
        attempts=acquired,
        contended=acquired // 2,
        acquired=acquired,
        wait_total_ns=int(avg_wait * acquired),
        hold_total_ns=int(avg_hold * acquired),
        releases=acquired,
        wait_histogram=tuple(histogram),
        per_socket_acquired=(acquired // 2, acquired - acquired // 2),
    )


def _report(profiles, duration_ns=100_000):
    return ProfileReport(list(profiles), started_ns=0, stopped_ns=duration_ns)


class TestCollapseDetector:
    def test_healthy_windows_never_signal(self):
        detector = CollapseDetector()
        for _ in range(5):
            assert detector.observe(_report([_profile()])) == []

    def test_best_rate_window_becomes_reference(self):
        detector = CollapseDetector()
        detector.observe(_report([_profile(acquired=50)]))
        detector.observe(_report([_profile(acquired=200)]))
        detector.observe(_report([_profile(acquired=100)]))
        ref = detector.reference("svc.lock")
        assert ref.rate_per_ms == pytest.approx(2_000.0)  # 200 / 0.1ms

    def test_collapse_needs_both_blowup_and_rate_drop(self):
        # p99 blowup alone (throughput up) is just more load; a rate
        # drop alone (flat tail) is the workload quiescing.  Fresh
        # detector per case: a healthy higher-rate window would
        # otherwise become the new reference (by design).
        blowup_only = CollapseDetector()
        blowup_only.observe(_report([_profile(acquired=200, p99_bucket=10)]))
        assert blowup_only.observe(
            _report([_profile(acquired=400, p99_bucket=20)])
        ) == []  # tail blew up but throughput rose

        drop_only = CollapseDetector()
        drop_only.observe(_report([_profile(acquired=200, p99_bucket=10)]))
        assert drop_only.observe(
            _report([_profile(acquired=50, p99_bucket=10)])
        ) == []  # throughput fell but the tail is flat

        both = CollapseDetector()
        both.observe(_report([_profile(acquired=200, p99_bucket=10)]))
        signals = both.observe(
            _report([_profile(acquired=50, p99_bucket=20)])
        )
        assert len(signals) == 1
        signal = signals[0]
        assert signal.lock_name == "svc.lock"
        assert signal.p99_ns >= 3.0 * signal.ref_p99_ns
        assert signal.ref_rate_per_ms == pytest.approx(2_000.0)

    def test_collapsed_window_never_updates_reference(self):
        detector = CollapseDetector()
        detector.observe(_report([_profile(acquired=200, p99_bucket=10)]))
        detector.observe(_report([_profile(acquired=50, p99_bucket=20)]))
        ref = detector.reference("svc.lock")
        assert ref.rate_per_ms == pytest.approx(2_000.0)

    def test_suggest_cap_is_littles_law_with_floor(self):
        detector = CollapseDetector(min_cap=2, max_cap=8)
        detector.observe(_report([_profile(acquired=200, avg_hold=500.0)]))
        ref = detector.reference("svc.lock")
        # L = rate * hold = 2000/1e6 * 500 = 1 holder -> min_cap floor.
        assert detector.suggest_cap(ref) == 2
        # A lock legitimately holding ~3 concurrent holders caps there.
        detector2 = CollapseDetector(min_cap=2, max_cap=8)
        detector2.observe(
            _report([_profile(acquired=600, avg_hold=500.0)])
        )
        assert detector2.suggest_cap(detector2.reference("svc.lock")) == 3

    def test_cold_windows_are_ignored(self):
        detector = CollapseDetector(min_acquired=20)
        assert detector.observe(_report([_profile(acquired=5)])) == []
        assert detector.reference("svc.lock") is None

    def test_seed_reference_restores_journal_evidence(self):
        detector = CollapseDetector()
        detector.seed_reference(
            "svc.lock", 2_000.0, 1_500.0, avg_wait_ns=800.0, avg_hold_ns=500.0
        )
        # A still-collapsed first window fires immediately instead of
        # being learned as the baseline.
        signals = detector.observe(
            _report([_profile(acquired=50, p99_bucket=20)])
        )
        assert len(signals) == 1


def _bench_world(seed=42, journal=None, **daemon_kwargs):
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=seed)
    bench = MalthusianBench()
    bench.setup(kernel)
    concord = Concord(kernel)
    daemon = Concordd(
        concord, journal=journal if journal is not None else PolicyJournal(),
        **daemon_kwargs
    )
    return kernel, bench, concord, daemon


def _spawn(kernel, bench, start, count):
    order = kernel.topology.fill_order()
    for i in range(start, start + count):
        kernel.spawn(
            lambda task, i=i: bench.worker(task, i),
            cpu=order[i],
            name=f"malthus-{i}",
        )


def _bench_loop(daemon, **overrides):
    params = dict(
        selector="bench.*",
        window_ns=400_000,
        baseline_ns=80_000,
        canary_ns=120_000,
        check_every_ns=20_000,
    )
    params.update(overrides)
    return AdaptationLoop(daemon=daemon, **params)


class TestAdaptationLoopSingleKernel:
    def test_closed_loop_detects_and_keeps_the_cull(self):
        kernel, bench, _concord, daemon = _bench_world()
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        first = loop.run_once()
        assert first.outcome == "idle"  # pre-knee window is the reference
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        decision = loop.run_once()
        assert decision.outcome == "kept"
        assert decision.policy == "cull.bench.malthus.1"
        site = kernel.locks.get("bench.malthus")
        assert isinstance(site.core.impl, CullingLock)
        assert site.core.impl.cap == 2  # Little's-law floor for a mutex
        events = [
            e["event"]
            for e in daemon.journal.entries()
            if e.get("kind") == "adaptation"
        ]
        assert events == ["collapse-detected", "cull-proposed", "cull-kept"]
        record = daemon.records[decision.policy]
        assert record.state is PolicyState.ACTIVE

    def test_kept_cull_suppresses_redetection(self):
        kernel, bench, _concord, daemon = _bench_world()
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        loop.run_once()
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        assert loop.run_once().outcome == "kept"
        # The governed lock never re-proposes (the post-cull regime is
        # slower than the pre-knee reference by design).
        for _ in range(2):
            assert loop.run_once().outcome == "idle"

    def test_over_aggressive_cap_rolls_back_and_reverts(self):
        kernel, bench, _concord, daemon = _bench_world()
        loop = _bench_loop(daemon, cap_override=1)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        loop.run_once()
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        decision = loop.run_once()
        assert decision.outcome == "rolled-back"
        site = kernel.locks.get("bench.malthus")
        assert isinstance(site.core.impl, MCSLock)  # drained back to stock
        events = [
            e["event"]
            for e in daemon.journal.entries()
            if e.get("kind") == "adaptation"
        ]
        assert events[-1] == "cull-rolled-back"

    def test_detect_fault_skips_the_pass(self):
        kernel, bench, _concord, daemon = _bench_world()
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 8)
        kernel.run(until=kernel.now + 100_000)
        plan = FaultPlan(seed=1)
        plan.fail(SITE_ADAPTIVE_DETECT, times=1)
        with injected(plan):
            decision = loop.run_once()
        assert decision.outcome == "detect-failed"
        assert isinstance(
            kernel.locks.get("bench.malthus").core.impl, MCSLock
        )

    def test_propose_fault_aborts_before_install_and_journals(self):
        kernel, bench, _concord, daemon = _bench_world()
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        loop.run_once()
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        plan = FaultPlan(seed=1)
        plan.fail(SITE_ADAPTIVE_PROPOSE, times=1)
        with injected(plan):
            decision = loop.run_once()
        assert decision.outcome == "propose-failed"
        assert isinstance(
            kernel.locks.get("bench.malthus").core.impl, MCSLock
        )
        events = [
            e["event"]
            for e in daemon.journal.entries()
            if e.get("kind") == "adaptation"
        ]
        # The aborted proposal is resolved in-line: never left open.
        assert events[-2:] == ["cull-proposed", "cull-rolled-back"]


class TestAdaptationRecovery:
    def _crash_mid_propose(self, tmp_path):
        journal_path = str(tmp_path / "adapt.jsonl")
        kernel, bench, concord, daemon = _bench_world(
            journal=PolicyJournal(journal_path)
        )
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        loop.run_once()
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        plan = FaultPlan(seed=42)
        plan.crash(SITE_ADAPTIVE_PROPOSE)
        with pytest.raises(InjectedCrash):
            with injected(plan):
                loop.run_once()
        return journal_path, kernel, concord

    def test_recover_resolves_open_proposal_as_rolled_back(self, tmp_path):
        journal_path, kernel, concord = self._crash_mid_propose(tmp_path)
        journal = PolicyJournal(journal_path)
        registry = {
            f"culling-cap{cap}": culling_impl_factory(cap) for cap in (1, 2, 4)
        }
        daemon_b = Concordd(concord, journal=journal, impl_registry=registry)
        daemon_b.recover()
        loop_b = _bench_loop(daemon_b)
        summary = loop_b.recover()
        assert summary["resolved"] == 1
        entries = [
            e for e in journal.entries() if e.get("kind") == "adaptation"
        ]
        assert entries[-1]["event"] == "cull-rolled-back"
        assert "recovered" in entries[-1]["cause"]
        # The no-unjudged-cull invariant: nothing was installed.
        assert isinstance(
            kernel.locks.get("bench.malthus").core.impl, MCSLock
        )

    def test_recover_reseeds_reference_and_loop_continues(self, tmp_path):
        journal_path, kernel, concord = self._crash_mid_propose(tmp_path)
        daemon_b = Concordd(
            concord,
            journal=PolicyJournal(journal_path),
            impl_registry={"culling-cap2": culling_impl_factory(2)},
        )
        daemon_b.recover()
        loop_b = _bench_loop(daemon_b)
        loop_b.recover()
        ref = loop_b.detector.reference("bench.malthus")
        assert ref is not None and ref.rate_per_ms > 0
        decisions = loop_b.run(passes=4)
        assert decisions[-1].outcome == "kept"
        # Sequence numbering survives the crash: a fresh policy name.
        assert decisions[-1].policy == "cull.bench.malthus.2"
        assert isinstance(
            kernel.locks.get("bench.malthus").core.impl, CullingLock
        )

    def test_recover_restores_governed_set_from_kept_culls(self, tmp_path):
        journal_path = str(tmp_path / "kept.jsonl")
        kernel, bench, concord, daemon = _bench_world(
            journal=PolicyJournal(journal_path)
        )
        loop = _bench_loop(daemon)
        _spawn(kernel, bench, 0, 4)
        kernel.run(until=kernel.now + 100_000)
        loop.run_once()
        _spawn(kernel, bench, 4, 4)
        kernel.run(until=kernel.now + 100_000)
        assert loop.run_once().outcome == "kept"

        loop_b = _bench_loop(daemon)
        summary = loop_b.recover()
        assert summary["resolved"] == 0  # the kept cull was judged
        # Replayed governance suppresses immediate re-proposal.
        assert loop_b.run_once().outcome == "idle"

    def test_recover_without_journal_is_a_noop(self):
        kernel, bench, _concord, daemon = _bench_world(journal=None)
        # A daemon always has a journal object; simulate none at the
        # loop level by pointing at an empty in-memory journal.
        loop = _bench_loop(daemon)
        assert loop.recover() == {"replayed": 0, "resolved": 0}


class TestGuardAndFactory:
    def test_culling_impl_factory_names_and_builds(self):
        kernel = Kernel(Topology(sockets=1, cores_per_socket=2), seed=1)
        site = kernel.add_lock("x", MCSLock(kernel.engine, name="x"))
        factory = culling_impl_factory(3)
        assert factory.__name__ == "culling-cap3"
        new = factory(site.core.impl)
        assert isinstance(new, CullingLock)
        assert new.cap == 3

    def test_default_guard_composes_tail_and_fairness(self):
        guard = default_cull_guard()
        names = [type(g).__name__ for g in guard.guards]
        assert names == ["TailWaitGuard", "FairnessGuard"]
