"""Fast shape-regression guards.

Scaled-down versions of the Figure 2 shape assertions so that plain
``pytest tests/`` already protects the headline results against
calibration regressions (the full sweeps live in ``benchmarks/``).
"""

import pytest

from repro.sim import paper_machine
from repro.workloads import HashTableBench, Lock2, PageFault2, run_throughput

TOPO = paper_machine()
FAST = dict(duration_ns=1_000_000, warmup_ns=200_000)


@pytest.mark.parametrize("threads", [40])
def test_fig2a_shape_guard(threads):
    stock = run_throughput(PageFault2("stock"), TOPO, threads, **FAST)
    bravo = run_throughput(PageFault2("bravo"), TOPO, threads, **FAST)
    concord = run_throughput(PageFault2("concord-bravo"), TOPO, threads, **FAST)
    # BRAVO wins big past one socket; Concord tracks it.
    assert bravo.ops_per_msec > 1.8 * stock.ops_per_msec
    assert concord.ops_per_msec > 0.8 * bravo.ops_per_msec


@pytest.mark.parametrize("threads", [40])
def test_fig2b_shape_guard(threads):
    stock = run_throughput(Lock2("stock"), TOPO, threads, **FAST)
    shfl = run_throughput(Lock2("shfllock"), TOPO, threads, **FAST)
    concord = run_throughput(Lock2("concord-shfllock"), TOPO, threads, **FAST)
    assert shfl.ops_per_msec > 1.1 * stock.ops_per_msec
    assert concord.ops_per_msec > 0.75 * shfl.ops_per_msec


@pytest.mark.parametrize("threads", [16])
def test_fig2c_shape_guard(threads):
    base = run_throughput(HashTableBench("shfllock"), TOPO, threads, seed=5, **FAST)
    patched = run_throughput(
        HashTableBench("concord-nopolicy"), TOPO, threads, seed=5, **FAST
    )
    ratio = patched.ops_per_msec / base.ops_per_msec
    # Framework overhead exists but stays in the paper's ballpark.
    assert 0.6 < ratio <= 1.05, ratio


def test_stock_lock2_declines_across_sockets():
    """The crossover premise: stock peaks within one socket."""
    small = run_throughput(Lock2("stock"), TOPO, 10, **FAST)
    large = run_throughput(Lock2("stock"), TOPO, 80, **FAST)
    assert large.ops_per_msec < 0.6 * small.ops_per_msec


def test_bravo_scales_with_readers():
    small = run_throughput(PageFault2("bravo"), TOPO, 10, **FAST)
    large = run_throughput(PageFault2("bravo"), TOPO, 80, **FAST)
    assert large.ops_per_msec > 1.5 * small.ops_per_msec
