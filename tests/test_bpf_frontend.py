"""Frontend compiler: compiled programs match Python semantics.

The strongest check here is differential: compile a policy function and
also *run it as plain Python*, then assert both agree — including a
hypothesis-driven randomized version over the expression grammar.
"""

import pytest

from repro.bpf import (
    CompileError,
    ContextLayout,
    HashMap,
    VM,
    Verifier,
    compile_policy,
)

LAYOUT = ContextLayout("t", ["a", "b", "c", "d"])
U64 = (1 << 64) - 1


class _Ctx:
    def __init__(self, **kw):
        for field in LAYOUT.fields:
            setattr(self, field, kw.get(field, 0))


def compiled_result(source, ctx_values, maps=None, task=None):
    program = compile_policy(source, LAYOUT, maps=maps)
    Verifier().verify(program)
    r0, _cost = VM().run(program, LAYOUT.pack(ctx_values), task=task)
    return r0


def python_result(source, ctx_values, extra_globals=None):
    namespace = dict(extra_globals or {})
    exec(source, namespace)  # noqa: S102 - test-controlled source
    fn = [v for k, v in namespace.items() if callable(v) and not k.startswith("_")][0]
    result = fn(_Ctx(**ctx_values))
    if result is None:
        result = 0
    return int(result) & U64


def assert_matches(source, ctx_values, maps=None):
    assert compiled_result(source, ctx_values, maps=maps) == python_result(
        source, ctx_values
    )


class TestExpressionSemantics:
    @pytest.mark.parametrize(
        "expr",
        [
            "ctx.a + ctx.b",
            "ctx.a - ctx.b + 7",
            "ctx.a * 3 + ctx.b * 2",
            "(ctx.a & 0xff) | (ctx.b << 4)",
            "ctx.a ^ ctx.b ^ ctx.c",
            "ctx.a >> 2",
            "ctx.a // 3",
            "ctx.a % 7",
            "-ctx.a + 100",
            "ctx.a == ctx.b",
            "ctx.a != ctx.b",
            "ctx.a < ctx.b",
            "ctx.a >= ctx.c",
            "(ctx.a > 1) and (ctx.b > 1)",
            "(ctx.a > 5) or (ctx.c == 0)",
            "not ctx.a",
            "1 if ctx.a > ctx.b else 2",
            "(ctx.a + ctx.b) * (ctx.c + 1)",
        ],
    )
    def test_expression(self, expr):
        source = f"def f(ctx):\n    return {expr}\n"
        for values in (
            {"a": 3, "b": 9, "c": 2, "d": 1},
            {"a": 9, "b": 3, "c": 0, "d": 0},
            {"a": 7, "b": 7, "c": 7, "d": 7},
            {"a": 0, "b": 1, "c": 100, "d": 50},
        ):
            assert_matches(source, values)

    def test_locals_and_augassign(self):
        source = """
def f(ctx):
    total = ctx.a
    total += ctx.b
    total *= 2
    spare = total - ctx.c
    return spare
"""
        assert_matches(source, {"a": 5, "b": 6, "c": 3})

    def test_if_elif_else(self):
        source = """
def f(ctx):
    if ctx.a > 10:
        return 1
    elif ctx.a > 5:
        return 2
    else:
        return 3
"""
        for a in (20, 7, 1):
            assert_matches(source, {"a": a})

    def test_unrolled_loop(self):
        source = """
def f(ctx):
    total = 0
    for i in range(5):
        total += i * ctx.a
    return total
"""
        assert_matches(source, {"a": 3})

    def test_range_with_start_stop_step(self):
        source = """
def f(ctx):
    total = 0
    for i in range(2, 12, 3):
        total += i
    return total
"""
        assert_matches(source, {})

    def test_implicit_return_zero(self):
        source = "def f(ctx):\n    x = ctx.a\n"
        assert compiled_result(source, {"a": 5}) == 0

    def test_bool_constants(self):
        assert compiled_result("def f(ctx):\n    return True\n", {}) == 1


class TestHelpersInSource:
    def test_cpu_and_numa_helpers(self):
        class FakeTask:
            tid = 9
            cpu_id = 13
            numa_node = 3
            priority = 2
            tags = {"boost": 5}

        source = "def f(ctx):\n    return cpu_id() * 100 + numa_node()\n"
        assert compiled_result(source, {}, task=FakeTask()) == 1303

    def test_tag_helper(self):
        class FakeTask:
            tid = 9
            cpu_id = 0
            numa_node = 0
            priority = 0
            tags = {"boost": 5}

        source = 'def f(ctx):\n    return tag("boost") + tag("missing")\n'
        assert compiled_result(source, {}, task=FakeTask()) == 5

    def test_map_operations(self):
        table = HashMap("table")
        table[10] = 111
        source = """
def f(ctx):
    if table.contains(ctx.a):
        return table.lookup(ctx.a)
    table.update(ctx.a, 55)
    return table.lookup(ctx.a)
"""
        assert compiled_result(source, {"a": 10}, maps={"table": table}) == 111
        assert compiled_result(source, {"a": 20}, maps={"table": table}) == 55
        assert table[20] == 55

    def test_map_add(self):
        counter = HashMap("counter")
        source = "def f(ctx):\n    counter.add(1, 10)\n    return counter.lookup(1)\n"
        assert compiled_result(source, {}, maps={"counter": counter}) == 10
        assert compiled_result(source, {}, maps={"counter": counter}) == 20


class TestRejections:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("def f(ctx):\n    while ctx.a:\n        pass\n", "While"),
            ("def f(ctx):\n    return ctx.missing\n", "no field"),
            ("def f(ctx):\n    return open('x')\n", "unknown function"),
            ("def f(ctx):\n    return 'str'\n", "constant"),
            ("def f(ctx):\n    for i in range(ctx.a):\n        pass\n", "constants"),
            ("def f(ctx):\n    for i in range(500):\n        pass\n", "unrolling"),
            ("def f(ctx, extra):\n    return 0\n", "exactly one"),
            ("x = 1\n", "function definition"),
            ("def f(ctx):\n    return 1 < ctx.a < 5\n", "chained"),
            ("def f(ctx):\n    ctx.a = 1\n", "assignment"),
            ("def f(ctx):\n    return nothere.lookup(1)\n", "unknown object"),
            ("def f(ctx)\n    return 0\n", "syntax"),
            ("def f(ctx):\n    return tag(ctx.a)\n", "literal string"),
        ],
    )
    def test_rejected(self, source, fragment):
        with pytest.raises(CompileError) as err:
            compile_policy(source, LAYOUT)
        assert fragment in str(err.value)

    def test_unknown_map_method(self):
        with pytest.raises(CompileError):
            compile_policy(
                "def f(ctx):\n    return m.pop(1)\n", LAYOUT, maps={"m": HashMap("m")}
            )

    def test_wrong_arity_helper(self):
        with pytest.raises(CompileError):
            compile_policy("def f(ctx):\n    return cpu_id(5)\n", LAYOUT)


class TestCompiledPrograms:
    def test_always_verifiable(self):
        """Everything the frontend emits must pass the verifier."""
        sources = [
            "def f(ctx):\n    return ctx.a == ctx.b\n",
            "def f(ctx):\n    t = 0\n    for i in range(8):\n        t += ctx.a\n    return t > 5\n",
            "def f(ctx):\n    return (ctx.a > 1 and ctx.b > 2) or not ctx.c\n",
        ]
        for source in sources:
            program = compile_policy(source, LAYOUT)
            Verifier().verify(program)

    def test_source_preserved(self):
        source = "def my_policy(ctx):\n    return 1\n"
        program = compile_policy(source, LAYOUT)
        assert program.name == "my_policy"
        assert program.source == source
