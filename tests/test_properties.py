"""Property-based tests (hypothesis) over the core invariants."""

import ast

from hypothesis import given, settings, strategies as st

from repro import locks as L
from repro.bpf import ContextLayout, VM, Verifier, compile_policy
from repro.locks.shfllock import ShflNode
from repro.sim import Engine, Topology, ops
from repro.sim.stats import Histogram, Summary

# ----------------------------------------------------------------------
# 1. Mutual exclusion under randomized schedules, for every lock family.
# ----------------------------------------------------------------------
_LOCKS = {
    "ttas": lambda e: L.TTASLock(e),
    "ticket": lambda e: L.TicketLock(e),
    "mcs": lambda e: L.MCSLock(e),
    "cna": lambda e: L.CNALock(e, flush_threshold=4),
    "shfl": lambda e: L.ShflLock(e, policy=L.NumaPolicy(), debug_checks=True),
    "mutex": lambda e: L.SpinParkMutex(e, spin_budget_ns=500),
    "qspinlock": lambda e: L.QSpinLock(e),
    "seqlock": lambda e: L.SeqLock(e),
}


@given(
    name=st.sampled_from(sorted(_LOCKS)),
    seed=st.integers(min_value=0, max_value=10_000),
    n_tasks=st.integers(min_value=2, max_value=8),
    cs_ns=st.integers(min_value=10, max_value=2_000),
)
@settings(max_examples=25, deadline=None)
def test_mutual_exclusion_random_schedules(name, seed, n_tasks, cs_ns):
    topo = Topology(sockets=2, cores_per_socket=4)
    eng = Engine(topo, seed=seed)
    lock = _LOCKS[name](eng)
    shared = eng.cell(0)
    iters = 10

    def worker(task):
        rng = task.engine.rng
        for _ in range(iters):
            yield from lock.acquire(task)
            value = yield ops.Load(shared)
            yield ops.Delay(cs_ns)
            yield ops.Store(shared, value + 1)
            yield from lock.release(task)
            yield ops.Delay(rng.randint(0, 500))

    for index in range(n_tasks):
        eng.spawn(worker, cpu=index % topo.nr_cpus, at=eng.rng.randint(0, 2_000))
    eng.run()
    assert shared.peek() == n_tasks * iters


# ----------------------------------------------------------------------
# 2. RW locks: readers never observe a torn write, writers never lost.
# ----------------------------------------------------------------------
_RW_LOCKS = {
    "neutral": lambda e: L.NeutralRWLock(e),
    "rwsem": lambda e: L.RWSemaphore(e),
    "bravo": lambda e: L.BravoLock(e, L.RWSemaphore(e)),
    "percpu": lambda e: L.PerCPURWLock(e),
    "phase-fair": lambda e: L.PhaseFairRWLock(e),
}


@given(
    name=st.sampled_from(sorted(_RW_LOCKS)),
    seed=st.integers(min_value=0, max_value=10_000),
    readers=st.integers(min_value=1, max_value=6),
    writers=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_rw_consistency_random_schedules(name, seed, readers, writers):
    topo = Topology(sockets=2, cores_per_socket=4)
    eng = Engine(topo, seed=seed)
    lock = _RW_LOCKS[name](eng)
    shared = eng.cell(0)
    iters = 8
    torn = []

    def reader(task):
        for _ in range(iters):
            yield from lock.read_acquire(task)
            before = yield ops.Load(shared)
            yield ops.Delay(task.engine.rng.randint(10, 400))
            after = yield ops.Load(shared)
            if before != after:
                torn.append((before, after))
            yield from lock.read_release(task)
            yield ops.Delay(task.engine.rng.randint(0, 200))

    def writer(task):
        for _ in range(iters):
            yield from lock.write_acquire(task)
            value = yield ops.Load(shared)
            yield ops.Delay(task.engine.rng.randint(10, 300))
            yield ops.Store(shared, value + 1)
            yield from lock.write_release(task)
            yield ops.Delay(task.engine.rng.randint(0, 600))

    cpu = 0
    for _ in range(readers):
        eng.spawn(reader, cpu=cpu % topo.nr_cpus)
        cpu += 1
    for _ in range(writers):
        eng.spawn(writer, cpu=cpu % topo.nr_cpus)
        cpu += 1
    eng.run()
    assert torn == []
    assert shared.peek() == writers * iters


# ----------------------------------------------------------------------
# 3. Shuffle passes preserve queue membership for arbitrary queues.
# ----------------------------------------------------------------------
@given(
    sockets=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12),
    head_socket=st.integers(min_value=0, max_value=3),
    window=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_shuffle_preserves_membership(sockets, head_socket, window):
    topo = Topology(sockets=4, cores_per_socket=4)
    eng = Engine(topo, seed=1)
    lock = L.ShflLock(
        eng, policy=L.NumaPolicy(), max_shuffle_window=window, debug_checks=True
    )

    def noop(task):
        yield ops.Delay(1)

    def make_node(socket, name):
        task = eng.spawn(noop, cpu=topo.cpus_of_socket(socket)[0], name=name)
        return ShflNode(eng, task)

    head = make_node(head_socket, "head")
    prev = head
    nodes = [head]
    for index, socket in enumerate(sockets):
        node = make_node(socket, f"n{index}")
        prev.next.value = node
        nodes.append(node)
        prev = node
    lock.tail.value = prev

    def driver(task):
        yield from lock._shuffle_pass(task, head)

    eng.spawn(driver, cpu=0)
    eng.run()
    walked = L.ShflLock.walk_queue_from(head)
    assert {id(n) for n in walked} == {id(n) for n in nodes}
    # The tail (last original node) must still terminate the list.
    assert walked[-1].next.peek() is None


# ----------------------------------------------------------------------
# 4. Frontend/VM semantics match Python for random arithmetic programs.
# ----------------------------------------------------------------------
_LAYOUT = ContextLayout("prop", ["a", "b", "c"])
_U64 = (1 << 64) - 1

_terminal = st.sampled_from(["ctx.a", "ctx.b", "ctx.c", "1", "2", "7", "13"])
_binop = st.sampled_from(["+", "-", "*", "&", "|", "^"])
_cmp = st.sampled_from(["==", "!=", "<", ">", "<=", ">="])


@st.composite
def _expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_terminal)
    kind = draw(st.integers(min_value=0, max_value=2))
    left = draw(_expr(depth + 1))
    right = draw(_expr(depth + 1))
    if kind == 0:
        return f"({left} {draw(_binop)} {right})"
    if kind == 1:
        return f"({left} {draw(_cmp)} {right})"
    return f"(({left}) if ({draw(_expr(depth + 1))}) else ({right}))"


@given(
    expr=_expr(),
    a=st.integers(min_value=0, max_value=1 << 20),
    b=st.integers(min_value=0, max_value=1 << 20),
    c=st.integers(min_value=0, max_value=1 << 20),
)
@settings(max_examples=120, deadline=None)
def test_frontend_matches_python(expr, a, b, c):
    source = f"def f(ctx):\n    return {expr}\n"
    program = compile_policy(source, _LAYOUT)
    Verifier().verify(program)
    r0, _cost = VM().run(program, _LAYOUT.pack({"a": a, "b": b, "c": c}))

    class _Ctx:
        pass

    ctx = _Ctx()
    ctx.a, ctx.b, ctx.c = a, b, c
    namespace = {}
    exec(source, namespace)  # noqa: S102 - generated from a closed grammar
    expected = int(namespace["f"](ctx)) & _U64
    assert r0 == expected


# ----------------------------------------------------------------------
# 5. Everything the frontend emits passes the verifier.
# ----------------------------------------------------------------------
@given(expr=_expr())
@settings(max_examples=60, deadline=None)
def test_frontend_output_always_verifies(expr):
    source = f"def f(ctx):\n    return {expr}\n"
    program = compile_policy(source, _LAYOUT)
    Verifier().verify(program)  # must not raise


# ----------------------------------------------------------------------
# 6. Statistics invariants.
# ----------------------------------------------------------------------
@given(samples=st.lists(st.floats(min_value=0.1, max_value=1e9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_summary_matches_reference(samples):
    summary = Summary()
    for sample in samples:
        summary.observe(sample)
    assert summary.count == len(samples)
    assert abs(summary.mean - sum(samples) / len(samples)) <= 1e-6 * max(samples)
    assert summary.min == min(samples)
    assert summary.max == max(samples)


@given(samples=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_histogram_percentile_bounds(samples):
    histogram = Histogram()
    for sample in samples:
        histogram.observe(sample)
    p50 = histogram.percentile(50)
    p100 = histogram.percentile(100)
    assert p50 <= p100
    # p100 is an upper bound for every sample.
    assert p100 >= max(samples) or histogram.overflow == 0


# ----------------------------------------------------------------------
# 7. Determinism: identical configuration => identical final state.
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=1 << 30))
@settings(max_examples=10, deadline=None)
def test_engine_determinism(seed):
    def run():
        topo = Topology(sockets=2, cores_per_socket=2)
        eng = Engine(topo, seed=seed)
        lock = L.ShflLock(eng, policy=L.NumaPolicy())
        log = []

        def worker(task):
            for _ in range(15):
                yield from lock.acquire(task)
                log.append((task.tid, task.engine.now))
                yield ops.Delay(task.engine.rng.randint(10, 200))
                yield from lock.release(task)

        for cpu in range(4):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        return log

    assert run() == run()
