"""Kernel-wide admission budgets (:class:`KernelBudget`).

Per-client quotas bound how *many* policies a tenant runs; budgets
bound the aggregate *weight* on one kernel: total chained instructions
per hook, total pinned bpffs bytes — summed across every client's live
policies.  Many small tenants, each inside its quota, must not be able
to overload a hot lock path together.
"""

import pytest

from repro.bpf.maps import HashMap
from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    BudgetError,
    Concordd,
    KernelBudget,
    PolicyState,
    PolicySubmission,
)
from repro.fleet import FleetManager
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import HOOK_LOCK_ACQUIRED, HOOK_LOCK_RELEASE
from repro.sim import Topology

METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def submission(name, hook=HOOK_LOCK_ACQUIRED):
    return PolicySubmission(
        spec=PolicySpec(
            name=name,
            hook=hook,
            source=METER_SOURCE.replace("meter", name.replace("-", "_")),
            maps={"hits": HashMap(f"{name}.hits", max_entries=256)},
            lock_selector="svc.*.lock",
        )
    )


def make_daemon(budget=None, clients=("alice", "bob")):
    kernel = Kernel(Topology(sockets=2, cores_per_socket=2), seed=7)
    kernel.add_lock("svc.a.lock", ShflLock(kernel.engine, name="a"))
    daemon = Concordd(Concord(kernel), budget=budget)
    for client in clients:
        daemon.register_client(client, allowed_selectors=("svc.*",))
    return daemon


def footprint(daemon, name="probe"):
    """Measure one submission's verified footprint, then retire it."""
    record = daemon.submit("alice", submission(name))
    insns = record.insn_counts[HOOK_LOCK_ACQUIRED]
    pinned = record.pinned_bytes
    daemon.withdraw("alice", name)
    return insns, pinned


def test_no_budget_admits_freely():
    daemon = make_daemon(budget=None)
    for index in range(6):
        daemon.register_client(f"c{index}", allowed_selectors=("svc.*",), max_live_policies=1)
        record = daemon.submit(f"c{index}", submission(f"p{index}"))
        assert record.state is PolicyState.VERIFIED


def test_hook_insn_budget_caps_aggregate_across_clients():
    probe = make_daemon()
    insns, _ = footprint(probe)

    daemon = make_daemon(budget=KernelBudget(max_hook_insns=insns + insns // 2))
    assert daemon.submit("alice", submission("first")).state is PolicyState.VERIFIED
    # bob is inside his own quota; the *kernel* is what's full.
    with pytest.raises(BudgetError, match="chained instructions kernel-wide"):
        daemon.submit("bob", submission("second"))
    record = daemon.records["second"]
    assert record.state is PolicyState.REJECTED
    assert "budget denied" in daemon.audit.records[-1].cause


def test_pinned_bytes_budget_caps_bpffs_usage():
    probe = make_daemon()
    _, pinned = footprint(probe)

    daemon = make_daemon(budget=KernelBudget(max_pinned_bytes=pinned + pinned // 2))
    daemon.submit("alice", submission("first"))
    with pytest.raises(BudgetError, match="bpffs"):
        daemon.submit("bob", submission("second"))


def test_budget_ignores_other_hooks():
    probe = make_daemon()
    insns, _ = footprint(probe)

    daemon = make_daemon(budget=KernelBudget(max_hook_insns=insns + insns // 2))
    daemon.submit("alice", submission("first"))
    # Same weight on a different hook: that hook's chain is empty.
    record = daemon.submit("bob", submission("second", hook=HOOK_LOCK_RELEASE))
    assert record.state is PolicyState.VERIFIED


def test_terminal_records_release_their_budget():
    probe = make_daemon()
    insns, _ = footprint(probe)

    daemon = make_daemon(budget=KernelBudget(max_hook_insns=insns + insns // 2))
    daemon.submit("alice", submission("first"))
    with pytest.raises(BudgetError):
        daemon.submit("bob", submission("second"))
    daemon.withdraw("alice", "first")  # RETIRED = terminal = off-budget
    record = daemon.submit("bob", submission("third"))
    assert record.state is PolicyState.VERIFIED


def test_budgets_are_per_fleet_member():
    probe = make_daemon()
    insns, _ = footprint(probe)
    budget = KernelBudget(max_hook_insns=insns + insns // 2)

    fleet = FleetManager()
    for name, seed in (("k0", 1), ("k1", 2)):
        kernel = Kernel(Topology(sockets=2, cores_per_socket=2), seed=seed)
        kernel.add_lock("svc.a.lock", ShflLock(kernel.engine, name="a"))
        member = fleet.register(name, kernel, budget=budget)
        member.daemon.register_client("ops", allowed_selectors=("svc.*",))

    # Filling k0's budget leaves k1's untouched: the ceiling is
    # per kernel, not per fleet.
    fleet.member("k0").daemon.submit("ops", submission("fat"))
    with pytest.raises(BudgetError):
        fleet.member("k0").daemon.submit("ops", submission("overflow"))
    record = fleet.member("k1").daemon.submit("ops", submission("fat"))
    assert record.state is PolicyState.VERIFIED


def test_rejected_submission_leaves_name_reusable():
    probe = make_daemon()
    insns, _ = footprint(probe)
    daemon = make_daemon(budget=KernelBudget(max_hook_insns=insns + insns // 2))
    daemon.submit("alice", submission("first"))
    with pytest.raises(BudgetError):
        daemon.submit("bob", submission("second"))
    daemon.withdraw("alice", "first")
    # The budget-rejected record is terminal, so the name is free.
    record = daemon.submit("bob", submission("second"))
    assert record.state is PolicyState.VERIFIED
