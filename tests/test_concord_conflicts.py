"""Static composition analysis (§6 'Composing policies')."""

import pytest

from repro.bpf import HashMap, compile_policy
from repro.concord import Concord, PolicySpec, analyze_chain, footprint_of
from repro.concord.api import CMP_NODE_LAYOUT, LOCK_EVENT_LAYOUT
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology


def fp(source, maps=None, layout=CMP_NODE_LAYOUT, name=None):
    return footprint_of(compile_policy(source, layout, maps=maps, name=name))


class TestFootprints:
    def test_ctx_fields_extracted(self):
        footprint = fp("def f(ctx):\n    return ctx.curr_socket == ctx.shuffler_socket\n")
        assert footprint.ctx_fields == ("curr_socket", "shuffler_socket")

    def test_map_read_vs_write_classified(self):
        state = HashMap("state")
        reader = fp("def f(ctx):\n    return state.lookup(ctx.curr_tid)\n", {"state": state})
        assert reader.maps_read == ("state",)
        assert reader.maps_written == ()
        writer = fp(
            "def f(ctx):\n    meter.add(ctx.tid, 1)\n    return 0\n",
            {"meter": HashMap("meter")},
            layout=LOCK_EVENT_LAYOUT,
        )
        assert writer.maps_written == ("meter",)

    def test_helpers_recorded(self):
        footprint = fp("def f(ctx):\n    return cpu_id() + numa_node()\n")
        assert "get_smp_processor_id" in footprint.helpers
        assert "get_numa_node_id" in footprint.helpers

    def test_constant_return_detected(self):
        assert fp("def f(ctx):\n    return 1\n").constant_return == 1
        assert fp("def f(ctx):\n    return 0\n").constant_return == 0
        assert fp("def f(ctx):\n    x = 5\n").constant_return == 0  # implicit

    def test_non_constant_not_flagged(self):
        footprint = fp("def f(ctx):\n    return ctx.curr_prio > 3\n")
        assert footprint.constant_return is None

    def test_mixed_constants_not_constant(self):
        footprint = fp(
            "def f(ctx):\n    if ctx.curr_prio > 3:\n        return 1\n    return 2\n"
        )
        assert footprint.constant_return is None


class TestChainAnalysis:
    def test_shadowing_constant_under_or(self):
        a = fp("def always(ctx):\n    return 1\n", name="always")
        b = fp("def numa(ctx):\n    return ctx.curr_socket == ctx.shuffler_socket\n", name="numa")
        findings = analyze_chain([a, b], combiner="or")
        assert any("shadows" in f.message for f in findings)

    def test_veto_constant_under_and(self):
        a = fp("def never(ctx):\n    return 0\n", name="never")
        b = fp("def numa(ctx):\n    return ctx.curr_socket == 1\n", name="numa")
        findings = analyze_chain([a, b], combiner="and")
        assert any("vetoes" in f.message for f in findings)

    def test_dead_chain_under_first(self):
        a = fp("def always(ctx):\n    return 7\n", name="always")
        b = fp("def other(ctx):\n    return ctx.curr_prio\n", name="other")
        findings = analyze_chain([a, b], combiner="first")
        assert any("dead" in f.message for f in findings)

    def test_single_constant_policy_not_flagged(self):
        """A lone constant policy is a legitimate on/off switch."""
        a = fp("def always(ctx):\n    return 1\n", name="always")
        findings = analyze_chain([a], combiner="or")
        assert not any(f.severity == "warning" for f in findings)

    def test_waw_on_shared_map(self):
        shared = HashMap("shared")
        a = fp(
            "def w1(ctx):\n    shared.update(ctx.tid, 1)\n    return 0\n",
            {"shared": shared},
            layout=LOCK_EVENT_LAYOUT,
            name="w1",
        )
        b = fp(
            "def w2(ctx):\n    shared.update(ctx.tid, 2)\n    return 0\n",
            {"shared": shared},
            layout=LOCK_EVENT_LAYOUT,
            name="w2",
        )
        findings = analyze_chain([a, b], combiner="or", decision_hook=False)
        assert any("both write" in f.message for f in findings)

    def test_war_coupling_is_info(self):
        shared = HashMap("shared")
        writer = fp(
            "def w(ctx):\n    shared.update(ctx.tid, 1)\n    return 0\n",
            {"shared": shared},
            layout=LOCK_EVENT_LAYOUT,
            name="w",
        )
        reader = fp(
            "def r(ctx):\n    return shared.lookup(ctx.tid)\n",
            {"shared": shared},
            layout=LOCK_EVENT_LAYOUT,
            name="r",
        )
        findings = analyze_chain([writer, reader], combiner="or", decision_hook=False)
        coupling = [f for f in findings if "coupled" in f.message]
        assert coupling and coupling[0].severity == "info"

    def test_blind_decision_program_flagged(self):
        blind = fp("def f(ctx):\n    return prandom() & 1\n", name="blind")
        findings = analyze_chain([blind], combiner="or", decision_hook=True)
        assert any("neither context nor maps" in f.message for f in findings)

    def test_clean_chain_no_warnings(self):
        a = fp("def numa(ctx):\n    return ctx.curr_socket == ctx.shuffler_socket\n", name="a")
        b = fp("def prio(ctx):\n    return ctx.curr_prio > ctx.shuffler_prio\n", name="b")
        findings = analyze_chain([a, b], combiner="or")
        assert findings == []


class TestFrameworkIntegration:
    def test_load_emits_composition_events(self):
        kernel = Kernel(Topology(sockets=2, cores_per_socket=2), seed=1)
        kernel.add_lock("x.lock", ShflLock(kernel.engine, name="x"))
        concord = Concord(kernel)
        concord.load_policy(
            PolicySpec("sane", "cmp_node", "def f(ctx):\n    return ctx.curr_prio > 0\n",
                       lock_selector="x.lock")
        )
        concord.load_policy(
            PolicySpec("always", "cmp_node", "def f(ctx):\n    return 1\n",
                       lock_selector="x.lock")
        )
        warnings = [e for e in concord.events if e.kind == "compose-warning"]
        assert warnings and "shadows" in warnings[0].message
