"""The ``concordd traffic`` acceptance scenario.

The contract: the same benign policy, seed, tenants, and budgets reach
*opposite* pooled-guard verdicts depending only on the load schedule —
COMPLETE under the steady trace, HALTED with a journaled, attributed
pooled breach under the burst trace — and the Malthusian sweep shows a
real knee.  That is the load-dependent-verdict acceptance criterion.
"""

from repro.tools import concordd


def test_traffic_scenario_passes(capsys, tmp_path):
    code = concordd.main(["traffic", "--journal-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0, out
    # Phase 1: the knee is where the model predicts, and real.
    assert "[ok] knee lands where the model predicts" in out
    assert "[ok] throughput collapses past the knee" in out
    # Phase 2: steady load clears the pooled guard.
    assert "[ok] steady-load wave COMPLETEs" in out
    assert "[ok] policy ACTIVE on every kernel under steady load" in out
    # Phase 3: the same policy is halted under burst with attribution.
    assert "[ok] burst-load wave HALTED by the pooled verdict" in out
    assert "[ok] halt cause is the pooled breach" in out
    assert "[ok] every kernel reverted to stock after the halt" in out
    assert "[ok] fleet journal records the attributed pooled-breach event" in out
    assert "[FAIL]" not in out
    assert "traffic scenario PASSED" in out
    # Both fleets journaled to real files.
    assert (tmp_path / "fleet.steady.jsonl").exists()
    assert (tmp_path / "fleet.burst.jsonl").exists()


def test_traffic_rejects_bad_duration(capsys):
    assert concordd.main(["traffic", "--duration-ms", "0"]) == 2
    assert "--duration-ms must be positive" in capsys.readouterr().err
