"""Workload harness and benchmark workloads (fast, reduced-size runs)."""

import pytest

from repro.sim import Topology
from repro.workloads import (
    HashTableBench,
    Lock2,
    MixedCSBench,
    PageFault2,
    RenameBench,
    SimHashTable,
    ascii_chart,
    format_normalized,
    format_sweep_table,
    normalized_series,
    run_throughput,
    sweep,
)

TOPO = Topology(sockets=2, cores_per_socket=4)
FAST = dict(duration_ns=400_000, warmup_ns=100_000)


class TestRunner:
    def test_run_produces_positive_throughput(self):
        result = run_throughput(Lock2("stock"), TOPO, threads=4, **FAST)
        assert result.ops > 0
        assert result.ops_per_msec > 0
        assert result.threads == 4

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            run_throughput(Lock2("stock"), TOPO, threads=100, **FAST)

    def test_sweep_collects_points(self):
        result = sweep(lambda: Lock2("stock"), TOPO, [1, 2, 4], **FAST)
        assert [p.threads for p in result.points] == [1, 2, 4]
        assert result.at(2) is not None
        assert result.at(99) is None
        assert len(result.series()) == 3

    def test_same_seed_reproducible(self):
        a = run_throughput(Lock2("stock"), TOPO, threads=4, seed=9, **FAST)
        b = run_throughput(Lock2("stock"), TOPO, threads=4, seed=9, **FAST)
        assert a.ops == b.ops

    def test_warmup_excluded_from_count(self):
        short = run_throughput(Lock2("stock"), TOPO, threads=2, duration_ns=200_000, warmup_ns=50_000)
        lng = run_throughput(Lock2("stock"), TOPO, threads=2, duration_ns=400_000, warmup_ns=50_000)
        assert lng.ops > short.ops
        # ...but rates should be comparable.
        assert lng.ops_per_msec == pytest.approx(short.ops_per_msec, rel=0.25)


class TestLock2:
    def test_all_modes_run(self):
        for mode in ("stock", "shfllock", "concord-shfllock"):
            result = run_throughput(Lock2(mode), TOPO, threads=4, **FAST)
            assert result.ops > 0, mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Lock2("nope")

    def test_concord_mode_attaches_policy(self):
        workload = Lock2("concord-shfllock")
        run_throughput(workload, TOPO, threads=4, **FAST)
        assert workload.concord is not None
        assert "lock2-numa" in workload.concord.policies

    def test_extras_report_shuffling(self):
        result = run_throughput(Lock2("shfllock"), TOPO, threads=6, **FAST)
        assert "shuffle_passes" in result.extras


class TestPageFault2:
    def test_modes_and_counters(self):
        for mode in ("stock", "bravo", "concord-bravo"):
            workload = PageFault2(mode, pages=32)
            result = run_throughput(workload, TOPO, threads=4, **FAST)
            assert result.ops > 0, mode
            assert workload.mm.faults > 0

    def test_bravo_uses_fastpath(self):
        workload = PageFault2("bravo", pages=32)
        result = run_throughput(workload, TOPO, threads=4, **FAST)
        assert result.extras["bravo_fastpath"] > 0

    def test_concord_bravo_switched_at_runtime(self):
        workload = PageFault2("concord-bravo", pages=32)
        run_throughput(workload, TOPO, threads=2, **FAST)
        from repro.locks import BravoLock

        assert isinstance(workload.mm.mmap_lock.core.impl, BravoLock)


class TestHashTable:
    def test_sim_hashtable_semantics(self):
        table = SimHashTable(buckets=8)
        table.insert(5)
        assert table.contains(5)
        assert table.size == 1
        table.insert(5)
        assert table.size == 1  # idempotent
        assert table.delete(5)
        assert not table.delete(5)
        assert table.lookup_cost(5) > 0

    def test_modes_run(self):
        for mode in ("shfllock", "concord-shfllock", "concord-nopolicy"):
            result = run_throughput(HashTableBench(mode), TOPO, threads=4, **FAST)
            assert result.ops > 0, mode

    def test_concord_overhead_visible(self):
        base = run_throughput(HashTableBench("shfllock"), TOPO, threads=4, seed=5, **FAST)
        patched = run_throughput(
            HashTableBench("concord-nopolicy"), TOPO, threads=4, seed=5, **FAST
        )
        ratio = patched.ops_per_msec / base.ops_per_msec
        assert ratio < 1.0  # patching costs something
        assert ratio > 0.6  # ...but not absurdly much


class TestRenameBench:
    def test_modes_run(self):
        for mode in ("fifo", "inheritance"):
            workload = RenameBench(mode, files=16)
            result = run_throughput(workload, TOPO, threads=4, **FAST)
            assert result.ops > 0, mode
            assert workload.vfs.renames > 0

    def test_latency_percentiles_reported(self):
        workload = RenameBench("fifo", files=16)
        result = run_throughput(workload, TOPO, threads=4, **FAST)
        assert "rename_p50_ns" in result.extras


class TestMixedCS:
    def test_hold_shares_sum_to_one(self):
        workload = MixedCSBench("fifo")
        result = run_throughput(workload, TOPO, threads=8, **FAST)
        shares = result.extras
        assert shares["hog_hold_share"] + shares["mouse_hold_share"] == pytest.approx(1.0)
        # Hogs hold the lock most of the time: the subversion premise.
        assert shares["hog_hold_share"] > 0.5

    def test_scl_mode_runs(self):
        result = run_throughput(MixedCSBench("scl"), TOPO, threads=8, **FAST)
        assert result.ops > 0


class TestReporting:
    def _two_sweeps(self):
        a = sweep(lambda: Lock2("stock"), TOPO, [1, 2], **FAST)
        b = sweep(lambda: Lock2("shfllock"), TOPO, [1, 2], **FAST)
        return a, b

    def test_sweep_table_format(self):
        a, b = self._two_sweeps()
        text = format_sweep_table([a, b], title="demo")
        assert "demo" in text and "#thread" in text
        assert "lock2[stock]" in text

    def test_normalized_format_and_series(self):
        a, b = self._two_sweeps()
        text = format_normalized(a, b)
        assert "normalized" in text
        series = normalized_series(a, b)
        assert len(series) == 2 and all(r > 0 for _n, r in series)

    def test_ascii_chart(self):
        a, b = self._two_sweeps()
        text = ascii_chart({"stock": a.series(), "shfl": b.series()}, title="t")
        assert "threads" in text and "o = " in text

    def test_empty_inputs(self):
        assert "(no data)" in format_sweep_table([])
        assert "(no data)" in ascii_chart({})
