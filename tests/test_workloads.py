"""Workload harness and benchmark workloads (fast, reduced-size runs)."""

import pytest

from repro.sim import Topology
from repro.workloads import (
    HashTableBench,
    Lock2,
    MalthusianBench,
    MixedCSBench,
    PageFault2,
    RangeLockBench,
    RenameBench,
    SimHashTable,
    knee_threads,
    ascii_chart,
    format_normalized,
    format_sweep_table,
    normalized_series,
    run_throughput,
    sweep,
)

TOPO = Topology(sockets=2, cores_per_socket=4)
FAST = dict(duration_ns=400_000, warmup_ns=100_000)


class TestRunner:
    def test_run_produces_positive_throughput(self):
        result = run_throughput(Lock2("stock"), TOPO, threads=4, **FAST)
        assert result.ops > 0
        assert result.ops_per_msec > 0
        assert result.threads == 4

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            run_throughput(Lock2("stock"), TOPO, threads=100, **FAST)

    def test_sweep_collects_points(self):
        result = sweep(lambda: Lock2("stock"), TOPO, [1, 2, 4], **FAST)
        assert [p.threads for p in result.points] == [1, 2, 4]
        assert result.at(2) is not None
        assert result.at(99) is None
        assert len(result.series()) == 3

    def test_same_seed_reproducible(self):
        a = run_throughput(Lock2("stock"), TOPO, threads=4, seed=9, **FAST)
        b = run_throughput(Lock2("stock"), TOPO, threads=4, seed=9, **FAST)
        assert a.ops == b.ops

    def test_warmup_excluded_from_count(self):
        short = run_throughput(Lock2("stock"), TOPO, threads=2, duration_ns=200_000, warmup_ns=50_000)
        lng = run_throughput(Lock2("stock"), TOPO, threads=2, duration_ns=400_000, warmup_ns=50_000)
        assert lng.ops > short.ops
        # ...but rates should be comparable.
        assert lng.ops_per_msec == pytest.approx(short.ops_per_msec, rel=0.25)


class TestLock2:
    def test_all_modes_run(self):
        for mode in ("stock", "shfllock", "concord-shfllock"):
            result = run_throughput(Lock2(mode), TOPO, threads=4, **FAST)
            assert result.ops > 0, mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Lock2("nope")

    def test_concord_mode_attaches_policy(self):
        workload = Lock2("concord-shfllock")
        run_throughput(workload, TOPO, threads=4, **FAST)
        assert workload.concord is not None
        assert "lock2-numa" in workload.concord.policies

    def test_extras_report_shuffling(self):
        result = run_throughput(Lock2("shfllock"), TOPO, threads=6, **FAST)
        assert "shuffle_passes" in result.extras


class TestPageFault2:
    def test_modes_and_counters(self):
        for mode in ("stock", "bravo", "concord-bravo"):
            workload = PageFault2(mode, pages=32)
            result = run_throughput(workload, TOPO, threads=4, **FAST)
            assert result.ops > 0, mode
            assert workload.mm.faults > 0

    def test_bravo_uses_fastpath(self):
        workload = PageFault2("bravo", pages=32)
        result = run_throughput(workload, TOPO, threads=4, **FAST)
        assert result.extras["bravo_fastpath"] > 0

    def test_concord_bravo_switched_at_runtime(self):
        workload = PageFault2("concord-bravo", pages=32)
        run_throughput(workload, TOPO, threads=2, **FAST)
        from repro.locks import BravoLock

        assert isinstance(workload.mm.mmap_lock.core.impl, BravoLock)


class TestHashTable:
    def test_sim_hashtable_semantics(self):
        table = SimHashTable(buckets=8)
        table.insert(5)
        assert table.contains(5)
        assert table.size == 1
        table.insert(5)
        assert table.size == 1  # idempotent
        assert table.delete(5)
        assert not table.delete(5)
        assert table.lookup_cost(5) > 0

    def test_modes_run(self):
        for mode in ("shfllock", "concord-shfllock", "concord-nopolicy"):
            result = run_throughput(HashTableBench(mode), TOPO, threads=4, **FAST)
            assert result.ops > 0, mode

    def test_concord_overhead_visible(self):
        base = run_throughput(HashTableBench("shfllock"), TOPO, threads=4, seed=5, **FAST)
        patched = run_throughput(
            HashTableBench("concord-nopolicy"), TOPO, threads=4, seed=5, **FAST
        )
        ratio = patched.ops_per_msec / base.ops_per_msec
        assert ratio < 1.0  # patching costs something
        assert ratio > 0.6  # ...but not absurdly much


class TestRenameBench:
    def test_modes_run(self):
        for mode in ("fifo", "inheritance"):
            workload = RenameBench(mode, files=16)
            result = run_throughput(workload, TOPO, threads=4, **FAST)
            assert result.ops > 0, mode
            assert workload.vfs.renames > 0

    def test_latency_percentiles_reported(self):
        workload = RenameBench("fifo", files=16)
        result = run_throughput(workload, TOPO, threads=4, **FAST)
        assert "rename_p50_ns" in result.extras


class TestMixedCS:
    def test_hold_shares_sum_to_one(self):
        workload = MixedCSBench("fifo")
        result = run_throughput(workload, TOPO, threads=8, **FAST)
        shares = result.extras
        assert shares["hog_hold_share"] + shares["mouse_hold_share"] == pytest.approx(1.0)
        # Hogs hold the lock most of the time: the subversion premise.
        assert shares["hog_hold_share"] > 0.5

    def test_scl_mode_runs(self):
        result = run_throughput(MixedCSBench("scl"), TOPO, threads=8, **FAST)
        assert result.ops > 0


class TestRangeLockBench:
    def test_modes_run(self):
        for mode in ("range", "global"):
            result = run_throughput(RangeLockBench(mode), TOPO, threads=4, **FAST)
            assert result.ops > 0, mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            RangeLockBench("nope")

    def test_range_mode_outscales_global_mmap_sem(self):
        # Disjoint per-worker intervals keep scaling under the range
        # lock while the whole-space semaphore serializes on writers.
        rng = run_throughput(RangeLockBench("range"), TOPO, threads=8, **FAST)
        glb = run_throughput(RangeLockBench("global"), TOPO, threads=8, **FAST)
        assert rng.ops_per_msec > 2.0 * glb.ops_per_msec

    def test_interval_conflicts_counted(self):
        result = run_throughput(RangeLockBench("range"), TOPO, threads=8, **FAST)
        extras = result.extras
        assert extras["conflicts"] > 0  # overlapping writers do collide
        assert extras["peak_concurrency"] > 1  # ...and disjoint ops overlap
        assert (
            extras["read_grants"] + extras["write_grants"]
            == extras["acquisitions"]
        )


class TestRangeLockSemantics:
    """Direct interval-conflict correctness on a bare RangeLock."""

    def _kernel(self):
        from repro.kernel.core import Kernel

        return Kernel(TOPO, seed=1)

    def test_overlapping_writer_excludes_reader(self):
        from repro.locks import RangeLock

        kernel = self._kernel()
        rlock = RangeLock(kernel.engine, name="t")
        log = []

        def writer(task):
            yield from rlock.write_acquire(task, 10, 20)
            log.append(("w-in", kernel.now))
            from repro.sim.ops import Delay

            yield Delay(5_000)
            log.append(("w-out", kernel.now))
            yield from rlock.write_release(task, 10, 20)

        def reader(task):
            yield from rlock.read_acquire(task, 15, 16)  # overlaps the writer
            log.append(("r-in", kernel.now))
            yield from rlock.read_release(task, 15, 16)

        kernel.spawn(writer, cpu=0, name="w")
        kernel.spawn(reader, cpu=1, name="r", at=500)
        kernel.run()
        times = dict(log)
        assert times["r-in"] >= times["w-out"]

    def test_disjoint_writers_overlap_in_time(self):
        from repro.locks import RangeLock
        from repro.sim.ops import Delay

        kernel = self._kernel()
        rlock = RangeLock(kernel.engine, name="t")
        spans = {}

        def writer(task, lo, hi, tag):
            yield from rlock.write_acquire(task, lo, hi)
            start = kernel.now
            yield Delay(5_000)
            spans[tag] = (start, kernel.now)
            yield from rlock.write_release(task, lo, hi)

        kernel.spawn(lambda t: writer(t, 0, 10, "a"), cpu=0, name="a")
        kernel.spawn(lambda t: writer(t, 100, 110, "b"), cpu=1, name="b")
        kernel.run()
        (a0, a1), (b0, b1) = spans["a"], spans["b"]
        assert a0 < b1 and b0 < a1  # critical sections overlapped
        assert rlock.conflicts == 0

    def test_overlap_fifo_blocks_reader_behind_queued_writer(self):
        # reader A holds [0,10); writer W queues on [0,10); reader B
        # arriving later must queue behind W (no reader barging), so
        # B enters only after W finishes.
        from repro.locks import RangeLock
        from repro.sim.ops import Delay

        kernel = self._kernel()
        rlock = RangeLock(kernel.engine, name="t")
        order = []

        def reader_a(task):
            yield from rlock.read_acquire(task, 0, 10)
            yield Delay(5_000)
            order.append("a-out")
            yield from rlock.read_release(task, 0, 10)

        def writer(task):
            yield from rlock.write_acquire(task, 0, 10)
            order.append("w-in")
            yield Delay(1_000)
            yield from rlock.write_release(task, 0, 10)

        def reader_b(task):
            yield from rlock.read_acquire(task, 0, 10)
            order.append("b-in")
            yield from rlock.read_release(task, 0, 10)

        kernel.spawn(reader_a, cpu=0, name="ra")
        kernel.spawn(writer, cpu=1, name="w", at=1_000)
        kernel.spawn(reader_b, cpu=2, name="rb", at=2_000)
        kernel.run()
        assert order == ["a-out", "w-in", "b-in"]

    def test_bad_release_raises(self):
        from repro.locks import LockError, RangeLock
        from repro.sim.errors import SimError

        kernel = self._kernel()
        rlock = RangeLock(kernel.engine, name="t")

        def body(task):
            yield from rlock.write_release(task, 0, 10)

        kernel.spawn(body, cpu=0, name="bad")
        with pytest.raises((LockError, SimError)):
            kernel.run()

    def test_empty_range_rejected(self):
        from repro.locks import LockError, RangeLock

        kernel = self._kernel()
        rlock = RangeLock(kernel.engine, name="t")

        def body(task):
            yield from rlock.read_acquire(task, 10, 10)

        kernel.spawn(body, cpu=0, name="bad")
        with pytest.raises(LockError):
            kernel.run()


class TestMalthusianBench:
    def test_knee_matches_prediction(self):
        workload = MalthusianBench()
        result = sweep(lambda: MalthusianBench(), TOPO, [1, 2, 3, 4, 5, 6, 8], **FAST)
        knee = knee_threads(result)
        assert abs(knee - workload.expected_knee()) <= 1

    def test_throughput_collapses_past_knee(self):
        result = sweep(lambda: MalthusianBench(), TOPO, [1, 2, 3, 4, 5, 6, 8], **FAST)
        peak = max(p.ops_per_msec for p in result.points)
        assert result.at(8).ops_per_msec < 0.6 * peak
        # ...while below the knee throughput still climbs.
        assert result.at(2).ops_per_msec > 1.5 * result.at(1).ops_per_msec

    def test_tail_wait_blows_up_past_knee(self):
        low = run_throughput(MalthusianBench(), TOPO, threads=2, **FAST)
        high = run_throughput(MalthusianBench(), TOPO, threads=8, **FAST)
        assert high.extras["wait_p99_ns"] > 5 * low.extras["wait_p99_ns"]

    def test_extras_report_crowd(self):
        result = run_throughput(MalthusianBench(), TOPO, threads=8, **FAST)
        assert result.extras["peak_inflight"] >= 6
        assert result.extras["expected_knee"] == MalthusianBench().expected_knee()


class TestKneeThreads:
    @staticmethod
    def _sweep(rates):
        from repro.workloads.runner import RunResult, SweepResult

        points = [
            RunResult(
                workload="synthetic",
                threads=threads,
                duration_ns=1_000_000,
                ops=int(rate * 1_000),
            )
            for threads, rate in rates
        ]
        return SweepResult(workload="synthetic", points=points)

    def test_monotone_sweep_has_no_knee(self):
        # Throughput still climbing at the last point: the sweep ended
        # before any collapse, so there is no knee to report.  (The old
        # behaviour returned the sweep boundary, which made a perfectly
        # scalable lock look collapsed at max threads.)
        result = self._sweep([(1, 100.0), (2, 180.0), (4, 320.0), (8, 500.0)])
        assert knee_threads(result) is None

    def test_collapsing_sweep_reports_interior_peak(self):
        result = self._sweep([(1, 100.0), (2, 180.0), (4, 320.0), (8, 90.0)])
        assert knee_threads(result) == 4

    def test_unsorted_points_are_sorted_before_judging(self):
        # The peak sits on the highest thread count even when the
        # caller's point order buries it mid-list: still no knee.
        result = self._sweep([(8, 500.0), (1, 100.0), (4, 320.0), (2, 180.0)])
        assert knee_threads(result) is None

    def test_empty_sweep_has_no_knee(self):
        result = self._sweep([])
        assert knee_threads(result) is None


class TestReporting:
    def _two_sweeps(self):
        a = sweep(lambda: Lock2("stock"), TOPO, [1, 2], **FAST)
        b = sweep(lambda: Lock2("shfllock"), TOPO, [1, 2], **FAST)
        return a, b

    def test_sweep_table_format(self):
        a, b = self._two_sweeps()
        text = format_sweep_table([a, b], title="demo")
        assert "demo" in text and "#thread" in text
        assert "lock2[stock]" in text

    def test_normalized_format_and_series(self):
        a, b = self._two_sweeps()
        text = format_normalized(a, b)
        assert "normalized" in text
        series = normalized_series(a, b)
        assert len(series) == 2 and all(r > 0 for _n, r in series)

    def test_ascii_chart(self):
        a, b = self._two_sweeps()
        text = ascii_chart({"stock": a.series(), "shfl": b.series()}, title="t")
        assert "threads" in text and "o = " in text

    def test_empty_inputs(self):
        assert "(no data)" in format_sweep_table([])
        assert "(no data)" in ascii_chart({})
