"""The fault-injection harness: plan semantics and wired-in sites.

Two layers under test.  First the :class:`FaultPlan` machinery itself —
rule eligibility (``times``/``after``/``probability``/``match``),
first-match-wins ordering, seeded determinism, and registry hygiene.
Second the **sites**: every ``fault_point`` wired into the pipeline must
raise the site's *natural* error type (a verifier flake really is a
``VerificationError``), so callers exercise the exact handling paths
production errors would take.
"""

import pytest

from repro.bpf.errors import RuntimeFault, VerificationError
from repro.concord import Concord
from repro.concord.bpffs import BpfIOError
from repro.concord.policy import PolicySpec
from repro.concord.profiler import ProfileSession, ProfilerStall
from repro.faults import (
    FaultError,
    FaultPlan,
    InjectedCrash,
    SITE_VERIFIER,
    active,
    fault_point,
    injected,
    install,
)
from repro.kernel import Kernel
from repro.livepatch import PatchError
from repro.locks import ShflLock
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology, ops

RETURN_ZERO = "def f(ctx):\n    return 0\n"


@pytest.fixture
def kernel():
    k = Kernel(Topology(sockets=2, cores_per_socket=4), seed=3)
    k.add_lock("a.lock", ShflLock(k.engine, name="a"))
    k.add_lock("b.lock", ShflLock(k.engine, name="b"))
    return k


class TestFaultPlan:
    def test_no_plan_is_a_noop(self):
        assert active() is None
        assert fault_point("anything.at.all") == 0

    def test_fail_rule_fires_once_by_default(self):
        plan = FaultPlan()
        plan.fail("x.y")
        with injected(plan):
            with pytest.raises(FaultError):
                fault_point("x.y")
            assert fault_point("x.y") == 0  # times=1 exhausted
        assert plan.hits["x.y"] == 2
        assert plan.fired["x.y"] == 1

    def test_default_exc_gives_site_natural_type(self):
        plan = FaultPlan()
        plan.fail("x.y")
        with injected(plan):
            with pytest.raises(VerificationError):
                fault_point("x.y", default_exc=VerificationError)

    def test_explicit_error_beats_default(self):
        plan = FaultPlan()
        plan.fail("x.y", error=KeyError)
        with injected(plan):
            with pytest.raises(KeyError):
                fault_point("x.y", default_exc=VerificationError)

    def test_after_skips_early_hits(self):
        plan = FaultPlan()
        plan.fail("x.y", after=2)
        with injected(plan):
            assert fault_point("x.y") == 0
            assert fault_point("x.y") == 0
            with pytest.raises(FaultError):
                fault_point("x.y")

    def test_times_none_is_unlimited(self):
        plan = FaultPlan()
        plan.stall("x.y", delay_ns=5, times=None)
        with injected(plan):
            for _ in range(10):
                assert fault_point("x.y") == 5
        assert plan.fired["x.y"] == 10

    def test_site_glob_and_ctx_match(self):
        plan = FaultPlan()
        plan.fail("bpf.*", match={"program": "steady*"}, times=None)
        with injected(plan):
            with pytest.raises(FaultError):
                fault_point("bpf.helper", program="steady.audit")
            assert fault_point("bpf.helper", program="doomed") == 0
            assert fault_point("concord.verifier", program="steady.audit") == 0

    def test_first_matching_rule_wins(self):
        plan = FaultPlan()
        plan.stall("x.y", delay_ns=7)
        plan.fail("x.y")
        with injected(plan):
            assert fault_point("x.y") == 7  # stall rule shadows the fail
            with pytest.raises(FaultError):
                fault_point("x.y")  # stall exhausted; fail rule next

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.stall("x.y", delay_ns=1, times=None, probability=0.5)
            with injected(plan):
                return [fault_point("x.y") for _ in range(40)]

        a, b = firing_pattern(5), firing_pattern(5)
        assert a == b
        assert firing_pattern(6) != a  # different seed, different draws
        assert 0 < sum(a) < 40

    def test_stall_and_error_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FaultPlan().fail("x", error=KeyError, delay_ns=5)

    def test_injected_restores_previous_plan_even_on_crash(self):
        outer = install(FaultPlan(name="outer"))
        inner = FaultPlan(name="inner")
        inner.crash("x.y")
        with pytest.raises(InjectedCrash):
            with injected(inner):
                fault_point("x.y")
        assert active() is outer

    def test_injected_crash_is_not_an_exception(self):
        # `except Exception` must never swallow a simulated kill -9.
        assert not issubclass(InjectedCrash, Exception)
        plan = FaultPlan()
        plan.crash("x.y")
        with injected(plan):
            with pytest.raises(InjectedCrash):
                try:
                    fault_point("x.y")
                except Exception:  # noqa: BLE001 - the point of the test
                    pytest.fail("InjectedCrash was swallowed by except Exception")

    def test_describe_reports_coverage(self):
        plan = FaultPlan(name="p")
        plan.fail("x.y")
        with injected(plan):
            with pytest.raises(FaultError):
                fault_point("x.y")
        text = plan.describe()
        assert "fired 1x at x.y" in text


class TestWiredSites:
    def test_verifier_flake_is_verification_error(self, kernel):
        concord = Concord(kernel)
        spec = PolicySpec("p", HOOK_LOCK_ACQUIRED, RETURN_ZERO)
        plan = FaultPlan()
        plan.fail(SITE_VERIFIER, times=1)
        with injected(plan):
            with pytest.raises(VerificationError, match="injected fault"):
                concord.verify_policy(spec)
            concord.verify_policy(spec)  # flake cleared; retry succeeds
        assert any(e.kind == "verify-failed" for e in concord.events)

    def test_pin_io_error_fails_load_cleanly(self, kernel):
        concord = Concord(kernel)
        spec = PolicySpec("p", HOOK_LOCK_ACQUIRED, RETURN_ZERO, lock_selector="a.lock")
        plan = FaultPlan()
        plan.fail("concord.bpffs.pin")
        with injected(plan):
            with pytest.raises(BpfIOError):
                concord.load_policy(spec)
        assert "p" not in concord.policies
        # The transient error cleared: the same spec loads fine after.
        concord.load_policy(spec)
        assert "p" in concord.policies

    def test_helper_fault_surfaces_as_runtime_fault(self, kernel):
        concord = Concord(kernel, fault_threshold=1000)
        source = "def f(ctx):\n    m.update(0, 1)\n    return 0\n"
        from repro.bpf.maps import HashMap

        spec = PolicySpec(
            "p", HOOK_LOCK_ACQUIRED, source,
            maps={"m": HashMap("m")}, lock_selector="a.lock",
        )
        concord.load_policy(spec)
        plan = FaultPlan()
        plan.fail("bpf.helper", times=None, match={"program": "p"})
        site = kernel.locks.get("a.lock")

        def worker(task):
            for _ in range(3):
                yield from site.acquire(task)
                yield ops.Delay(50)
                yield from site.release(task)

        kernel.spawn(worker, cpu=0)
        with injected(plan):
            kernel.run()
        assert plan.fired["bpf.helper"] > 0
        # The breaker absorbed the faults; the framework noticed them.
        assert any(e.kind == "policy-fault" for e in concord.events)

    def test_profiler_snapshot_stall(self, kernel):
        concord = Concord(kernel)
        session = ProfileSession(concord, ["a.lock"])
        plan = FaultPlan()
        plan.stall("concord.profiler.snapshot", delay_ns=9_000)
        with injected(plan):
            with pytest.raises(ProfilerStall, match="9000ns"):
                session.snapshot()
            session.snapshot()  # stall rule exhausted
        session.stop()

    def test_patch_enable_fault(self, kernel):
        plan = FaultPlan()
        plan.fail("livepatch.enable")
        from repro.locks import MCSLock

        with injected(plan):
            with pytest.raises(PatchError, match="injected fault"):
                kernel.patcher.switch_lock(
                    "a.lock", lambda old: MCSLock(kernel.engine)
                )
        assert not kernel.patcher.active


class TestControlPlaneSites:
    """The admission-decision and journal fault sites (wired for the
    chaos sampler: every deny/append/fsync/replay path is injectable)."""

    def _daemon(self, kernel, journal=None):
        from repro.controlplane import Concordd

        daemon = Concordd(Concord(kernel), journal=journal)
        daemon.register_client("ops", allowed_selectors=("*",))
        return daemon

    def _submission(self, name="p"):
        from repro.bpf.maps import HashMap
        from repro.controlplane import PolicySubmission

        return PolicySubmission(
            spec=PolicySpec(
                name,
                HOOK_LOCK_ACQUIRED,
                RETURN_ZERO,
                maps={},
                lock_selector="a.lock",
            )
        )

    def test_admission_decision_fault_rejects_submission(self, kernel):
        from repro.controlplane import AdmissionError, PolicyState

        daemon = self._daemon(kernel)
        plan = FaultPlan()
        plan.fail("controlplane.admission.decision", times=1)
        with injected(plan):
            with pytest.raises(AdmissionError, match="injected fault"):
                daemon.submit("ops", self._submission())
            # The denial is audited like any other: REJECTED, terminal,
            # name immediately reusable.
            assert daemon.records["p"].state is PolicyState.REJECTED
            record = daemon.submit("ops", self._submission())
        assert record.state is PolicyState.VERIFIED

    def test_admission_fault_can_target_one_client(self, kernel):
        from repro.controlplane import AdmissionError

        daemon = self._daemon(kernel)
        daemon.register_client("other", allowed_selectors=("*",))
        plan = FaultPlan()
        plan.fail("controlplane.admission.decision", match={"client": "ops"})
        with injected(plan):
            with pytest.raises(AdmissionError):
                daemon.submit("ops", self._submission("mine"))
            record = daemon.submit("other", self._submission("theirs"))
        assert record is not None

    def test_journal_append_fault_leaves_no_half_record(self, kernel):
        from repro.controlplane import JournalError, PolicyJournal

        daemon = self._daemon(kernel, journal=PolicyJournal())
        plan = FaultPlan()
        plan.fail("controlplane.journal.append", times=1)
        with injected(plan):
            with pytest.raises(JournalError, match="injected fault"):
                daemon.submit("ops", self._submission())
            # Nothing journaled, nothing recorded: the name is free and
            # a retry succeeds outright.
            assert "p" not in daemon.records
            record = daemon.submit("ops", self._submission())
        assert record.state.name == "VERIFIED"

    def test_journal_fsync_fault_surfaces_after_write(self, tmp_path, kernel):
        from repro.controlplane import JournalError, PolicyJournal

        journal = PolicyJournal(str(tmp_path / "j.jsonl"))
        plan = FaultPlan()
        plan.fail("controlplane.journal.fsync", times=1)
        with injected(plan):
            with pytest.raises(JournalError, match="injected fault"):
                journal.append({"kind": "client", "client": "x"})
        # The fsync gap: the line was written before the sync failed,
        # so a reader sees the entry the writer thinks was lost.
        assert len(journal.entries()) == 1

    def test_journal_replay_fault_fails_recovery_loudly(self, kernel):
        from repro.controlplane import JournalError, PolicyJournal

        journal = PolicyJournal()
        daemon = self._daemon(kernel, journal=journal)
        daemon.submit("ops", self._submission())

        from repro.controlplane import Concordd

        fresh = Concordd(Concord(kernel), journal=journal)
        plan = FaultPlan()
        plan.fail("controlplane.journal.replay", times=1)
        with injected(plan):
            with pytest.raises(JournalError, match="injected fault"):
                fresh.recover()
            # The flake cleared; the same daemon can retry.
            assert not fresh.records
