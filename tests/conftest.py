"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import faults
from repro.sim import Engine, Topology, ops


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        action="append",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "Seed(s) for the randomized fault plans in the chaos tests "
            "(repeatable). Without the flag the chaos tests run on a "
            "small fixed seed set, so they stay deterministic in the "
            "default suite; CI passes fresh seeds per job."
        ),
    )


#: The always-on seeds: any plan these sample must be survivable, and
#: regressions against them reproduce locally with no flags.
DEFAULT_CHAOS_SEEDS = (3, 11)


def pytest_generate_tests(metafunc):
    if "chaos_seed" in metafunc.fixturenames:
        seeds = metafunc.config.getoption("--chaos-seed") or list(DEFAULT_CHAOS_SEEDS)
        metafunc.parametrize("chaos_seed", seeds, ids=[f"seed{s}" for s in seeds])


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that installs a FaultPlan (rather than using the
    ``injected`` context manager) must not poison its neighbours."""
    yield
    faults.clear()


@pytest.fixture
def topo():
    """A small 4-socket machine: big enough for NUMA effects, fast tests."""
    return Topology(sockets=4, cores_per_socket=4)


@pytest.fixture
def topo2():
    return Topology(sockets=2, cores_per_socket=2)


@pytest.fixture
def engine(topo):
    return Engine(topo, seed=1)


def run_counter_workers(engine, lock, n_tasks, iters, cs_ns=80, think_ns=50, rw=False):
    """Spawn workers incrementing a shared counter under ``lock``.

    Returns the shared cell; the caller asserts the final count.  The
    load/store around the delay makes lost updates detectable, so this
    doubles as a mutual-exclusion check.
    """
    shared = engine.cell(0, name="shared")

    def worker(task):
        for _ in range(iters):
            if rw:
                yield from lock.write_acquire(task)
            else:
                yield from lock.acquire(task)
            value = yield ops.Load(shared)
            yield ops.Delay(cs_ns)
            yield ops.Store(shared, value + 1)
            if rw:
                yield from lock.write_release(task)
            else:
                yield from lock.release(task)
            yield ops.Delay(think_ns)

    for index in range(n_tasks):
        engine.spawn(worker, cpu=index % engine.topology.nr_cpus, name=f"w{index}")
    engine.run()
    return shared
