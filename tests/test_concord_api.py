"""The Table 1 hook API layer: layouts, packers, adapter plumbing."""

import pytest

from repro.bpf import VM, compile_policy
from repro.concord.api import (
    CMP_NODE_LAYOUT,
    EVENT_IDS,
    LAYOUT_FOR_HOOK,
    LOCK_EVENT_LAYOUT,
    SCHEDULE_WAITER_LAYOUT,
    SKIP_SHUFFLE_LAYOUT,
    make_hook_fn,
)
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import ALL_HOOKS, HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED
from repro.locks.shfllock import ShflNode
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    return Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)


class TestLayouts:
    def test_every_hook_has_a_layout(self):
        assert set(LAYOUT_FOR_HOOK) == set(ALL_HOOKS)

    def test_layout_offsets_are_dense(self):
        for layout in (CMP_NODE_LAYOUT, SKIP_SHUFFLE_LAYOUT,
                       SCHEDULE_WAITER_LAYOUT, LOCK_EVENT_LAYOUT):
            for index, field in enumerate(layout.fields):
                assert layout.offset_of(field) == index * 8
            assert layout.size == len(layout.fields) * 8

    def test_pack_defaults_missing_to_zero(self):
        values = CMP_NODE_LAYOUT.pack({"curr_tid": 9})
        assert values[CMP_NODE_LAYOUT.fields.index("curr_tid")] == 9
        assert sum(values) == 9

    def test_event_ids_cover_profiling_hooks(self):
        assert sorted(EVENT_IDS.values()) == [0, 1, 2, 3]


class TestHookFn:
    def _program(self, source, hook):
        return compile_policy(source, LAYOUT_FOR_HOOK[hook])

    def test_layout_mismatch_rejected(self):
        program = self._program("def f(ctx):\n    return 0\n", HOOK_CMP_NODE)
        with pytest.raises(ValueError, match="layout"):
            make_hook_fn(HOOK_LOCK_ACQUIRED, program, VM(), lambda lock: 1)

    def test_cmp_node_env_packed_from_nodes(self, kernel):
        """The program must see the actual node metadata."""
        program = self._program(
            "def f(ctx):\n    return ctx.curr_socket * 100 + ctx.shuffler_socket\n",
            HOOK_CMP_NODE,
        )
        fn = make_hook_fn(HOOK_CMP_NODE, program, VM(), lambda lock: 1)
        lock = ShflLock(kernel.engine, name="x")
        result = {}

        def driver(task_a_cpu, task_b_cpu):
            def body(task):
                yield ops.Delay(1)

            t_shuffler = kernel.spawn(body, cpu=task_a_cpu)
            t_curr = kernel.spawn(body, cpu=task_b_cpu)
            def run(task):
                yield ops.Delay(1)
                shuffler = ShflNode(kernel.engine, t_shuffler)
                curr = ShflNode(kernel.engine, t_curr)
                value, cost = fn(
                    {"task": task, "lock": lock, "shuffler_node": shuffler,
                     "curr_node": curr}
                )
                result["value"] = value
                result["cost"] = cost

            kernel.spawn(run, cpu=0)
            kernel.run()

        driver(0, 5)  # sockets 0 and 1
        assert result["value"] == 100 * 1 + 0
        assert result["cost"] > 0

    def test_wait_time_computed_from_enqueue(self, kernel):
        program = self._program("def f(ctx):\n    return ctx.curr_wait_ns\n", HOOK_CMP_NODE)
        fn = make_hook_fn(HOOK_CMP_NODE, program, VM(), lambda lock: 1)
        lock = ShflLock(kernel.engine, name="x")
        result = {}

        def run(task):
            node = ShflNode(kernel.engine, task)  # enqueue_time = now
            yield ops.Delay(5_000)
            value, _cost = fn(
                {"task": task, "lock": lock, "shuffler_node": node, "curr_node": node}
            )
            result["wait"] = value

        kernel.spawn(run, cpu=0)
        kernel.run()
        assert result["wait"] == 5_000

    def test_lock_event_packer_includes_event_id(self, kernel):
        program = self._program("def f(ctx):\n    return ctx.event\n", HOOK_LOCK_ACQUIRED)
        fn = make_hook_fn(HOOK_LOCK_ACQUIRED, program, VM(), lambda lock: 1)
        lock = ShflLock(kernel.engine, name="x")
        result = {}

        def run(task):
            yield ops.Delay(1)
            value, _ = fn({"task": task, "lock": lock})
            result["event"] = value

        kernel.spawn(run, cpu=0)
        kernel.run()
        assert result["event"] == EVENT_IDS[HOOK_LOCK_ACQUIRED]

    def test_lock_id_resolver_used(self, kernel):
        program = self._program("def f(ctx):\n    return ctx.lock_id\n", HOOK_LOCK_ACQUIRED)
        fn = make_hook_fn(HOOK_LOCK_ACQUIRED, program, VM(), lambda lock: 777)
        lock = ShflLock(kernel.engine, name="x")
        result = {}

        def run(task):
            yield ops.Delay(1)
            value, _ = fn({"task": task, "lock": lock})
            result["lock_id"] = value

        kernel.spawn(run, cpu=0)
        kernel.run()
        assert result["lock_id"] == 777

    def test_boost_tag_propagates(self, kernel):
        program = self._program("def f(ctx):\n    return ctx.curr_boost\n", HOOK_CMP_NODE)
        fn = make_hook_fn(HOOK_CMP_NODE, program, VM(), lambda lock: 1)
        lock = ShflLock(kernel.engine, name="x")
        result = {}

        def run(task):
            yield ops.Delay(1)
            task.tags["boost"] = 3
            node = ShflNode(kernel.engine, task)
            value, _ = fn(
                {"task": task, "lock": lock, "shuffler_node": node, "curr_node": node}
            )
            result["boost"] = value

        kernel.spawn(run, cpu=0)
        kernel.run()
        assert result["boost"] == 3
