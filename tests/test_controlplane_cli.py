"""The ``concordd`` CLI scenario — the PR's end-to-end acceptance run."""

import pytest

from repro.tools import concordd


def test_rollout_scenario_passes(capsys):
    # Smaller than the CLI defaults but the same calibrated shape:
    # exit 0 means bad-numa ROLLED_BACK, numa-good ACTIVE, no stalls.
    code = concordd.main(
        [
            "rollout",
            "--locks",
            "2",
            "--tasks-per-lock",
            "4",
            "--duration-ms",
            "2",
            "--audit",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "bad policy  : ROLLED_BACK" in out
    assert "good policy : ACTIVE" in out
    assert "0 stalled" in out
    # --audit prints the full transition history.
    assert "SUBMITTED" in out and "ROLLED_BACK" in out


def test_drill_scenario_passes(capsys, tmp_path):
    # The crash-recovery drill: kill mid-canary under an adversarial
    # fault plan, restart over the journal, recover, then trip the
    # circuit breaker.  Exit 0 means every drill check held.
    journal = str(tmp_path / "journal.jsonl")
    code = concordd.main(
        [
            "drill",
            "--duration-ms",
            "2",
            "--journal",
            journal,
            "--audit",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "drill passed" in out
    assert "[FAIL]" not in out
    # The journal the drill recovered from is on disk and readable.
    from repro.controlplane import PolicyJournal

    states = [
        e["to"]
        for e in PolicyJournal(journal).entries()
        if e.get("kind") == "transition" and e["policy"] == "steady"
    ]
    assert states[-1] == "ROLLED_BACK"  # the fail-open ending
    assert "ACTIVE" in states


def test_adapt_scenario_passes(capsys, tmp_path):
    # The adaptive overload defense acceptance run, all three phases:
    # fleet-wide detect on pooled evidence -> kept cull, crash at the
    # propose checkpoint -> recovery resolves and re-proposes, and an
    # over-aggressive cap tripping the fairness guard -> rolled back.
    code = concordd.main(
        ["adapt", "--journal-dir", str(tmp_path), "--audit"]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "adapt scenario PASSED" in out
    assert "[FAIL]" not in out
    assert "collapse-detected" in out  # --audit prints the decision log
    # The fleet journal on disk carries the judged adaptation history.
    from repro.controlplane import PolicyJournal

    events = [
        e["event"]
        for e in PolicyJournal(str(tmp_path / "adapt.fleet.jsonl")).entries()
        if e.get("kind") == "adaptation"
    ]
    assert events == ["collapse-detected", "cull-proposed", "cull-kept"]


def test_rejects_nonpositive_duration(capsys):
    assert concordd.main(["rollout", "--duration-ms", "0"]) == 2
    assert "must be positive" in capsys.readouterr().err


def test_requires_a_scenario():
    with pytest.raises(SystemExit):
        concordd.main([])


def test_bad_numa_submission_is_a_two_spec_bundle():
    sub = concordd.bad_numa_submission("svc.*.lock")
    assert [s.hook for s in sub.specs] == ["cmp_node", "lock_acquired"]
    assert sub.name == "bad-numa"
    assert {s.lock_selector for s in sub.specs} == {"svc.*.lock"}
