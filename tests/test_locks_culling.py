"""CullingLock: concurrency-capped mutual exclusion with LIFO parking."""

import pytest

from repro.locks import CullingLock, MCSLock
from repro.sim import Engine, Topology, ops
from tests.conftest import run_counter_workers


def _engine(seed=3):
    return Engine(Topology(sockets=2, cores_per_socket=4), seed=seed)


class TestMutualExclusion:
    @pytest.mark.parametrize("cap", [1, 2, 4])
    def test_counter_not_lost_under_any_cap(self, cap):
        eng = _engine()
        lock = CullingLock(eng, name="cull", cap=cap)
        shared = run_counter_workers(eng, lock, n_tasks=10, iters=40)
        assert shared.peek() == 400

    def test_single_thread_uncontended(self):
        eng = _engine(seed=1)
        lock = CullingLock(eng, cap=2)
        shared = run_counter_workers(eng, lock, n_tasks=1, iters=20)
        assert shared.peek() == 20

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            CullingLock(_engine(), cap=0)


class TestAdmissionCap:
    def test_active_set_never_exceeds_cap(self):
        eng = _engine(seed=7)
        lock = CullingLock(eng, name="cull", cap=2)
        peak = {"active": 0}

        def worker(task):
            for _ in range(25):
                yield from lock.acquire(task)
                peak["active"] = max(peak["active"], lock._active)
                yield ops.Delay(80)
                yield from lock.release(task)
                yield ops.Delay(40)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu, name=f"w{cpu}")
        eng.run()
        assert peak["active"] <= 2

    def test_excess_waiters_are_culled_and_revived(self):
        eng = _engine(seed=11)
        lock = CullingLock(eng, name="cull", cap=2)

        def worker(task):
            for _ in range(20):
                yield from lock.acquire(task)
                yield ops.Delay(100)
                yield from lock.release(task)
                yield ops.Delay(50)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu, name=f"w{cpu}")
        eng.run()
        # 8 contenders over a cap of 2: the passive stack actually ran.
        assert lock.cull_count > 0
        assert lock.revive_count > 0
        # Everyone drained: nobody left parked or in wake transit.
        assert lock.parked_count == 0

    def test_parked_count_tracks_culled_and_transit(self):
        eng = _engine(seed=5)
        lock = CullingLock(eng, name="cull", cap=1)
        seen = {"max_parked": 0}

        def worker(task):
            for _ in range(10):
                yield from lock.acquire(task)
                seen["max_parked"] = max(seen["max_parked"], lock.parked_count)
                yield ops.Delay(200)
                yield from lock.release(task)
                yield ops.Delay(20)

        for cpu in range(6):
            eng.spawn(worker, cpu=cpu, name=f"w{cpu}")
        eng.run()
        # With 6 contenders and cap 1, the holder should observe most
        # of the crowd descheduled (parked or in wake transit).
        assert seen["max_parked"] >= 3
        assert lock.parked_count == 0


class TestLifoRevival:
    def test_most_recently_parked_revives_first(self):
        eng = _engine(seed=9)
        lock = CullingLock(eng, name="cull", cap=1)
        acquire_order = []

        def holder(task):
            yield from lock.acquire(task)
            acquire_order.append(task.name)
            # Hold long enough for all the others to park, in order.
            yield ops.Delay(5_000)
            yield from lock.release(task)

        def waiter(task, delay):
            yield ops.Delay(delay)
            yield from lock.acquire(task)
            acquire_order.append(task.name)
            yield ops.Delay(10)
            yield from lock.release(task)

        eng.spawn(holder, cpu=0, name="holder")
        for i in range(4):
            eng.spawn(
                lambda t, d=(i + 1) * 200: waiter(t, d), cpu=i + 1, name=f"p{i}"
            )
        eng.run()
        assert acquire_order[0] == "holder"
        # p3 parked last (largest arrival delay) -> revived first.
        assert acquire_order[1] == "p3"
        # The earliest-parked waiter surfaces last: LIFO trades
        # fairness for cache warmth by design.
        assert acquire_order[-1] == "p0"


class TestTryAcquire:
    def test_try_acquire_fails_at_cap(self):
        eng = _engine(seed=13)
        lock = CullingLock(eng, name="cull", cap=1)
        results = {}

        def holder(task):
            yield from lock.acquire(task)
            yield ops.Delay(1_000)
            yield from lock.release(task)

        def prober(task):
            yield ops.Delay(100)  # while the holder is inside
            got = yield from lock.try_acquire(task)
            results["got"] = got
            if got:
                yield from lock.release(task)

        eng.spawn(holder, cpu=0, name="holder")
        eng.spawn(prober, cpu=1, name="prober")
        eng.run()
        assert results["got"] is False

    def test_try_acquire_succeeds_uncontended(self):
        eng = _engine(seed=13)
        lock = CullingLock(eng, name="cull", cap=2)
        results = {}

        def prober(task):
            got = yield from lock.try_acquire(task)
            results["got"] = got
            if got:
                yield ops.Delay(10)
                yield from lock.release(task)

        eng.spawn(prober, cpu=0, name="prober")
        eng.run()
        assert results["got"] is True


class TestLivepatchShape:
    def test_factory_swap_matches_switchable_contract(self):
        # The adaptation loop installs CullingLock via the livepatch
        # impl-switch path: the factory receives the old impl and must
        # build from its engine and name.
        eng = _engine(seed=1)
        old = MCSLock(eng, name="bench.hot")
        new = CullingLock(old.engine, name=old.name, cap=2)
        assert new.name == "bench.hot"
        assert new.cap == 2
        assert new.parked_count == 0
