"""Wave execution, fleet verdicts, and halt-and-revert.

The scenarios all follow the same shape: a three-kernel fleet under
shard load, a learned placement map, a plan, then ``execute`` with a
good or bad policy.  What varies is the verdict mode and which kernels
breach.
"""

import pytest

from repro.controlplane import PolicyJournal, PolicyState, SLOGuard, WaveDriftGuard
from repro.fleet import (
    FleetCoordinator,
    FleetManager,
    FleetPlan,
    FleetRolloutState,
    FleetVerdict,
    PlacementRefresher,
    RolloutPlanner,
)

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    bad_factory,
    good_factory,
    learn,
    three_kernel_fleet,
)

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)


def fleet_stock(fleet, policy):
    """True iff no kernel still runs ``policy`` (uniformly stock)."""
    for member in fleet.members():
        record = member.daemon.records.get(policy)
        if record is not None and record.live:
            return False
        assert policy not in member.concord.policies
    return True


def fleet_active(fleet, policy):
    return all(
        member.daemon.records[policy].state is PolicyState.ACTIVE
        for member in fleet.members()
    )


def test_good_policy_goes_fleet_wide():
    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    assert len(plan.waves) == 2
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.completed_waves == [0, 1]
    assert rollout.active_kernels() == ["k0", "k1", "k2"]
    assert fleet_active(fleet, "numa-good")
    events = [e["event"] for e in journal.entries() if e.get("kind") == "fleet"]
    assert events[0] == "plan"
    assert events[-1] == "complete"
    assert events.count("wave-start") == 2 and events.count("wave-done") == 2


def test_canary_kernel_uses_planned_lock_subset():
    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet)
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    for member in fleet.members():
        record = member.daemon.records["numa-good"]
        assert record.canary_locks == plan.canary_locks[member.name]


def test_bad_policy_halts_fleet_and_reverts_patched_kernels():
    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("bad-numa", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    rollout = coord.execute(plan, bad_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.halt_cause and "FAIL" in rollout.halt_cause
    assert fleet_stock(fleet, "bad-numa")
    # The halt entry lands before any revert entry: crash-ordering that
    # guarantees recovery can only ever see "unwind", never "resume".
    events = [e["event"] for e in journal.entries() if e.get("kind") == "fleet"]
    assert "halt" in events
    assert all(
        events.index("halt") < i
        for i, event in enumerate(events)
        if event == "revert"
    )
    assert "complete" not in events


def test_any_breach_halts_on_single_bad_kernel():
    # k1's guard forbids any regression at all, so only k1 breaches the
    # good policy; any-breach still takes the whole fleet to stock.
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=2)
    add_member(
        fleet, "k1", locks=3, seed=12, tasks_per_lock=3,
        guard=SLOGuard(max_avg_wait_regression=-0.999),
    )
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet)
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.outcomes["k1"] == "ROLLED_BACK"
    assert fleet_stock(fleet, "numa-good")


def test_quorum_mode_tolerates_minority_breach():
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=2)
    add_member(
        fleet, "k1", locks=3, seed=12, tasks_per_lock=3,
        guard=SLOGuard(max_avg_wait_regression=-0.999),
    )
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4)
    planner = RolloutPlanner(verdict_mode="quorum", quorum=0.5, **PLANNER)
    plan = planner.plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet)
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    # k1 rolled itself back (its own guard did its job) but the fleet
    # met quorum, so the other kernels keep the policy.
    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.outcomes["k1"] == "ROLLED_BACK"
    assert sorted(rollout.active_kernels()) == ["k0", "k2"]
    record = fleet.member("k1").daemon.records["numa-good"]
    assert record.state is PolicyState.ROLLED_BACK


def test_verdict_math():
    v = FleetVerdict("any-breach", 1.0, passed=["a", "b"], breached=[])
    assert v.ok
    v = FleetVerdict("any-breach", 1.0, passed=["a", "b"], breached=["c"])
    assert not v.ok
    v = FleetVerdict("quorum", 0.5, passed=["a"], breached=["b", "c"])
    assert not v.ok  # ceil(0.5 * 3) = 2 > 1
    v = FleetVerdict("quorum", 0.5, passed=["a", "b"], breached=["c"])
    assert v.ok
    assert "FAIL" in FleetVerdict("any-breach", 1.0, [], ["x"]).describe()


def test_journal_failures_do_not_block_execution():
    from repro.faults import FaultPlan, injected

    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    fault = FaultPlan(seed=1)
    # Member daemons have no journals here, so every append is the
    # fleet journal's.  All of them fail except the first (the plan
    # anchor, which is write-or-abort by design): wave and completion
    # entries are best-effort and must not block the rollout.
    fault.fail("controlplane.journal.append", after=1)
    with injected(fault):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    assert fleet_active(fleet, "numa-good")
    assert fault.fired["controlplane.journal.append"] > 0


def test_unjournalable_plan_refuses_to_start():
    from repro.controlplane import JournalError
    from repro.faults import FaultPlan, injected

    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    fault = FaultPlan(seed=1)
    fault.fail("controlplane.journal.append", times=None)  # persistent
    # Losing the plan anchor would make any later crash unrecoverable
    # (patched kernels with no journaled rollout), so once the bounded
    # retries are exhausted the coordinator aborts before touching a
    # single kernel.
    with injected(fault):
        with pytest.raises(JournalError):
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert fault.fired["controlplane.journal.append"] == coord.plan_append_retries
    assert fleet_stock(fleet, "numa-good")


def test_transient_plan_append_fault_is_retried():
    from repro.faults import FaultPlan, injected

    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    fault = FaultPlan(seed=1)
    fault.fail("controlplane.journal.append", times=1)
    # One fsync flake must not kill an otherwise healthy rollout: the
    # anchor write retries with backoff and the rollout proceeds.
    with injected(fault):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    assert fleet_active(fleet, "numa-good")


def test_wave_drift_guard_halts_slow_cross_wave_regression():
    # k0 (quiet, wave 0) anchors the rollout's tail; the busy k1/k2
    # cohort lands far above it, so a tight drift budget halts the
    # fleet even though every kernel passes its own canary check.
    fleet = three_kernel_fleet()
    planner = RolloutPlanner(canary_fraction=1.0, **PLANNER)
    plan = planner.plan("numa-good", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(
        fleet,
        journal=journal,
        wave_drift_guard=WaveDriftGuard(max_tail_drift=0.5),
    )
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.wave_anchor_report is not None
    assert fleet_stock(fleet, "numa-good")
    entries = [e for e in journal.entries() if e.get("kind") == "fleet"]
    drifts = [e for e in entries if e["event"] == "wave-drift-breach"]
    assert drifts and all(e["metric"] == "p99_wait_drift_ns" for e in drifts)
    assert all(e["wave"] == 1 and e["observed"] > e["baseline"] for e in drifts)
    events = [e["event"] for e in entries]
    assert "halt" in events and "complete" not in events


def test_loose_wave_drift_budget_lets_the_fleet_complete():
    fleet = three_kernel_fleet()
    planner = RolloutPlanner(canary_fraction=1.0, **PLANNER)
    plan = planner.plan("numa-good", learn(fleet))
    coord = FleetCoordinator(
        fleet, wave_drift_guard=WaveDriftGuard(max_tail_drift=1_000.0)
    )
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    assert fleet_active(fleet, "numa-good")


def test_refresher_replans_the_tail_mid_rollout():
    fleet = three_kernel_fleet()
    current = learn(fleet)
    planner = RolloutPlanner(**PLANNER)
    plan = planner.plan("numa-good", current)
    # adopt_above=0 adopts on the first wave boundary regardless of how
    # little the steady fleet actually drifted.
    refresher = PlacementRefresher(
        fleet, "svc.*.lock", current,
        window_ns=150_000, adopt_above=0.0, settle_below=0.0,
    )
    journal = PolicyJournal()
    coord = FleetCoordinator(
        fleet, journal=journal, refresher=refresher, planner=planner
    )
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.COMPLETE
    assert refresher.adoptions == 1
    assert fleet_active(fleet, "numa-good")
    entries = [e for e in journal.entries() if e.get("kind") == "fleet"]
    replans = [e for e in entries if e["event"] == "replan"]
    assert len(replans) == 1 and replans[0]["after_wave"] == 0
    assert replans[0]["drift"] == refresher.last_drift
    # The journaled replan is a full recovery anchor: it deserializes to
    # the plan the rollout actually finished on, canary wave preserved.
    replanned = FleetPlan.deserialize(replans[0]["plan"])
    assert replanned.serialize() == rollout.plan.serialize()
    assert replanned.waves[0].canary and replanned.waves[0].kernels == ["k0"]
    assert sorted(replanned.kernels()) == ["k0", "k1", "k2"]
