"""Userspace lock control (§6): interposition vs dynamic retuning."""

import pytest

from repro.concord import Concord, LockProfiler
from repro.concord.policies import make_numa_policy
from repro.kernel import Kernel
from repro.locks import ShflLock, TicketLock
from repro.sim import Topology, ops
from repro.userspace import InterpositionError, UserspaceRuntime


@pytest.fixture
def kernel():
    return Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)


@pytest.fixture
def runtime(kernel):
    return UserspaceRuntime(kernel, app_name="db")


class TestLifecycle:
    def test_create_and_lookup(self, runtime):
        site = runtime.create_lock("cache")
        assert runtime.lock("cache") is site
        assert "user.db.cache" in runtime.kernel.locks

    def test_duplicate_rejected(self, runtime):
        runtime.create_lock("cache")
        with pytest.raises(Exception):
            runtime.create_lock("cache")

    def test_missing_lock(self, runtime):
        with pytest.raises(Exception):
            runtime.lock("ghost")


class TestInterpositionVsRetune:
    def test_interpose_before_start_ok(self, runtime, kernel):
        runtime.create_lock("cache")
        runtime.interpose("cache", lambda old: TicketLock(kernel.engine))
        assert isinstance(runtime.lock("cache").core.impl, TicketLock)

    def test_interpose_after_start_raises(self, runtime, kernel):
        site = runtime.create_lock("cache")

        def worker(task):
            yield from site.acquire(task)
            yield ops.Delay(100)
            yield from site.release(task)

        runtime.spawn(worker, cpu=0)
        with pytest.raises(InterpositionError):
            runtime.interpose("cache", lambda old: TicketLock(kernel.engine))

    def test_retune_works_while_running(self, runtime, kernel):
        site = runtime.create_lock("cache")
        shared = kernel.engine.cell(0)

        def worker(task):
            for _ in range(40):
                yield from site.acquire(task)
                value = yield ops.Load(shared)
                yield ops.Delay(80)
                yield ops.Store(shared, value + 1)
                yield from site.release(task)
                yield ops.Delay(50)

        for cpu in range(4):
            runtime.spawn(worker, cpu=cpu)
        kernel.engine.call_at(
            15_000,
            lambda: runtime.retune("cache", lambda old: TicketLock(kernel.engine)),
        )
        kernel.run()
        assert shared.peek() == 160
        assert isinstance(site.core.impl, TicketLock)


class TestConcordOnUserspaceLocks:
    def test_same_concord_tunes_app_locks(self, runtime, kernel):
        runtime.create_lock("cache", ShflLock(kernel.engine, name="db.cache"))
        concord = Concord(kernel)
        loaded = concord.load_policy(make_numa_policy(lock_selector="user.db.*"))
        assert loaded.attached_locks == ["user.db.cache"]

    def test_profiler_covers_app_locks(self, runtime, kernel):
        site = runtime.create_lock("cache")
        concord = Concord(kernel)
        session = LockProfiler(concord).start("user.db.cache")

        def worker(task):
            for _ in range(10):
                yield from site.acquire(task)
                yield ops.Delay(200)
                yield from site.release(task)

        runtime.spawn(worker, cpu=0)
        kernel.run()
        report = session.stop()
        assert report.by_name("user.db.cache").acquired == 10
