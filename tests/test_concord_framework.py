"""The Concord framework: Figure 1's workflow and its failure modes."""

import pytest

from repro.bpf.errors import BPFError, VerificationError
from repro.concord import Concord, PolicyConflictError, PolicySpec
from repro.concord.policies import make_numa_policy
from repro.kernel import Kernel
from repro.locks import MCSLock, NumaPolicy, ShflLock
from repro.locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRED
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    k = Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)
    k.add_lock("a.lock", ShflLock(k.engine, name="a"))
    k.add_lock("b.lock", ShflLock(k.engine, name="b"))
    return k


@pytest.fixture
def concord(kernel):
    return Concord(kernel)


class TestLoadWorkflow:
    def test_successful_load_walks_all_steps(self, concord):
        loaded = concord.load_policy(make_numa_policy(lock_selector="a.lock"))
        # step 2+3: verified
        assert loaded.program.verified
        assert loaded.verdict.checks
        # step 4: notify
        kinds = [e.kind for e in concord.events]
        assert "verified" in kinds and "attached" in kinds
        # step 5: pinned in bpffs
        assert concord.bpffs.get(loaded.pinned_path) is loaded.program
        # step 6: hooks live on the lock
        site = concord.kernel.locks.get("a.lock")
        assert site.core.impl.hooks is not None
        assert HOOK_CMP_NODE in site.core.impl.hooks

    def test_selector_targets_multiple_locks(self, concord):
        loaded = concord.load_policy(make_numa_policy(lock_selector="*"))
        assert sorted(loaded.attached_locks) == ["a.lock", "b.lock"]

    def test_empty_selector_rejected(self, concord):
        with pytest.raises(BPFError, match="matches no"):
            concord.load_policy(make_numa_policy(lock_selector="zzz.*"))

    def test_duplicate_name_rejected(self, concord):
        concord.load_policy(make_numa_policy(lock_selector="a.lock", name="p"))
        with pytest.raises(BPFError, match="already loaded"):
            concord.load_policy(make_numa_policy(lock_selector="b.lock", name="p"))

    def test_rejection_is_notified(self, concord):
        bad = PolicySpec(
            name="bad",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return ctx.nonexistent_field\n",
            lock_selector="a.lock",
        )
        with pytest.raises(BPFError):
            concord.load_policy(bad)
        assert any(e.kind == "verify-failed" for e in concord.events)

    def test_decision_hook_rejects_map_writes(self, concord):
        """Lock-safety layer: no map mutation on the spin path."""
        from repro.bpf.maps import HashMap

        bad = PolicySpec(
            name="writer",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    m.update(1, 2)\n    return 0\n",
            maps={"m": HashMap("m")},
            lock_selector="a.lock",
        )
        with pytest.raises(VerificationError, match="not allowed"):
            concord.load_policy(bad)

    def test_profiling_hook_allows_map_writes(self, concord):
        from repro.bpf.maps import HashMap

        spec = PolicySpec(
            name="meter",
            hook=HOOK_LOCK_ACQUIRED,
            source="def f(ctx):\n    m.add(ctx.lock_id, 1)\n    return 0\n",
            maps={"m": HashMap("m")},
            lock_selector="a.lock",
        )
        concord.load_policy(spec)


class TestUnload:
    def test_unload_detaches_and_unpins(self, concord):
        loaded = concord.load_policy(make_numa_policy(lock_selector="a.lock"))
        concord.unload_policy(loaded.name)
        site = concord.kernel.locks.get("a.lock")
        assert site.core.impl.hooks is None
        assert len(concord.bpffs) == 0

    def test_unload_is_idempotent(self, concord):
        # Unknown / already-unloaded policies are a recorded no-op, not
        # an error — the control plane retries rollbacks safely.
        assert concord.unload_policy("ghost") is None
        loaded = concord.load_policy(make_numa_policy(lock_selector="a.lock"))
        assert concord.unload_policy(loaded.name) is loaded
        assert concord.unload_policy(loaded.name) is None
        assert len(concord.bpffs) == 0

    def test_partial_unload_keeps_other_chain(self, concord):
        concord.load_policy(make_numa_policy(lock_selector="a.lock", name="one"))
        spec = PolicySpec(
            name="two",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return 0\n",
            lock_selector="a.lock",
        )
        concord.load_policy(spec)
        concord.unload_policy("one")
        site = concord.kernel.locks.get("a.lock")
        assert HOOK_CMP_NODE in site.core.impl.hooks


class TestComposition:
    def test_chained_policies_or_combine(self, concord, kernel):
        always_no = PolicySpec(
            name="no",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return 0\n",
            lock_selector="a.lock",
        )
        always_yes = PolicySpec(
            name="yes",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return 1\n",
            lock_selector="a.lock",
        )
        concord.load_policy(always_no)
        concord.load_policy(always_yes)
        site = kernel.locks.get("a.lock")
        fn = site.core.impl.hooks.programs[HOOK_CMP_NODE]

        class _Node:
            def __init__(self, task):
                self.task = task
                self.cpu = 0
                self.socket = 0
                self.priority = 0
                self.enqueue_time = 0
                self.meta = {}

        def driver(task):
            value, cost = fn(
                {
                    "task": task,
                    "lock": site.core.impl,
                    "shuffler_node": _Node(task),
                    "curr_node": _Node(task),
                }
            )
            task.stats["value"] = value
            task.stats["cost"] = cost
            yield ops.Delay(1)

        task = kernel.spawn(driver, cpu=0)
        kernel.run()
        assert task.stats["value"] == 1  # OR of (0, 1)
        assert task.stats["cost"] > 0

    def test_exclusive_policy_conflicts(self, concord):
        concord.load_policy(make_numa_policy(lock_selector="a.lock", name="first"))
        exclusive = PolicySpec(
            name="second",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return 0\n",
            lock_selector="a.lock",
            exclusive=True,
        )
        with pytest.raises(PolicyConflictError):
            concord.load_policy(exclusive)

    def test_combiner_disagreement_conflicts(self, concord):
        concord.load_policy(make_numa_policy(lock_selector="a.lock", name="first"))
        other = PolicySpec(
            name="second",
            hook=HOOK_CMP_NODE,
            source="def f(ctx):\n    return 0\n",
            lock_selector="a.lock",
            combiner="and",
        )
        with pytest.raises(PolicyConflictError):
            concord.load_policy(other)


class TestLockControl:
    def test_switch_lock_via_concord(self, concord, kernel):
        concord.switch_lock("a.lock", lambda old: MCSLock(kernel.engine, name="new"))
        site = kernel.locks.get("a.lock")
        assert isinstance(site.core.impl, MCSLock)
        assert concord.switch_latency("a.lock") is not None

    def test_set_lock_param(self, concord, kernel):
        kernel.add_lock(
            "c.lock", ShflLock(kernel.engine, name="c", policy=NumaPolicy())
        )
        concord.set_lock_param("c.lock", "max_shuffle_rounds", 3)
        assert kernel.locks.get("c.lock").core.impl.max_shuffle_rounds == 3

    def test_set_unknown_param_rejected(self, concord):
        with pytest.raises(BPFError):
            concord.set_lock_param("a.lock", "warp_speed", 11)

    def test_hooks_survive_impl_switch(self, concord, kernel):
        concord.load_policy(make_numa_policy(lock_selector="a.lock"))
        concord.switch_lock(
            "a.lock", lambda old: ShflLock(kernel.engine, name="a2")
        )
        site = kernel.locks.get("a.lock")
        assert site.core.impl.hooks is not None
        assert HOOK_CMP_NODE in site.core.impl.hooks

    def test_describe(self, concord):
        concord.load_policy(make_numa_policy(lock_selector="a.lock"))
        info = concord.describe()
        assert "numa-aware" in info["policies"]
        assert info["pinned"]
        assert "a.lock" in info["patched_locks"]


class TestCombiners:
    def test_combine_results_table(self):
        from repro.concord import combine_results

        assert combine_results("or", [0, 0, 5]) == 5
        assert combine_results("or", [0, 0]) == 0
        assert combine_results("and", [1, 2, 3]) == 3
        assert combine_results("and", [1, 0, 3]) == 0
        assert combine_results("first", [7, 8]) == 7
        assert combine_results("sum", [1, 2, 3]) == 6
        assert combine_results("or", []) == 0
