"""Fleet membership: register/deregister semantics and member restarts."""

import pytest

from repro.controlplane import PolicyState
from repro.fleet import FleetError, FleetManager

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    three_kernel_fleet,
)


def test_register_and_lookup():
    fleet = three_kernel_fleet()
    assert fleet.names() == ["k0", "k1", "k2"]
    assert len(fleet) == 3
    assert "k1" in fleet
    assert fleet.member("k1").name == "k1"
    assert [m.name for m in fleet] == ["k0", "k1", "k2"]


def test_duplicate_name_rejected():
    fleet = FleetManager()
    add_member(fleet, "k0")
    with pytest.raises(FleetError, match="already registered"):
        add_member(fleet, "k0")


def test_unknown_member_rejected():
    fleet = FleetManager()
    with pytest.raises(FleetError, match="no fleet member"):
        fleet.member("nope")


def test_select_maps_members_to_matching_locks():
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2)
    add_member(fleet, "k1", locks=3, seed=12)
    matches = fleet.select("svc.*.lock")
    assert set(matches) == {"k0", "k1"}
    assert len(matches["k0"]) == 2
    assert len(matches["k1"]) == 3
    assert fleet.select("no.such.*") == {}


def test_deregister_refuses_live_policies_unless_forced():
    fleet = FleetManager()
    member = add_member(fleet, "k0", tasks_per_lock=2)
    daemon = member.daemon
    daemon.register_client("ops", allowed_selectors=("*",))
    daemon.submit("ops", good_factory(member))
    record = daemon.rollout("numa-good", **ROLLOUT_KWARGS)
    assert record.state is PolicyState.ACTIVE

    with pytest.raises(FleetError, match="live policies"):
        fleet.deregister("k0")
    assert "k0" in fleet

    departed = fleet.deregister("k0", force=True)
    assert departed.name == "k0"
    assert "k0" not in fleet
    assert departed.daemon._detached


def test_restart_rebuilds_daemon_with_same_config():
    fleet = FleetManager()
    member = add_member(fleet, "k0")
    old_daemon = member.daemon
    old_daemon.register_client("ops", allowed_selectors=("*",))
    new_daemon = member.restart()
    assert new_daemon is not old_daemon
    assert old_daemon._detached
    assert member.daemon is new_daemon
    # Fresh process: no records, no clients — state comes from recover().
    assert not new_daemon.records
    assert "ops" not in new_daemon.admission.clients()
