"""Fleet membership: register/deregister semantics and member restarts."""

import pytest

from repro.controlplane import PolicyState
from repro.fleet import FleetError, FleetManager

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    three_kernel_fleet,
)


def test_register_and_lookup():
    fleet = three_kernel_fleet()
    assert fleet.names() == ["k0", "k1", "k2"]
    assert len(fleet) == 3
    assert "k1" in fleet
    assert fleet.member("k1").name == "k1"
    assert [m.name for m in fleet] == ["k0", "k1", "k2"]


def test_duplicate_name_rejected():
    fleet = FleetManager()
    add_member(fleet, "k0")
    with pytest.raises(FleetError, match="already registered"):
        add_member(fleet, "k0")


def test_unknown_member_rejected():
    fleet = FleetManager()
    with pytest.raises(FleetError, match="no fleet member"):
        fleet.member("nope")


def test_select_maps_members_to_matching_locks():
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2)
    add_member(fleet, "k1", locks=3, seed=12)
    matches = fleet.select("svc.*.lock")
    assert set(matches) == {"k0", "k1"}
    assert len(matches["k0"]) == 2
    assert len(matches["k1"]) == 3
    assert fleet.select("no.such.*") == {}


def test_deregister_refuses_live_policies_unless_forced():
    fleet = FleetManager()
    member = add_member(fleet, "k0", tasks_per_lock=2)
    daemon = member.daemon
    daemon.register_client("ops", allowed_selectors=("*",))
    daemon.submit("ops", good_factory(member))
    record = daemon.rollout("numa-good", **ROLLOUT_KWARGS)
    assert record.state is PolicyState.ACTIVE

    with pytest.raises(FleetError, match="live policies"):
        fleet.deregister("k0")
    assert "k0" in fleet

    departed = fleet.deregister("k0", force=True)
    assert departed.name == "k0"
    assert "k0" not in fleet
    assert departed.daemon._detached


def test_restart_rebuilds_daemon_with_same_config():
    fleet = FleetManager()
    member = add_member(fleet, "k0")
    old_daemon = member.daemon
    old_daemon.register_client("ops", allowed_selectors=("*",))
    new_daemon = member.restart()
    assert new_daemon is not old_daemon
    assert old_daemon._detached
    assert member.daemon is new_daemon
    # Fresh process: no records, no clients — state comes from recover().
    assert not new_daemon.records
    assert "ops" not in new_daemon.admission.clients()


def test_restart_bumps_epoch():
    fleet = FleetManager()
    member = add_member(fleet, "k0")
    assert member.epoch == 0
    member.restart()
    member.restart()
    assert member.epoch == 2


def test_quarantine_excludes_member_from_rotation():
    fleet = three_kernel_fleet()
    fleet.quarantine("k1", "probe failures")
    assert fleet.is_quarantined("k1")
    assert fleet.quarantined() == {"k1": "probe failures"}
    assert fleet.active_names() == ["k0", "k2"]
    assert [m.name for m in fleet.active_members()] == ["k0", "k2"]
    # Membership itself is untouched: the member still resolves.
    assert fleet.names() == ["k0", "k1", "k2"]
    assert fleet.member("k1").name == "k1"
    # Idempotent, and the first cause wins.
    fleet.quarantine("k1", "another cause")
    assert fleet.quarantined()["k1"] == "probe failures"


def test_reinstate_fences_epoch_and_restores_rotation():
    fleet = three_kernel_fleet()
    epoch = fleet.member("k1").epoch
    fleet.quarantine("k1", "drill")
    fleet.reinstate("k1")
    assert not fleet.is_quarantined("k1")
    assert fleet.active_names() == ["k0", "k1", "k2"]
    # Reinstatement restarts the member: the epoch fence moves forward
    # so a coordinator holding the old epoch refuses to touch it.
    assert fleet.member("k1").epoch == epoch + 1

    with pytest.raises(FleetError, match="not quarantined"):
        fleet.reinstate("k1")
    with pytest.raises(FleetError, match="no fleet member"):
        fleet.quarantine("ghost")


def test_deregister_clears_quarantine():
    fleet = three_kernel_fleet()
    fleet.quarantine("k2", "gone dark")
    fleet.deregister("k2")
    assert fleet.quarantined() == {}
    assert fleet.active_names() == ["k0", "k1"]


def test_describe_reports_epoch_and_quarantine():
    fleet = three_kernel_fleet()
    fleet.member("k0").restart()
    fleet.quarantine("k0", "flapping")
    rows = fleet.describe()
    assert rows["k0"]["epoch"] == 1 and rows["k0"]["quarantined"] is True
    assert rows["k1"]["epoch"] == 0 and rows["k1"]["quarantined"] is False
