"""Performance contracts (§3.2)."""

import pytest

from repro.concord import Concord, ContractMonitor, ContractSpec
from repro.concord.policies import make_numa_policy
from repro.concord.profiler import LockProfiler
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology, ops


@pytest.fixture
def setup():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=5)
    site = kernel.add_lock("svc.lock", ShflLock(kernel.engine, name="svc"))
    concord = Concord(kernel)
    return kernel, site, concord


def hammer(kernel, site, n=6, iters=40, cs_ns=800):
    def worker(task):
        for _ in range(iters):
            yield from site.acquire(task)
            yield ops.Delay(cs_ns)
            yield from site.release(task)
            yield ops.Delay(100)

    for cpu in range(n):
        kernel.spawn(worker, cpu=cpu)


class TestStaticCheck:
    def test_fairness_hazard_flagged_for_wait_bound(self, setup):
        kernel, site, concord = setup
        concord.load_policy(make_numa_policy(lock_selector="svc.lock"))
        monitor = ContractMonitor(concord)
        spec = ContractSpec("rt", "svc.lock", max_avg_wait_ns=10_000)
        risks = monitor.static_check(spec)
        assert any("fairness hazard" in finding.message for finding in risks)

    def test_no_policies_no_risks(self, setup):
        kernel, site, concord = setup
        monitor = ContractMonitor(concord)
        spec = ContractSpec("rt", "svc.lock", max_avg_wait_ns=10_000)
        assert monitor.static_check(spec) == []

    def test_hold_bound_flags_profiling_hooks(self, setup):
        kernel, site, concord = setup
        session = LockProfiler(concord).start("svc.lock")
        monitor = ContractMonitor(concord)
        spec = ContractSpec("tight", "svc.lock", max_avg_hold_ns=1_000)
        risks = monitor.static_check(spec)
        assert any("lengthen the critical section" in finding.message for finding in risks)
        session.stop()


class TestDynamicCheck:
    def test_satisfied_contract(self, setup):
        kernel, site, concord = setup
        monitor = ContractMonitor(concord)
        session = monitor.start(ContractSpec("loose", "svc.lock",
                                             max_avg_wait_ns=10_000_000,
                                             max_avg_hold_ns=10_000_000))
        hammer(kernel, site)
        kernel.run()
        report = session.stop()
        assert report.satisfied
        assert "SATISFIED" in report.format()
        assert any(e.kind == "contract" for e in concord.events)

    def test_violated_wait_bound(self, setup):
        kernel, site, concord = setup
        monitor = ContractMonitor(concord)
        session = monitor.start(ContractSpec("tight", "svc.lock", max_avg_wait_ns=10))
        hammer(kernel, site)
        kernel.run()
        report = session.stop()
        assert not report.satisfied
        assert any("avg wait" in str(f) for f in report.findings)

    def test_violated_hold_bound(self, setup):
        kernel, site, concord = setup
        monitor = ContractMonitor(concord)
        session = monitor.start(ContractSpec("tight", "svc.lock", max_avg_hold_ns=100))
        hammer(kernel, site, cs_ns=2_000)
        kernel.run()
        report = session.stop()
        assert any("avg hold" in str(f) for f in report.findings)

    def test_contention_bound(self, setup):
        kernel, site, concord = setup
        monitor = ContractMonitor(concord)
        session = monitor.start(ContractSpec("calm", "svc.lock", max_contention=0.01))
        hammer(kernel, site, n=8)
        kernel.run()
        report = session.stop()
        assert any("contention" in str(f) for f in report.findings)

    def test_unacquired_locks_ignored(self, setup):
        kernel, site, concord = setup
        kernel.add_lock("idle.lock", ShflLock(kernel.engine, name="idle"))
        monitor = ContractMonitor(concord)
        session = monitor.start(ContractSpec("x", "*", max_avg_wait_ns=1))
        hammer(kernel, site, n=2, iters=5)
        kernel.run()
        report = session.stop()
        assert all(f.lock_name != "idle.lock" for f in report.findings)
