"""CNA, cohort, ticket specifics — the NUMA baseline family."""

from repro import locks as L
from repro.sim import Engine, Topology, ops


class TestCNA:
    def test_defers_remote_waiters(self):
        topo = Topology(sockets=2, cores_per_socket=4)
        eng = Engine(topo, seed=2)
        lock = L.CNALock(eng, scan_window=8, flush_threshold=1000)

        def worker(task):
            for _ in range(40):
                yield from lock.acquire(task)
                yield ops.Delay(150)
                yield from lock.release(task)
                yield ops.Delay(task.engine.rng.randint(0, 200))

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu, at=eng.rng.randint(0, 5_000))
        eng.run()
        assert lock.deferred_total > 0  # remote waiters were parked aside

    def test_flush_threshold_bounds_unfairness(self):
        """A tiny flush threshold means remote waiters come back quickly,
        so per-thread counts stay balanced."""
        topo = Topology(sockets=2, cores_per_socket=4)
        eng = Engine(topo, seed=2)
        lock = L.CNALock(eng, scan_window=8, flush_threshold=4)

        def worker(task):
            task.stats["ops"] = 0
            while task.engine.now < 500_000:
                yield from lock.acquire(task)
                yield ops.Delay(150)
                yield from lock.release(task)
                task.stats["ops"] += 1
                yield ops.Delay(100)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        assert lock.flushes > 0
        counts = [t.stats["ops"] for t in eng.tasks]
        assert min(counts) > 0

    def test_correct_when_queue_drains_to_secondary(self):
        """Handoff to the secondary chain when the main queue empties."""
        topo = Topology(sockets=2, cores_per_socket=2)
        eng = Engine(topo, seed=7)
        lock = L.CNALock(eng, scan_window=4, flush_threshold=1000)
        shared = eng.cell(0)

        def worker(task):
            for _ in range(25):
                yield from lock.acquire(task)
                v = yield ops.Load(shared)
                yield ops.Delay(200)
                yield ops.Store(shared, v + 1)
                yield from lock.release(task)
                yield ops.Delay(task.engine.rng.randint(0, 800))

        for cpu in range(4):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        assert shared.peek() == 100


class TestCohort:
    def test_batching_keeps_global_lock(self):
        topo = Topology(sockets=2, cores_per_socket=4)
        eng = Engine(topo, seed=3)
        lock = L.CohortLock(eng, batch=16)

        def worker(task):
            for _ in range(30):
                yield from lock.acquire(task)
                yield ops.Delay(100)
                yield from lock.release(task)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        # Global-lock acquisitions must be far fewer than total
        # acquisitions thanks to cohort passing.
        assert lock.global_lock.acquisitions < lock.acquisitions / 2

    def test_batch_bound_releases_global(self):
        topo = Topology(sockets=2, cores_per_socket=4)
        eng = Engine(topo, seed=3)
        lock = L.CohortLock(eng, batch=2)
        per_socket_ops = {0: 0, 1: 0}

        def worker(task):
            for _ in range(30):
                yield from lock.acquire(task)
                per_socket_ops[task.numa_node] += 1
                yield ops.Delay(100)
                yield from lock.release(task)
                yield ops.Delay(50)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        # With batch=2 both sockets make progress throughout.
        assert per_socket_ops[0] == 120 and per_socket_ops[1] == 120


class TestTicket:
    def test_strict_fifo_order(self):
        topo = Topology(sockets=1, cores_per_socket=8)
        eng = Engine(topo, seed=1)
        lock = L.TicketLock(eng)
        order = []

        def worker(task):
            yield ops.Delay(task.tid * 10)  # deterministic arrival order
            yield from lock.acquire(task)
            order.append(task.name)
            yield ops.Delay(500)
            yield from lock.release(task)

        for index in range(5):
            eng.spawn(worker, cpu=index, name=f"t{index}")
        eng.run()
        assert order == [f"t{i}" for i in range(5)]
