"""Topology: socket mapping, latencies, AMP, enumeration orders."""

import pytest

from repro.sim import LatencyModel, Topology, TopologyError, amp_machine, paper_machine


class TestLayout:
    def test_socket_mapping_is_dense_socket_major(self):
        topo = Topology(sockets=3, cores_per_socket=4)
        assert [topo.socket_of(c) for c in range(12)] == [0] * 4 + [1] * 4 + [2] * 4

    def test_cpus_of_socket(self):
        topo = Topology(sockets=2, cores_per_socket=3)
        assert list(topo.cpus_of_socket(1)) == [3, 4, 5]

    def test_bad_args_rejected(self):
        with pytest.raises(TopologyError):
            Topology(sockets=0, cores_per_socket=4)
        with pytest.raises(TopologyError):
            Topology(sockets=2, cores_per_socket=2, speed=[1.0])
        with pytest.raises(TopologyError):
            Topology(sockets=2, cores_per_socket=2, speed=[1.0, 1.0, 0.0, 1.0])

    def test_out_of_range_cpu(self):
        topo = Topology(sockets=1, cores_per_socket=2)
        with pytest.raises(TopologyError):
            topo.socket_of(5)

    def test_custom_distance_matrix(self):
        topo = Topology(
            sockets=3,
            cores_per_socket=1,
            numa_distance=[[0, 1, 2], [1, 0, 1], [2, 1, 0]],
        )
        assert topo.hops(0, 2) == 2
        assert topo.transfer_ns(0, 2) > topo.transfer_ns(0, 1)

    def test_distance_matrix_shape_checked(self):
        with pytest.raises(TopologyError):
            Topology(sockets=2, cores_per_socket=1, numa_distance=[[0]])


class TestLatency:
    def test_same_cpu_is_l1(self):
        topo = Topology(sockets=2, cores_per_socket=2)
        assert topo.transfer_ns(1, 1) == topo.latency.l1_hit

    def test_local_vs_remote(self):
        topo = Topology(sockets=2, cores_per_socket=2)
        assert topo.transfer_ns(0, 1) == topo.latency.local_transfer
        assert topo.transfer_ns(0, 2) == topo.latency.remote_transfer

    def test_latency_model_hops(self):
        lat = LatencyModel(remote_transfer=100, remote_hop_extra=30)
        assert lat.transfer(0) == lat.local_transfer
        assert lat.transfer(1) == 100
        assert lat.transfer(3) == 160


class TestOrders:
    def test_fill_order_stays_on_socket_first(self):
        topo = Topology(sockets=2, cores_per_socket=4)
        order = topo.fill_order()
        assert all(topo.socket_of(c) == 0 for c in order[:4])

    def test_spread_order_alternates_sockets(self):
        topo = Topology(sockets=2, cores_per_socket=4)
        order = topo.spread_order()
        assert topo.socket_of(order[0]) != topo.socket_of(order[1])
        assert sorted(order) == list(range(8))


class TestFactories:
    def test_paper_machine_shape(self):
        topo = paper_machine()
        assert topo.sockets == 8
        assert topo.nr_cpus == 80

    def test_amp_machine_speeds(self):
        topo = amp_machine(big_cores=2, little_cores=2, little_slowdown=3.0)
        assert topo.speed_of(0) == 1.0
        assert topo.speed_of(3) == 3.0
        assert topo.describe()["asymmetric"] is True

    def test_amp_delay_scaling(self):
        from repro.sim import Engine, ops

        topo = amp_machine(big_cores=1, little_cores=1, little_slowdown=2.0)
        eng = Engine(topo)

        def body(task):
            yield ops.Delay(1000)

        big = eng.spawn(body, cpu=0)
        little = eng.spawn(body, cpu=1)
        eng.run()
        assert big.finish_time == 1000
        assert little.finish_time == 2000
