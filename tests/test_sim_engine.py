"""Engine behaviour: time, effects, scheduling, determinism."""

import pytest

from repro.sim import DeadlockError, Engine, SimLimitError, TaskState, Topology, ops


def make_engine(**kw):
    return Engine(Topology(sockets=2, cores_per_socket=4), **kw)


class TestBasics:
    def test_delay_advances_time(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(100)
            yield ops.Delay(250)

        task = eng.spawn(body, cpu=0)
        eng.run()
        assert task.done
        assert eng.now == 350

    def test_task_result_and_finish_time(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(10)
            return "payload"

        task = eng.spawn(body, cpu=0)
        eng.run()
        assert task.result == "payload"
        assert task.finish_time == 10

    def test_spawn_at_future_time(self):
        eng = make_engine()
        times = []

        def body(task):
            times.append(task.engine.now)
            yield ops.Delay(1)

        eng.spawn(body, cpu=0, at=500)
        eng.run()
        assert times == [500]

    def test_spawn_rejects_bad_cpu(self):
        eng = make_engine()
        with pytest.raises(Exception):
            eng.spawn(lambda t: iter(()), cpu=99)

    def test_non_generator_body_rejected(self):
        eng = make_engine()
        eng.spawn(lambda t: 42, cpu=0)
        with pytest.raises(TypeError):
            eng.run()

    def test_yielding_garbage_rejected(self):
        eng = make_engine()

        def body(task):
            yield "not a request"

        eng.spawn(body, cpu=0)
        with pytest.raises(Exception):
            eng.run()


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        eng = make_engine()
        cell = eng.cell(7)
        seen = []

        def body(task):
            value = yield ops.Load(cell)
            seen.append(value)
            yield ops.Store(cell, 99)
            seen.append((yield ops.Load(cell)))

        eng.spawn(body, cpu=0)
        eng.run()
        assert seen == [7, 99]

    def test_cas_success_and_failure(self):
        eng = make_engine()
        cell = eng.cell(5)
        results = []

        def body(task):
            results.append((yield ops.CAS(cell, 5, 6)))
            results.append((yield ops.CAS(cell, 5, 7)))

        eng.spawn(body, cpu=0)
        eng.run()
        assert results == [(True, 5), (False, 6)]
        assert cell.peek() == 6

    def test_xchg_and_fetch_add(self):
        eng = make_engine()
        cell = eng.cell(10)
        results = []

        def body(task):
            results.append((yield ops.Xchg(cell, 20)))
            results.append((yield ops.FetchAdd(cell, 5)))

        eng.spawn(body, cpu=0)
        eng.run()
        assert results == [10, 20]
        assert cell.peek() == 25

    def test_concurrent_fetch_add_is_atomic(self):
        eng = make_engine()
        cell = eng.cell(0)

        def body(task):
            for _ in range(200):
                yield ops.FetchAdd(cell, 1)

        for cpu in range(8):
            eng.spawn(body, cpu=cpu)
        eng.run()
        assert cell.peek() == 1600


class TestWaitValue:
    def test_wait_already_satisfied(self):
        eng = make_engine()
        cell = eng.cell(1)

        def body(task):
            value = yield ops.WaitValue(cell, lambda v: v == 1)
            assert value == 1

        task = eng.spawn(body, cpu=0)
        eng.run()
        assert task.done

    def test_wait_wakes_on_store(self):
        eng = make_engine()
        cell = eng.cell(0)
        wake_time = []

        def waiter(task):
            yield ops.WaitValue(cell, lambda v: v == 3)
            wake_time.append(task.engine.now)

        def setter(task):
            yield ops.Delay(1000)
            yield ops.Store(cell, 2)  # does not satisfy
            yield ops.Delay(1000)
            yield ops.Store(cell, 3)

        eng.spawn(waiter, cpu=1)
        eng.spawn(setter, cpu=0)
        eng.run()
        assert wake_time and wake_time[0] > 2000

    def test_closer_spinner_wakes_first(self):
        """Cache locality: a same-socket spinner sees the write sooner."""
        eng = make_engine()
        cell = eng.cell(0)
        order = []

        def spinner(task):
            yield ops.WaitValue(cell, lambda v: v == 1)
            order.append(task.name)

        def setter(task):
            yield ops.Delay(100)
            yield ops.Store(cell, 1)

        eng.spawn(spinner, cpu=1, name="near")   # socket 0, same as setter
        eng.spawn(spinner, cpu=4, name="far")    # socket 1
        eng.spawn(setter, cpu=0, name="setter")
        eng.run()
        assert order[0] == "near"


class TestParkUnpark:
    def test_park_then_unpark(self):
        eng = make_engine()

        def sleeper(task):
            woken = yield ops.Park()
            task.stats["woken"] = woken

        def waker(task, target):
            yield ops.Delay(500)
            yield ops.Unpark(target)

        target = eng.spawn(sleeper, cpu=0)
        eng.spawn(lambda t: waker(t, target), cpu=1)
        eng.run()
        assert target.stats["woken"] is True
        # Wake-up latency must be charged.
        assert target.finish_time > 500

    def test_unpark_before_park_leaves_token(self):
        eng = make_engine()

        def sleeper(task):
            yield ops.Delay(1000)  # unpark arrives during this
            woken = yield ops.Park()
            task.stats["woken_at"] = task.engine.now
            assert woken

        def waker(task, target):
            yield ops.Unpark(target)

        target = eng.spawn(sleeper, cpu=0)
        eng.spawn(lambda t: waker(t, target), cpu=1)
        eng.run()
        # Token consumed without a real sleep: fast path, no wake latency.
        assert target.stats["woken_at"] < 1500

    def test_park_timeout_fires(self):
        eng = make_engine()

        def sleeper(task):
            woken = yield ops.ParkTimeout(2000)
            task.stats["woken"] = woken

        task = eng.spawn(sleeper, cpu=0)
        eng.run()
        assert task.stats["woken"] is False
        assert eng.now >= 2000

    def test_park_timeout_beaten_by_unpark(self):
        eng = make_engine()

        def sleeper(task):
            woken = yield ops.ParkTimeout(50_000)
            task.stats["woken"] = woken

        def waker(task, target):
            yield ops.Delay(100)
            yield ops.Unpark(target)

        target = eng.spawn(sleeper, cpu=0)
        eng.spawn(lambda t: waker(t, target), cpu=1)
        eng.run()
        assert target.stats["woken"] is True
        # The stale timeout event may still advance the clock at drain
        # time; what matters is when the task actually resumed.
        assert target.finish_time < 50_000


class TestScheduling:
    def test_oversubscribed_cpu_round_robins(self):
        eng = make_engine(preemption_quantum=5_000)
        finished = []

        def body(task):
            for _ in range(10):
                yield ops.Delay(1_000)
            finished.append(task.name)

        for index in range(3):
            eng.spawn(body, cpu=0, name=f"t{index}")
        eng.run()
        assert sorted(finished) == ["t0", "t1", "t2"]
        assert eng.stats.counter("sched.preemptions").value > 0

    def test_park_releases_cpu_to_peer(self):
        eng = make_engine()
        order = []

        def sleeper(task):
            order.append("sleeper-start")
            yield ops.Park()

        def peer(task):
            yield ops.Delay(10)
            order.append("peer-ran")

        eng.spawn(sleeper, cpu=0, name="sleeper")
        eng.spawn(peer, cpu=0, name="peer")
        with pytest.raises(DeadlockError):
            eng.run()  # sleeper never woken: deadlock detected at drain
        assert "peer-ran" in order

    def test_priority_dispatch_order(self):
        eng = make_engine()
        order = []

        def blocker(task):
            yield ops.Delay(1_000)

        def lo(task):
            yield ops.Delay(1)
            order.append("lo")

        def hi(task):
            yield ops.Delay(1)
            order.append("hi")

        eng.spawn(blocker, cpu=0)
        eng.spawn(lo, cpu=0, priority=0, at=10)
        eng.spawn(hi, cpu=0, priority=5, at=20)
        eng.run()
        assert order == ["hi", "lo"]

    def test_freeze_cpu_stalls_progress(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(100)
            task.stats["mid"] = task.engine.now
            yield ops.Delay(100)

        task = eng.spawn(body, cpu=0)
        eng.call_at(50, lambda: eng.freeze_cpu(0, 10_000))
        eng.run()
        # The second half could only run after the thaw.
        assert task.finish_time >= 10_050

    def test_yield_cpu(self):
        eng = make_engine()
        order = []

        def polite(task):
            yield ops.Delay(5)  # let the peer's spawn event enqueue it
            order.append("a1")
            yield ops.YieldCPU()
            order.append("a2")
            yield ops.Delay(1)

        def peer(task):
            order.append("b")
            yield ops.Delay(1)

        eng.spawn(polite, cpu=0)
        eng.spawn(peer, cpu=0)
        eng.run()
        assert order.index("b") < order.index("a2")


class TestRunControl:
    def test_run_until_stops_midway(self):
        eng = make_engine()

        def forever(task):
            while True:
                yield ops.Delay(100)

        eng.spawn(forever, cpu=0)
        end = eng.run(until=10_000)
        assert end == 10_000

    def test_max_events_guard(self):
        eng = make_engine(max_events=100)

        def forever(task):
            while True:
                yield ops.Delay(1)

        eng.spawn(forever, cpu=0)
        with pytest.raises(SimLimitError):
            eng.run()

    def test_deadlock_report_names_tasks(self):
        eng = make_engine()

        def stuck(task):
            yield ops.Park()

        eng.spawn(stuck, cpu=0, name="stucky")
        with pytest.raises(DeadlockError) as err:
            eng.run()
        assert "stucky" in str(err.value)

    def test_call_at_and_after(self):
        eng = make_engine()
        fired = []

        def body(task):
            yield ops.Delay(10_000)

        eng.spawn(body, cpu=0)
        eng.call_at(5_000, lambda: fired.append(eng.now))
        eng.call_after(7_000, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [5_000, 7_000]

    def test_external_store_wakes_waiters(self):
        eng = make_engine()
        cell = eng.cell(0)

        def waiter(task):
            yield ops.WaitValue(cell, lambda v: v == 9)

        task = eng.spawn(waiter, cpu=0)
        eng.call_at(1_000, lambda: eng.external_store(cell, 9))
        eng.run()
        assert task.done


class TestDeterminism:
    def _trace(self, seed):
        eng = make_engine(seed=seed)
        cell = eng.cell(0)
        log = []

        def body(task):
            for _ in range(50):
                old = yield ops.FetchAdd(cell, 1)
                log.append((task.name, task.engine.now, old))
                yield ops.Delay(task.engine.rng.randint(1, 100))

        for cpu in range(6):
            eng.spawn(body, cpu=cpu, name=f"t{cpu}")
        eng.run()
        return log

    def test_same_seed_same_trace(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seed_different_trace(self):
        assert self._trace(7) != self._trace(8)
