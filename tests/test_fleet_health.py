"""Fleet health: probes, quarantine, epoch fencing, revert debt, and
degraded-mode rollouts.

The scenarios follow the same shape as the coordinator tests — a small
fleet under shard load, a plan, an execute — with one twist: a member
stops answering.  What varies is *when* it stops (before the wave, at
its bake, during the unwind) and what the fleet must converge to
(degraded completion under quorum, all-stock under any-breach, drained
debt after reinstatement).
"""

import pytest

from repro.controlplane import JournalError, PolicyJournal, PolicyState
from repro.faults import (
    SITE_FLEET_DEBT_DRAIN,
    SITE_FLEET_HEARTBEAT,
    SITE_FLEET_MEMBER_CALL,
    SITE_FLEET_PROBE,
    FaultPlan,
    injected,
)
from repro.fleet import (
    EpochFenced,
    FleetCoordinator,
    FleetManager,
    FleetRollout,
    FleetRolloutState,
    HealthMonitor,
    HealthState,
    MemberUnreachable,
    RolloutPlanner,
)

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    learn,
    three_kernel_fleet,
)

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)


def four_kernel_fleet():
    """k0 quiet (canary), then k1/k2 as a wave, then k3 — a fleet wide
    enough that a 0.5 quorum survives one dead member.  Every member
    gets its own journal shard (sharing one would interleave replays)."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    add_member(fleet, "k3", locks=3, seed=14, tasks_per_lock=4, journal=PolicyJournal())
    return fleet


def three_journaled_fleet():
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    return fleet


def kill_at_bake(victim):
    """A persistent outage that first answers (so the victim gets
    patched), then drops every later call — the classic die-mid-wave."""
    fault = FaultPlan(seed=1, name=f"kill-{victim}")
    fault.fail(
        SITE_FLEET_MEMBER_CALL,
        times=None,
        after=1,
        match={"kernel": victim, "op": "bake"},
    )
    return fault


def journal_events(journal):
    return [e.get("event") for e in journal.entries() if e.get("kind") == "fleet"]


# ----------------------------------------------------------------------
# HealthMonitor probing
# ----------------------------------------------------------------------
def test_probe_healthy_member_heartbeats_its_journal():
    fleet = three_journaled_fleet()
    monitor = HealthMonitor(fleet)
    record = monitor.probe("k0")
    assert record.ok and record.detail == "ok"
    assert monitor.state("k0") is HealthState.HEALTHY
    assert record.epoch == 0
    beats = [
        e for e in fleet.member("k0").journal.entries() if e.get("kind") == "heartbeat"
    ]
    assert len(beats) == 1 and beats[0]["member"] == "k0"
    # Heartbeats are replay noise a recovering daemon must shrug off.
    fleet.member("k0").restart()
    summary = fleet.member("k0").daemon.recover()
    assert summary["replayed"] == 0


def test_probe_failures_escalate_and_success_resets():
    fleet = three_kernel_fleet()
    monitor = HealthMonitor(fleet, suspect_after=1, dead_after=3)
    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_PROBE, times=3, match={"member": "k1"})
    with injected(fault):
        monitor.probe("k1")
        assert monitor.state("k1") is HealthState.SUSPECT
        monitor.probe("k1")
        assert monitor.state("k1") is HealthState.SUSPECT
        monitor.probe("k1")
        assert monitor.state("k1") is HealthState.DEAD
        assert monitor.state("k0") is HealthState.HEALTHY
    record = monitor.probe("k1")  # fault cleared: next probe succeeds
    assert record.ok
    assert monitor.state("k1") is HealthState.HEALTHY
    assert monitor.failures("k1") == 0
    assert len(monitor.history("k1")) == 4


def test_heartbeat_loss_fails_the_probe():
    fleet = three_journaled_fleet()
    monitor = HealthMonitor(fleet)
    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_HEARTBEAT, times=1)
    with injected(fault):
        record = monitor.probe("k0")
    assert not record.ok
    assert "heartbeat" in record.detail
    assert monitor.state("k0") is HealthState.SUSPECT


def test_dead_daemon_fails_the_ping_probe():
    fleet = three_kernel_fleet()
    fleet.member("k2").daemon.detach()  # process died, nobody restarted it
    monitor = HealthMonitor(fleet)
    record = monitor.probe("k2")
    assert not record.ok
    assert "daemon" in record.detail


def test_dead_member_is_auto_quarantined_with_debt():
    fleet = three_kernel_fleet()
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    # Give k1 a live policy so the quarantine has something to owe.
    member = fleet.member("k1")
    member.daemon.register_client("fleet-coordinator", allowed_selectors=("*",))
    member.daemon.submit("fleet-coordinator", good_factory(member))
    member.daemon.rollout("numa-good", **ROLLOUT_KWARGS)
    assert member.daemon.records["numa-good"].state is PolicyState.ACTIVE

    monitor = HealthMonitor(fleet, dead_after=3, on_dead=coord.quarantine)
    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_PROBE, times=None, match={"member": "k1"})
    with injected(fault):
        for _ in range(3):
            monitor.probe_all()
    assert monitor.state("k1") is HealthState.DEAD
    assert fleet.is_quarantined("k1")
    assert [(d["kernel"], d["policy"]) for d in coord.debt] == [("k1", "numa-good")]
    events = journal_events(coord.journal)
    assert "quarantine" in events and "revert-debt" in events
    # probe_all skips out-of-rotation members; k1 history stops growing.
    before = len(monitor.history("k1"))
    monitor.probe_all()
    assert len(monitor.history("k1")) == before


# ----------------------------------------------------------------------
# Epoch fencing
# ----------------------------------------------------------------------
def test_epoch_fence_refuses_restarted_member():
    fleet = three_kernel_fleet()
    coord = FleetCoordinator(fleet)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    rollout = FleetRollout(plan)
    coord._reach("k1", "rollout", rollout)  # records epoch 0
    fleet.member("k1").restart()  # epoch 0 -> 1 under the rollout
    with pytest.raises(EpochFenced):
        coord._reach("k1", "bake", rollout)
    # Fences are not retried: one attempt, immediate refusal.
    assert rollout.epochs["k1"] == 0


def test_dead_per_monitor_is_unreachable_without_a_call():
    fleet = three_kernel_fleet()
    monitor = HealthMonitor(fleet, dead_after=1)
    coord = FleetCoordinator(fleet, health=monitor)
    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_PROBE, times=1, match={"member": "k2"})
    with injected(fault):
        monitor.probe("k2")
    assert monitor.state("k2") is HealthState.DEAD
    with pytest.raises(MemberUnreachable):
        coord._reach("k2", "rollout")


def test_transient_member_fault_is_absorbed_by_retries():
    fleet = three_kernel_fleet()
    coord = FleetCoordinator(fleet, journal=PolicyJournal(), member_retries=2)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_MEMBER_CALL, times=2)  # two blips, then fine
    with injected(fault):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.unreachable_kernels() == []
    assert not coord.debt


# ----------------------------------------------------------------------
# Degraded rollouts
# ----------------------------------------------------------------------
def test_quorum_rollout_completes_degraded_with_debt():
    fleet = four_kernel_fleet()
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    planner = RolloutPlanner(verdict_mode="quorum", quorum=0.5, **PLANNER)
    plan = planner.plan("numa-good", learn(fleet))
    victim = plan.waves[1].kernels[0]
    with injected(kill_at_bake(victim)):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.unreachable_kernels() == [victim]
    survivors = [k for k in plan.kernels() if k != victim]
    assert all(rollout.outcomes[k] == "ACTIVE" for k in survivors)
    assert fleet.is_quarantined(victim)
    assert [(d["kernel"], d["policy"]) for d in coord.debt] == [(victim, "numa-good")]
    events = journal_events(journal)
    for expected in ("member-dead", "quarantine", "revert-debt", "complete"):
        assert expected in events, f"missing {expected!r} in {events}"
    # The victim still runs the policy — that is exactly what the debt
    # records; the *reachable* fleet is uniformly at plan.
    assert fleet.member(victim).daemon.records["numa-good"].state is PolicyState.ACTIVE


def test_any_breach_rollout_halts_and_books_debt():
    fleet = four_kernel_fleet()
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    victim = plan.waves[1].kernels[0]
    with injected(kill_at_bake(victim)):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.unreachable_kernels() == [victim]
    # Every reachable kernel converged to stock.
    for member in fleet.members():
        if member.name == victim:
            continue
        record = member.daemon.records.get("numa-good")
        assert record is None or not record.live
        assert "numa-good" not in member.concord.policies
    assert fleet.is_quarantined(victim)
    assert [(d["kernel"], d["policy"]) for d in coord.debt] == [(victim, "numa-good")]


def test_reinstate_and_recover_drains_debt():
    fleet = four_kernel_fleet()
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    victim = plan.waves[1].kernels[0]
    with injected(kill_at_bake(victim)):
        coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert coord.debt

    epoch_before = fleet.member(victim).epoch
    coord.reinstate(victim)
    assert fleet.member(victim).epoch > epoch_before
    recovered = coord.recover(good_factory, **ROLLOUT_KWARGS)
    assert recovered is not None and recovered.state is FleetRolloutState.UNWOUND
    assert not coord.debt
    assert "debt-drained" in journal_events(journal)
    # The reinstated member is back to stock like everyone else.
    record = fleet.member(victim).daemon.records.get("numa-good")
    assert record is None or not record.live
    assert "numa-good" not in fleet.member(victim).concord.policies

    # And a fresh coordinator rebuilding debt from the journal finds
    # nothing outstanding.
    fresh = FleetCoordinator(fleet, journal=journal)
    fresh._load_debt([e for e in journal.entries() if e.get("kind") == "fleet"])
    assert not fresh.debt


def test_debt_drain_retries_through_transient_faults():
    fleet = three_journaled_fleet()
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    member = fleet.member("k1")
    member.daemon.register_client("fleet-coordinator", allowed_selectors=("*",))
    member.daemon.submit("fleet-coordinator", good_factory(member))
    member.daemon.rollout("numa-good", **ROLLOUT_KWARGS)
    coord.quarantine("k1", "operator drill")
    assert coord.debt
    coord.reinstate("k1")
    fleet.member("k1").daemon.recover()

    fault = FaultPlan(seed=1)
    fault.fail(SITE_FLEET_DEBT_DRAIN, times=2)  # two bounces, then ok
    with injected(fault):
        drained = coord.drain_debt()
    assert [d["kernel"] for d in drained] == ["k1"]
    assert not coord.debt
    record = fleet.member("k1").daemon.records.get("numa-good")
    assert record is None or not record.live


def test_drain_skips_members_still_out_of_service():
    fleet = three_kernel_fleet()
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    member = fleet.member("k2")
    member.daemon.register_client("fleet-coordinator", allowed_selectors=("*",))
    member.daemon.submit("fleet-coordinator", good_factory(member))
    member.daemon.rollout("numa-good", **ROLLOUT_KWARGS)
    coord.quarantine("k2", "still dark")
    assert coord.drain_debt() == []
    assert coord.debt  # stays booked until the member comes back


# ----------------------------------------------------------------------
# Satellite bugfix: members deregistered mid-rollout
# ----------------------------------------------------------------------
def test_deregistered_member_becomes_unreachable_not_a_crash():
    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    fleet.deregister("k1")  # gone before its wave starts
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    # any-breach: the unreachable member breaches the verdict, the
    # reachable fleet converges to stock — no FleetError out of execute.
    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.outcomes["k1"].startswith("UNREACHABLE")
    for name in ("k0", "k2"):
        record = fleet.member(name).daemon.records.get("numa-good")
        assert record is None or not record.live


def test_unwind_survives_member_deregistered_after_patching():
    fleet = three_kernel_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    coord = FleetCoordinator(fleet, journal=PolicyJournal())
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE

    fleet.deregister("k2", force=True)  # operator yanks a patched member
    stale = FleetRollout(plan)
    stale.outcomes = {k: "ACTIVE" for k in plan.kernels()}
    # Used to raise FleetError out of the unwind (the member lookup sat
    # outside the try); now it is recorded and the rest still reverts.
    coord._revert_patched(stale, "test unwind")
    assert "k2" in stale.revert_failures
    assert [(d["kernel"], d["policy"]) for d in coord.debt] == [("k2", "numa-good")]
    for name in ("k0", "k1"):
        record = fleet.member(name).daemon.records.get("numa-good")
        assert record is None or not record.live
