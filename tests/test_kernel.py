"""Kernel subsystems: mm page-fault path, VFS, syscall annotations."""

import pytest

from repro.kernel import (
    VFS,
    AddressSpace,
    FaultError,
    Kernel,
    VFSError,
    annotate_priority_path,
    clear_priority_path,
    current_syscall,
    syscall_id,
)
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    return Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)


class TestAddressSpace:
    def test_mmap_fault_munmap_cycle(self, kernel):
        mm = AddressSpace(kernel)

        def body(task):
            yield from mm.mmap(task, 100, 8)
            for page in range(100, 108):
                yield from mm.page_fault(task, page)
            yield from mm.munmap(task, 100)

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert mm.faults == 8
        assert mm.mmaps == 1 and mm.munmaps == 1
        assert mm.vma_ranges() == ()

    def test_fault_on_unmapped_raises(self, kernel):
        mm = AddressSpace(kernel)

        def body(task):
            yield from mm.page_fault(task, 999)

        kernel.spawn(body, cpu=0)
        with pytest.raises(FaultError):
            kernel.run()

    def test_second_fault_is_minor(self, kernel):
        mm = AddressSpace(kernel)

        def body(task):
            yield from mm.mmap(task, 0, 4)
            yield from mm.page_fault(task, 0)
            yield from mm.page_fault(task, 0)  # already present

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert mm.faults == 1

    def test_touch_fast_after_populated(self, kernel):
        mm = AddressSpace(kernel)
        times = {}

        def body(task):
            yield from mm.mmap(task, 0, 2)
            yield from mm.touch(task, 0)
            start = task.engine.now
            yield from mm.touch(task, 0)
            times["second"] = task.engine.now - start

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert times["second"] < 100

    def test_pagevec_drains_under_lru_lock(self, kernel):
        mm = AddressSpace(kernel)

        def body(task):
            yield from mm.mmap(task, 0, 64)
            for page in range(64):
                yield from mm.page_fault(task, page)

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert mm.lru_drains == 64 // 15

    def test_concurrent_faulting_is_consistent(self, kernel):
        mm = AddressSpace(kernel)

        def body(task, base):
            yield from mm.mmap(task, base, 16)
            for page in range(base, base + 16):
                yield from mm.page_fault(task, page)

        for index in range(6):
            kernel.spawn(lambda t, b=index * 1000: body(t, b), cpu=index)
        kernel.run()
        assert mm.faults == 6 * 16

    def test_mmap_lock_is_registered(self, kernel):
        AddressSpace(kernel, name="proc1")
        assert "proc1.mmap_lock" in kernel.locks


class TestVFS:
    def run_fs(self, kernel, body):
        vfs = VFS(kernel)
        result = {}

        def driver(task):
            yield from body(task, vfs, result)

        kernel.spawn(driver, cpu=0)
        kernel.run()
        return vfs, result

    def test_create_lookup_unlink(self, kernel):
        def body(task, vfs, result):
            d = yield from vfs.mkdir(task, vfs.root, "dir")
            f = yield from vfs.create(task, d, "file")
            found = yield from vfs.lookup(task, d, "file")
            result["same"] = found is f
            yield from vfs.unlink(task, d, "file")
            result["entries"] = dict(d.children)

        _vfs, result = self.run_fs(kernel, body)
        assert result["same"] is True
        assert result["entries"] == {}

    def test_duplicate_create_rejected(self, kernel):
        def body(task, vfs, result):
            yield from vfs.create(task, vfs.root, "x")
            try:
                yield from vfs.create(task, vfs.root, "x")
            except VFSError:
                result["raised"] = True

        _vfs, result = self.run_fs(kernel, body)
        assert result.get("raised")

    def test_lookup_missing_raises(self, kernel):
        def body(task, vfs, result):
            try:
                yield from vfs.lookup(task, vfs.root, "ghost")
            except VFSError:
                result["raised"] = True

        _vfs, result = self.run_fs(kernel, body)
        assert result.get("raised")

    def test_readdir(self, kernel):
        def body(task, vfs, result):
            for name in ("c", "a", "b"):
                yield from vfs.create(task, vfs.root, name)
            result["names"] = (yield from vfs.readdir(task, vfs.root))

        _vfs, result = self.run_fs(kernel, body)
        assert result["names"] == ["a", "b", "c"]

    def test_cross_directory_rename_moves_entry(self, kernel):
        def body(task, vfs, result):
            a = yield from vfs.mkdir(task, vfs.root, "a")
            b = yield from vfs.mkdir(task, vfs.root, "b")
            yield from vfs.create(task, a, "f")
            yield from vfs.rename(task, a, "f", b, "g")
            result["a"] = dict(a.children)
            result["b_names"] = sorted(b.children)

        _vfs, result = self.run_fs(kernel, body)
        assert result["a"] == {}
        assert result["b_names"] == ["g"]

    def test_concurrent_cross_renames_no_deadlock(self, kernel):
        """Opposite-direction renames are safe thanks to lock ordering."""
        vfs = VFS(kernel)
        dirs = {}

        def setup(task):
            dirs["a"] = yield from vfs.mkdir(task, vfs.root, "a")
            dirs["b"] = yield from vfs.mkdir(task, vfs.root, "b")
            for index in range(10):
                yield from vfs.create(task, dirs["a"], f"fa{index}")
                yield from vfs.create(task, dirs["b"], f"fb{index}")

        kernel.spawn(setup, cpu=0)
        kernel.run()

        def mover(task, src_key, dst_key, prefix):
            src, dst = dirs[src_key], dirs[dst_key]
            for index in range(10):
                yield from vfs.rename(task, src, f"{prefix}{index}", dst, f"{prefix}{index}")

        kernel.spawn(lambda t: mover(t, "a", "b", "fa"), cpu=1)
        kernel.spawn(lambda t: mover(t, "b", "a", "fb"), cpu=2)
        kernel.run()
        assert vfs.renames == 20
        assert sorted(dirs["b"].children) == [f"fa{i}" for i in range(10)]

    def test_rename_holds_multiple_locks(self, kernel):
        """The use-case premise: rename is a multi-lock operation."""
        vfs = VFS(kernel)
        observed = []

        def body(task):
            a = yield from vfs.mkdir(task, vfs.root, "a")
            b = yield from vfs.mkdir(task, vfs.root, "b")
            yield from vfs.create(task, a, "f")
            original = vfs.rename_lock.release

            def spy_release(t):
                observed.append(len(t.held_locks))
                return original(t)

            vfs.rename_lock.release = spy_release
            yield from vfs.rename(task, a, "f", b, "f")

        kernel.spawn(body, cpu=0)
        kernel.run()
        # At rename-mutex release time only it remains held (the two
        # directory locks released first) — but during the operation the
        # chain was 3 deep; assert via the VFS counters instead.
        assert vfs.renames == 1

    def test_inode_locks_registered_per_instance(self, kernel):
        vfs = VFS(kernel)

        def body(task):
            yield from vfs.mkdir(task, vfs.root, "d")

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert len(kernel.locks.select("vfs.inode.*.lock")) >= 2


class TestSyscallAnnotations:
    def test_current_syscall_tags(self, kernel):
        seen = {}

        def body(task):
            with current_syscall(task, "rename"):
                seen["inside"] = task.tags.get("syscall")
                yield ops.Delay(10)
            seen["outside"] = task.tags.get("syscall")
            yield ops.Delay(1)

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert seen["inside"] == syscall_id("rename")
        assert seen["outside"] is None

    def test_nested_syscall_restores(self, kernel):
        seen = {}

        def body(task):
            with current_syscall(task, "outer"):
                with current_syscall(task, "inner"):
                    seen["inner"] = task.tags.get("syscall")
                    yield ops.Delay(1)
                seen["after"] = task.tags.get("syscall")

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert seen["inner"] == syscall_id("inner")
        assert seen["after"] == syscall_id("outer")

    def test_priority_annotation(self, kernel):
        def body(task):
            annotate_priority_path(task, level=3)
            assert task.tags["boost"] == 3
            clear_priority_path(task)
            assert "boost" not in task.tags
            yield ops.Delay(1)

        kernel.spawn(body, cpu=0)
        kernel.run()

    def test_syscall_ids_stable(self):
        assert syscall_id("fsync") == syscall_id("fsync")
        assert syscall_id("fsync") != syscall_id("read")
