"""Live patching: patch objects, enable/disable, shadow variables."""

import pytest

from repro.kernel import Kernel
from repro.livepatch import LivePatch, PatchError, PatchOp, Patcher, ShadowStore
from repro.locks import MCSLock, ShflLock, TicketLock
from repro.locks.base import HOOK_CMP_NODE, HookSet
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    k = Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)
    k.add_lock("a.lock", ShflLock(k.engine, name="a"))
    return k


class TestPatcher:
    def test_attach_hooks_patch(self, kernel):
        hooks = HookSet()
        hooks.attach(HOOK_CMP_NODE, lambda env: (1, 5))
        patch = kernel.patcher.attach_hooks("a.lock", hooks)
        assert patch.applied
        site = kernel.locks.get("a.lock")
        assert site.core.impl.hooks is hooks
        assert kernel.patcher.history

    def test_disable_restores_previous_hooks(self, kernel):
        site = kernel.locks.get("a.lock")
        first = HookSet()
        site.attach_hooks(first)
        hooks = HookSet()
        patch = kernel.patcher.attach_hooks("a.lock", hooks)
        kernel.patcher.disable(patch.name)
        assert site.core.impl.hooks is first

    def test_switch_patch(self, kernel):
        kernel.patcher.switch_lock(
            "a.lock", lambda old: MCSLock(kernel.engine, name="new")
        )
        assert isinstance(kernel.locks.get("a.lock").core.impl, MCSLock)
        assert kernel.patcher.switch_latency("a.lock") is not None

    def test_patch_on_unpatchable_lock_rejected(self, kernel):
        kernel.locks.register("raw.lock", MCSLock(kernel.engine))
        with pytest.raises(PatchError, match="not a patchable"):
            kernel.patcher.attach_hooks("raw.lock", HookSet())

    def test_double_enable_rejected(self, kernel):
        patch = LivePatch("p", [PatchOp("a.lock", hooks=HookSet())])
        kernel.patcher.enable(patch)
        with pytest.raises(PatchError):
            kernel.patcher.enable(patch)

    def test_disable_unknown_rejected(self, kernel):
        with pytest.raises(PatchError):
            kernel.patcher.disable("ghost")

    def test_multi_op_patch(self, kernel):
        kernel.add_lock("b.lock", ShflLock(kernel.engine, name="b"))
        hooks = HookSet()
        patch = LivePatch(
            "combo",
            [
                PatchOp("a.lock", hooks=hooks),
                PatchOp("b.lock", new_impl_factory=lambda old: TicketLock(kernel.engine)),
            ],
        )
        kernel.patcher.enable(patch)
        assert kernel.locks.get("a.lock").core.impl.hooks is hooks
        assert isinstance(kernel.locks.get("b.lock").core.impl, TicketLock)

    def test_patch_under_load_preserves_correctness(self, kernel):
        site = kernel.locks.get("a.lock")
        shared = kernel.engine.cell(0)

        def worker(task):
            for _ in range(40):
                yield from site.acquire(task)
                value = yield ops.Load(shared)
                yield ops.Delay(100)
                yield ops.Store(shared, value + 1)
                yield from site.release(task)
                yield ops.Delay(60)

        for cpu in range(6):
            kernel.spawn(worker, cpu=cpu)
        kernel.engine.call_at(
            30_000,
            lambda: kernel.patcher.switch_lock(
                "a.lock", lambda old: MCSLock(kernel.engine, name="mid-flight")
            ),
        )
        kernel.run()
        assert shared.peek() == 240


class TestShadowStore:
    def test_get_or_alloc_identity(self):
        shadow = ShadowStore()
        node = object()
        value = shadow.get_or_alloc(node, 1, dict)
        assert shadow.get_or_alloc(node, 1, dict) is value
        assert shadow.get(node, 1) is value

    def test_distinct_objects_distinct_shadows(self):
        shadow = ShadowStore()
        a, b = object(), object()
        shadow.set(a, 1, "A")
        shadow.set(b, 1, "B")
        assert shadow.get(a, 1) == "A"
        assert shadow.get(b, 1) == "B"

    def test_distinct_ids_distinct_shadows(self):
        shadow = ShadowStore()
        node = object()
        shadow.set(node, 1, "one")
        shadow.set(node, 2, "two")
        assert shadow.get(node, 1) == "one"
        assert shadow.get(node, 2) == "two"

    def test_free(self):
        shadow = ShadowStore()
        node = object()
        shadow.set(node, 1, 42)
        assert shadow.free(node, 1) == 42
        assert shadow.get(node, 1) is None

    def test_free_all(self):
        shadow = ShadowStore()
        objects = [object() for _ in range(5)]
        for obj in objects:
            shadow.set(obj, 7, 1)
            shadow.set(obj, 8, 2)
        assert shadow.free_all(7) == 5
        assert len(shadow) == 5  # id-8 shadows remain

    def test_default_when_missing(self):
        shadow = ShadowStore()
        assert shadow.get(object(), 1, default="d") == "d"
