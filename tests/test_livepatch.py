"""Live patching: patch objects, enable/disable, shadow variables."""

import pytest

from repro.kernel import Kernel
from repro.livepatch import LivePatch, PatchError, PatchOp, Patcher, ShadowStore
from repro.locks import MCSLock, ShflLock, TicketLock
from repro.locks.base import HOOK_CMP_NODE, HookSet
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    k = Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)
    k.add_lock("a.lock", ShflLock(k.engine, name="a"))
    return k


class TestPatcher:
    def test_attach_hooks_patch(self, kernel):
        hooks = HookSet()
        hooks.attach(HOOK_CMP_NODE, lambda env: (1, 5))
        patch = kernel.patcher.attach_hooks("a.lock", hooks)
        assert patch.applied
        site = kernel.locks.get("a.lock")
        assert site.core.impl.hooks is hooks
        assert kernel.patcher.history

    def test_disable_restores_previous_hooks(self, kernel):
        site = kernel.locks.get("a.lock")
        first = HookSet()
        site.attach_hooks(first)
        hooks = HookSet()
        patch = kernel.patcher.attach_hooks("a.lock", hooks)
        kernel.patcher.disable(patch.name)
        assert site.core.impl.hooks is first

    def test_switch_patch(self, kernel):
        kernel.patcher.switch_lock(
            "a.lock", lambda old: MCSLock(kernel.engine, name="new")
        )
        assert isinstance(kernel.locks.get("a.lock").core.impl, MCSLock)
        assert kernel.patcher.switch_latency("a.lock") is not None

    def test_patch_on_unpatchable_lock_rejected(self, kernel):
        kernel.locks.register("raw.lock", MCSLock(kernel.engine))
        with pytest.raises(PatchError, match="not a patchable"):
            kernel.patcher.attach_hooks("raw.lock", HookSet())

    def test_double_enable_rejected(self, kernel):
        patch = LivePatch("p", [PatchOp("a.lock", hooks=HookSet())])
        kernel.patcher.enable(patch)
        with pytest.raises(PatchError):
            kernel.patcher.enable(patch)

    def test_disable_unknown_rejected(self, kernel):
        with pytest.raises(PatchError):
            kernel.patcher.disable("ghost")

    def test_multi_op_patch(self, kernel):
        kernel.add_lock("b.lock", ShflLock(kernel.engine, name="b"))
        hooks = HookSet()
        patch = LivePatch(
            "combo",
            [
                PatchOp("a.lock", hooks=hooks),
                PatchOp("b.lock", new_impl_factory=lambda old: TicketLock(kernel.engine)),
            ],
        )
        kernel.patcher.enable(patch)
        assert kernel.locks.get("a.lock").core.impl.hooks is hooks
        assert isinstance(kernel.locks.get("b.lock").core.impl, TicketLock)

    def test_patch_under_load_preserves_correctness(self, kernel):
        site = kernel.locks.get("a.lock")
        shared = kernel.engine.cell(0)

        def worker(task):
            for _ in range(40):
                yield from site.acquire(task)
                value = yield ops.Load(shared)
                yield ops.Delay(100)
                yield ops.Store(shared, value + 1)
                yield from site.release(task)
                yield ops.Delay(60)

        for cpu in range(6):
            kernel.spawn(worker, cpu=cpu)
        kernel.engine.call_at(
            30_000,
            lambda: kernel.patcher.switch_lock(
                "a.lock", lambda old: MCSLock(kernel.engine, name="mid-flight")
            ),
        )
        kernel.run()
        assert shared.peek() == 240


class CountingMCS(MCSLock):
    """Records every acquisition, so a test can prove an abandoned
    pending implementation was never entered."""

    def __init__(self, engine, name="counting"):
        super().__init__(engine, name=name)
        self.acquisitions = 0

    def acquire(self, task):
        self.acquisitions += 1
        yield from super().acquire(task)


class TestRevertRacingDrain:
    """Satellite: Patcher.revert racing an in-flight switch_lock drain
    under injected stalls — no waiter may land on the abandoned impl."""

    def _contend(self, kernel, site, n_tasks=6, iters=30):
        shared = kernel.engine.cell(0)

        def worker(task):
            for _ in range(iters):
                yield from site.acquire(task)
                value = yield ops.Load(shared)
                yield ops.Delay(100)
                yield ops.Store(shared, value + 1)
                yield from site.release(task)
                yield ops.Delay(60)

        for cpu in range(n_tasks):
            kernel.spawn(worker, cpu=cpu)
        return shared, n_tasks * iters

    def test_revert_mid_drain_under_injected_stall(self, kernel):
        from repro.faults import FaultPlan, injected

        site = kernel.locks.get("a.lock")
        original = site.core.impl
        shared, expected = self._contend(kernel, site)
        abandoned = CountingMCS(kernel.engine, name="abandoned")

        plan = FaultPlan()
        # The first several drain completion attempts stall, far past
        # the revert point: the forward switch cannot engage before the
        # revert lands.
        plan.stall("livepatch.drain", delay_ns=50_000, times=5)

        def switch():
            kernel.patcher.switch_lock("a.lock", lambda old: abandoned)

        def revert():
            # The forward drain is guaranteed still in flight (stalled).
            assert site.core.pending_impl is abandoned
            (name,) = list(kernel.patcher.active)
            kernel.patcher.revert(name)

        kernel.engine.call_at(5_000, switch)
        kernel.engine.call_at(12_000, revert)
        with injected(plan):
            kernel.run()

        # Mutual exclusion held throughout the switch+revert dance...
        assert shared.peek() == expected
        # ...the site quiesced back to the pre-patch implementation...
        assert site.core.impl is original
        assert site.core.pending_impl is None
        assert site.core.stall_until is None
        assert not kernel.patcher.active
        # ...and not one waiter ever entered the abandoned impl.
        assert abandoned.acquisitions == 0

    def test_quiesce_deadline_bounds_a_stuck_drain(self, kernel):
        from repro.faults import FaultPlan, injected

        site = kernel.locks.get("a.lock")
        original = site.core.impl
        shared, expected = self._contend(kernel, site)
        abandoned = CountingMCS(kernel.engine, name="abandoned")

        plan = FaultPlan()
        plan.stall("livepatch.drain", delay_ns=400_000, times=8)
        with injected(plan):
            with pytest.raises(PatchError, match="failed to quiesce"):
                kernel.patcher.switch_lock(
                    "a.lock",
                    lambda old: abandoned,
                    quiesce_deadline_ns=10_000,
                    max_drain_retries=2,
                    drain_backoff_ns=5_000,
                )
        kernel.run()

        assert shared.peek() == expected
        assert site.core.impl is original
        assert site.core.pending_impl is None
        assert not kernel.patcher.active
        assert abandoned.acquisitions == 0
        # The bounded retries left their trace in the patch history.
        assert any("drain retry" in line for line in kernel.patcher.history)

    def test_quiesce_deadline_succeeds_after_transient_stall(self, kernel):
        from repro.faults import FaultPlan, injected

        site = kernel.locks.get("a.lock")
        shared, expected = self._contend(kernel, site)
        target = CountingMCS(kernel.engine, name="target")

        plan = FaultPlan()
        plan.stall("livepatch.drain", delay_ns=8_000, times=2)  # transient
        with injected(plan):
            kernel.patcher.switch_lock(
                "a.lock",
                lambda old: target,
                quiesce_deadline_ns=6_000,
                max_drain_retries=3,
                drain_backoff_ns=6_000,
            )
        assert site.core.impl is target
        assert site.core.pending_impl is None
        kernel.run()
        assert shared.peek() == expected
        assert target.acquisitions > 0


class TestShadowStore:
    def test_get_or_alloc_identity(self):
        shadow = ShadowStore()
        node = object()
        value = shadow.get_or_alloc(node, 1, dict)
        assert shadow.get_or_alloc(node, 1, dict) is value
        assert shadow.get(node, 1) is value

    def test_distinct_objects_distinct_shadows(self):
        shadow = ShadowStore()
        a, b = object(), object()
        shadow.set(a, 1, "A")
        shadow.set(b, 1, "B")
        assert shadow.get(a, 1) == "A"
        assert shadow.get(b, 1) == "B"

    def test_distinct_ids_distinct_shadows(self):
        shadow = ShadowStore()
        node = object()
        shadow.set(node, 1, "one")
        shadow.set(node, 2, "two")
        assert shadow.get(node, 1) == "one"
        assert shadow.get(node, 2) == "two"

    def test_free(self):
        shadow = ShadowStore()
        node = object()
        shadow.set(node, 1, 42)
        assert shadow.free(node, 1) == 42
        assert shadow.get(node, 1) is None

    def test_free_all(self):
        shadow = ShadowStore()
        objects = [object() for _ in range(5)]
        for obj in objects:
            shadow.set(obj, 7, 1)
            shadow.set(obj, 8, 2)
        assert shadow.free_all(7) == 5
        assert len(shadow) == 5  # id-8 shadows remain

    def test_default_when_missing(self):
        shadow = ShadowStore()
        assert shadow.get(object(), 1, default="d") == "d"
