"""Switchable call sites: drain semantics, trampoline costs, registry."""

import pytest

from repro import locks as L
from repro.locks.base import LockError
from repro.sim import Engine, Topology, ops


class TestSwitching:
    def test_switch_waits_for_drain(self, topo):
        eng = Engine(topo, seed=1)
        site = L.SwitchableLock(eng, L.MCSLock(eng, name="old"))
        new_impl = L.TicketLock(eng, name="new")

        def holder(task):
            yield from site.acquire(task)
            yield ops.Delay(10_000)
            yield from site.release(task)

        eng.spawn(holder, cpu=0)
        eng.call_at(1_000, lambda: site.request_switch(new_impl))
        eng.run()
        assert site.core.impl is new_impl
        # The switch could only engage after the holder released.
        assert site.core.switch_engaged_at >= 10_000
        assert site.core.last_switch_latency >= 9_000

    def test_new_acquirers_gated_during_switch(self, topo):
        eng = Engine(topo, seed=1)
        site = L.SwitchableLock(eng, L.MCSLock(eng))
        new_impl = L.MCSLock(eng, name="new")
        entry_time = {}

        def holder(task):
            yield from site.acquire(task)
            yield ops.Delay(5_000)
            yield from site.release(task)

        def latecomer(task):
            yield ops.Delay(2_000)  # arrives mid-transition
            yield from site.acquire(task)
            entry_time["t"] = task.engine.now
            entry_time["impl"] = site._acquired_impl[task.tid]
            yield from site.release(task)

        eng.spawn(holder, cpu=0)
        eng.spawn(latecomer, cpu=1)
        eng.call_at(1_000, lambda: site.request_switch(new_impl))
        eng.run()
        # The latecomer waited for the swap and used the new implementation.
        assert entry_time["t"] >= 5_000
        assert entry_time["impl"] is new_impl

    def test_mutual_exclusion_across_switch(self, topo):
        """No overlap between a holder on the old impl and one on the new."""
        eng = Engine(topo, seed=3)
        site = L.SwitchableLock(eng, L.MCSLock(eng))
        inside = {"n": 0, "max": 0}

        def worker(task):
            for _ in range(30):
                yield from site.acquire(task)
                inside["n"] += 1
                inside["max"] = max(inside["max"], inside["n"])
                yield ops.Delay(80)
                inside["n"] -= 1
                yield from site.release(task)
                yield ops.Delay(40)

        for cpu in range(6):
            eng.spawn(worker, cpu=cpu)
        eng.call_at(20_000, lambda: site.request_switch(L.ShflLock(eng, policy=L.NumaPolicy())))
        eng.run()
        assert inside["max"] == 1
        assert isinstance(site.core.impl, L.ShflLock)

    def test_double_switch_rejected(self, topo):
        eng = Engine(topo, seed=1)
        site = L.SwitchableLock(eng, L.MCSLock(eng))

        def holder(task):
            yield from site.acquire(task)
            yield ops.Delay(10_000)
            yield from site.release(task)

        eng.spawn(holder, cpu=0)

        def double():
            site.request_switch(L.MCSLock(eng))
            with pytest.raises(LockError):
                site.request_switch(L.MCSLock(eng))

        eng.call_at(100, double)
        eng.run()

    def test_on_switch_callbacks_fire(self, topo):
        eng = Engine(topo, seed=1)
        site = L.SwitchableLock(eng, L.MCSLock(eng))
        seen = []
        site.core._on_switch.append(lambda old, new: seen.append((old, new)))
        site.request_switch(L.TicketLock(eng))
        assert len(seen) == 1


class TestTrampolineCost:
    def _one_pass_time(self, patched):
        eng = Engine(Topology(sockets=1, cores_per_socket=2), seed=1)
        site = L.SwitchableLock(eng, L.MCSLock(eng))
        if patched:
            site.set_patched(True, trampoline_ns=40)

        def worker(task):
            for _ in range(100):
                yield from site.acquire(task)
                yield ops.Delay(50)
                yield from site.release(task)

        eng.spawn(worker, cpu=0)
        eng.run()
        return eng.now

    def test_patched_site_costs_more(self):
        unpatched = self._one_pass_time(False)
        patched = self._one_pass_time(True)
        assert patched >= unpatched + 100 * 2 * 40

    def test_unpatched_site_is_cheap(self):
        """An unpatched call site adds only the gate load."""
        unpatched = self._one_pass_time(False)
        # 100 iterations x ~(gate load + lock + CS): a loose sanity bound.
        assert unpatched < 100 * 400


class TestRWSwitchable:
    def test_rw_switch_under_readers(self, topo):
        eng = Engine(topo, seed=2)
        site = L.SwitchableRWLock(eng, L.RWSemaphore(eng))
        torn = []
        shared = eng.cell(0)

        def reader(task):
            for _ in range(40):
                yield from site.read_acquire(task)
                a = yield ops.Load(shared)
                yield ops.Delay(120)
                b = yield ops.Load(shared)
                if a != b:
                    torn.append((a, b))
                yield from site.read_release(task)

        def writer(task):
            for _ in range(10):
                yield from site.write_acquire(task)
                v = yield ops.Load(shared)
                yield ops.Delay(100)
                yield ops.Store(shared, v + 1)
                yield from site.write_release(task)
                yield ops.Delay(2_000)

        for cpu in range(6):
            eng.spawn(reader, cpu=cpu)
        eng.spawn(writer, cpu=7)
        eng.call_at(
            10_000,
            lambda: site.request_switch(L.NeutralRWLock(eng, name="switched-to")),
        )
        eng.run()
        assert torn == []
        assert shared.peek() == 10
        assert isinstance(site.core.impl, L.NeutralRWLock)


class TestRegistry:
    def test_register_get_select(self, engine):
        registry = L.LockRegistry()
        lock_a = registry.register("mm.mmap_lock", L.MCSLock(engine))
        registry.register("vfs.inode.1.lock", L.MCSLock(engine))
        registry.register("vfs.inode.2.lock", L.MCSLock(engine))
        assert registry.get("mm.mmap_lock") is lock_a
        assert len(registry.select("vfs.inode.*.lock")) == 2
        assert len(registry.select("*")) == 3
        assert registry.select_names("mm.*") == ["mm.mmap_lock"]
        assert registry.name_of(lock_a) == "mm.mmap_lock"

    def test_duplicate_name_rejected(self, engine):
        registry = L.LockRegistry()
        registry.register("x", L.MCSLock(engine))
        with pytest.raises(LockError):
            registry.register("x", L.MCSLock(engine))

    def test_missing_lock_raises(self):
        registry = L.LockRegistry()
        with pytest.raises(LockError):
            registry.get("nope")
