"""Learned guard baselines: EWMA math, serialization, dry-run guard,
and the daemon journal round-trip."""

import math

import pytest

from repro.concord.profiler import LockProfile, ProfileReport, WAIT_BUCKETS
from repro.controlplane import (
    BaselineGuard,
    LearnedBaseline,
    MetricBaseline,
    metric_value,
)


def _profile(name="svc.lock", acquired=100, avg_wait=1_000.0, avg_hold=500.0,
             p99_bucket=12):
    """A hand-built profile: all waits land in one log2 bucket so the
    histogram quantile is predictable."""
    histogram = [0] * WAIT_BUCKETS
    histogram[p99_bucket] = acquired
    return LockProfile(
        lock_name=name,
        attempts=acquired,
        contended=acquired // 2,
        acquired=acquired,
        wait_total_ns=int(avg_wait * acquired),
        hold_total_ns=int(avg_hold * acquired),
        releases=acquired,
        wait_histogram=tuple(histogram),
        per_socket_acquired=(acquired // 2, acquired - acquired // 2),
    )


def _report(profiles, duration_ns=100_000):
    return ProfileReport(list(profiles), started_ns=0, stopped_ns=duration_ns)


class TestMetricBaseline:
    def test_first_sample_sets_mean_zero_variance(self):
        mb = MetricBaseline(alpha=0.3)
        mb.update(42.0)
        assert mb.mean == 42.0
        assert mb.var == 0.0
        assert mb.samples == 1

    def test_west_recurrence_matches_hand_computation(self):
        # West (1979): diff = x - mean; incr = alpha*diff; mean += incr;
        # var = (1-alpha)*(var + diff*incr).
        alpha = 0.5
        mb = MetricBaseline(alpha=alpha)
        mean, var = 0.0, 0.0
        for i, x in enumerate((10.0, 20.0, 14.0, 30.0)):
            mb.update(x)
            if i == 0:
                mean, var = x, 0.0
            else:
                diff = x - mean
                incr = alpha * diff
                mean += incr
                var = (1 - alpha) * (var + diff * incr)
        assert mb.mean == pytest.approx(mean)
        assert mb.var == pytest.approx(var)
        assert mb.std == pytest.approx(math.sqrt(var))

    def test_constant_stream_has_zero_variance(self):
        mb = MetricBaseline(alpha=0.2)
        for _ in range(50):
            mb.update(700.0)
        assert mb.mean == pytest.approx(700.0)
        assert mb.std == pytest.approx(0.0)

    def test_budget_is_mean_plus_k_sigma_with_floor(self):
        mb = MetricBaseline(alpha=0.5)
        for x in (100.0, 120.0, 80.0, 110.0):
            mb.update(x)
        assert mb.budget(3.0) == pytest.approx(mb.mean + 3.0 * mb.std)
        # A near-zero-variance metric gets the floor instead of a
        # zero-tolerance gate.
        flat = MetricBaseline(alpha=0.5)
        for _ in range(10):
            flat.update(100.0)
        assert flat.budget(3.0, floor_ns=50.0) == pytest.approx(150.0)

    def test_entry_round_trip(self):
        mb = MetricBaseline(alpha=0.3)
        for x in (5.0, 9.0, 7.0):
            mb.update(x)
        restored = MetricBaseline.from_entry(0.3, mb.to_entry())
        assert restored.mean == pytest.approx(mb.mean)
        assert restored.var == pytest.approx(mb.var)
        assert restored.samples == mb.samples


class TestLearnedBaseline:
    def test_observe_learns_every_metric(self):
        lb = LearnedBaseline(min_samples=1)
        report = _report([_profile()])
        assert lb.observe(report) == 1
        profile = report.profiles[0]
        for metric in lb.metrics:
            state = lb.get("svc.lock", metric)
            assert state is not None
            assert state.mean == pytest.approx(metric_value(profile, metric))

    def test_cold_windows_are_skipped(self):
        lb = LearnedBaseline(min_acquired=20)
        assert lb.observe(_report([_profile(acquired=5)])) == 0
        assert lb.lock_names() == []

    def test_budget_abstains_until_min_samples(self):
        lb = LearnedBaseline(min_samples=3)
        for _ in range(2):
            lb.observe(_report([_profile()]))
        assert lb.budget("svc.lock", "avg_wait_ns", 3.0) is None
        lb.observe(_report([_profile()]))
        assert lb.budget("svc.lock", "avg_wait_ns", 3.0) is not None

    def test_serialize_load_round_trip(self):
        lb = LearnedBaseline(alpha=0.4, min_samples=1)
        for wait in (900.0, 1_100.0, 1_000.0):
            lb.observe(_report([_profile(avg_wait=wait)]))
        clone = LearnedBaseline(alpha=0.4, min_samples=1)
        clone.load(lb.serialize())
        for metric in lb.metrics:
            assert clone.get("svc.lock", metric).mean == pytest.approx(
                lb.get("svc.lock", metric).mean
            )
            assert clone.get("svc.lock", metric).samples == lb.get(
                "svc.lock", metric
            ).samples


class TestBaselineGuard:
    def _learned(self, avg_wait=1_000.0, n=5):
        lb = LearnedBaseline(min_samples=3)
        for _ in range(n):
            lb.observe(_report([_profile(avg_wait=avg_wait)]))
        return lb

    def test_dry_run_attributes_but_never_fails(self):
        guard = BaselineGuard(self._learned(), dry_run=True)
        baseline = _report([_profile()])
        hot = _report([_profile(avg_wait=50_000.0)])
        verdict = guard.evaluate(baseline, hot)
        assert verdict.ok  # dry run: breach recorded, verdict passes
        assert verdict.attributed
        assert verdict.attributed[0].metric == "avg_wait_ns"

    def test_enforcing_mode_fails_on_breach(self):
        guard = BaselineGuard(self._learned(), dry_run=False)
        verdict = guard.evaluate(
            _report([_profile()]), _report([_profile(avg_wait=50_000.0)])
        )
        assert not verdict.ok

    def test_within_budget_passes_clean(self):
        guard = BaselineGuard(self._learned(), dry_run=False)
        verdict = guard.evaluate(_report([_profile()]), _report([_profile()]))
        assert verdict.ok
        assert not verdict.breaches

    def test_abstains_with_no_learned_state(self):
        guard = BaselineGuard(LearnedBaseline(), dry_run=False)
        verdict = guard.evaluate(_report([_profile()]), _report([_profile()]))
        assert verdict.ok
        assert not verdict.ready  # nothing could be judged


class TestDaemonIntegration:
    def _world(self, tmp_path):
        from repro.concord import Concord
        from repro.controlplane import Concordd, PolicyJournal
        from repro.kernel import Kernel
        from repro.locks import MCSLock
        from repro.sim import Topology

        kernel = Kernel(Topology(sockets=2, cores_per_socket=2), seed=7)
        kernel.add_lock("svc.lock", MCSLock(kernel.engine, name="svc"))
        concord = Concord(kernel)
        journal = PolicyJournal(str(tmp_path / "journal.jsonl"))
        daemon = Concordd(
            concord,
            journal=journal,
            baselines=LearnedBaseline(min_samples=1),
        )
        return kernel, concord, daemon, journal

    def test_observe_report_journals_full_state(self, tmp_path):
        _, _, daemon, journal = self._world(tmp_path)
        assert daemon.observe_report(_report([_profile()])) == 1
        entries = [e for e in journal.entries() if e.get("kind") == "baseline"]
        assert len(entries) == 1
        assert "svc.lock" in entries[0]["state"]["locks"]

    def test_recover_restores_learned_state(self, tmp_path):
        from repro.concord import Concord
        from repro.controlplane import Concordd, PolicyJournal

        kernel, concord, daemon, journal = self._world(tmp_path)
        for wait in (900.0, 1_200.0):
            daemon.observe_report(_report([_profile(avg_wait=wait)]))
        learned_mean = daemon.baselines.get("svc.lock", "avg_wait_ns").mean

        daemon_b = Concordd(
            concord,
            journal=PolicyJournal(str(tmp_path / "journal.jsonl")),
            baselines=LearnedBaseline(min_samples=1),
        )
        daemon_b.recover()
        restored = daemon_b.baselines.get("svc.lock", "avg_wait_ns")
        assert restored is not None
        assert restored.mean == pytest.approx(learned_mean)
        assert restored.samples == 2
