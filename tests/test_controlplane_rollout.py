"""concordd canary rollout: promotion, SLO-guarded rollback, cleanup.

The centerpiece is rollback **under contention**: a client switches the
shard locks to a pathologically slow implementation mid-benchmark, the
SLO guard trips inside the canary window, and the livepatch layer must
return every canary lock to its pre-canary implementation (same object,
not a lookalike) without losing a single waiter.
"""

import pytest

from repro.concord import Concord
from repro.concord.policies import make_numa_policy
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    Concordd,
    LifecycleError,
    PolicyState,
    PolicySubmission,
    SLOGuard,
)
from repro.kernel import Kernel
from repro.locks import ShflLock, SpinParkMutex
from repro.locks.base import HOOK_CMP_NODE
from repro.sim import Topology, ops
from repro.tools.concordd import bad_numa_submission
from repro.userspace import PolicyClient

RETURN_ZERO = "def f(ctx):\n    return 0\n"
SELECTOR = "svc.*.lock"


class MolassesMutex(SpinParkMutex):
    """A deliberately terrible lock: every acquisition drags the
    critical section out by 2 µs (Table 1's hazard, as an impl)."""

    def acquire(self, task):
        yield from super().acquire(task)
        yield ops.Delay(2_000)


def molasses(old):
    return MolassesMutex(old.engine, name=f"molasses.{old.name}", spin_budget_ns=0)


@pytest.fixture
def world():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=11)
    for index in range(4):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    daemon = Concordd(concord, guard=SLOGuard(max_avg_wait_regression=0.20))
    return kernel, concord, daemon


def hammer(kernel, stop_at, tasks_per_lock=2, cs_ns=300):
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names(SELECTOR):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


class TestRollbackUnderContention:
    def test_impl_switch_reverts_and_loses_no_waiters(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        originals = {
            name: kernel.locks.get(name).core.impl
            for name in kernel.locks.select_names(SELECTOR)
        }
        tasks = hammer(kernel, stop_at=kernel.now + 500_000)

        client.submit(
            PolicySubmission(
                impl_factory=molasses, name="molasses", lock_selector=SELECTOR
            )
        )
        record = client.rollout(
            "molasses",
            baseline_ns=60_000,
            canary_ns=160_000,
            check_every_ns=20_000,
        )

        assert record.state is PolicyState.ROLLED_BACK
        assert record.verdict.ready and not record.verdict.ok
        assert any("avg wait regressed" in b for b in record.verdict.breaches)
        # The guard tripped inside the canary window, not at its end.
        cause = daemon.audit.for_policy("molasses")[-1].cause
        assert "mid-benchmark" in cause

        # The canary subset really ran the bad implementation...
        assert record.canary_locks == ["svc.shard0.lock", "svc.shard1.lock"]
        assert len(record.patches) == len(record.canary_locks)

        kernel.run()  # drain the workload to quiescence

        # ...and every lock is provably back on its pre-canary impl.
        for name, original in originals.items():
            site = kernel.locks.get(name)
            assert site.core.impl is original, name
            assert site.core.pending_impl is None
            assert not site.locked
        # The forward patches are no longer active (reverted, not leaked).
        assert not kernel.patcher.active

        # No waiters lost: every worker made progress and finished.
        assert all(t.stats["ops"] > 0 for t in tasks)
        total = sum(t.stats["ops"] for t in tasks)
        assert total > 100  # the workload actually contended

    def test_bad_hook_bundle_rolls_back_and_unloads(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "alice")
        hammer(kernel, stop_at=kernel.now + 700_000)

        client.submit(bad_numa_submission(SELECTOR))
        record = client.rollout(
            "bad-numa",
            baseline_ns=80_000,
            canary_ns=200_000,
            check_every_ns=40_000,
        )

        assert record.state is PolicyState.ROLLED_BACK
        # Acceptance: the full lifecycle is in the audit log, in order.
        assert daemon.audit.history("bad-numa") == [
            PolicyState.SUBMITTED,
            PolicyState.VERIFIED,
            PolicyState.CANARY,
            PolicyState.ROLLED_BACK,
        ]
        # Both bundle programs are gone from the framework and bpffs.
        assert "bad-numa" not in concord.policies
        assert "bad-numa.audit" not in concord.policies
        for name in record.canary_locks:
            for hook in ("cmp_node", "lock_acquired"):
                assert concord.chain(name, hook) == ()
        kernel.run()


class TestPromotion:
    def test_good_policy_goes_active_fleet_wide(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "bob")
        hammer(kernel, stop_at=kernel.now + 700_000)

        client.submit(
            PolicySubmission(
                spec=make_numa_policy(lock_selector=SELECTOR, name="numa-good")
            )
        )
        record = client.rollout(
            "numa-good",
            baseline_ns=80_000,
            canary_ns=200_000,
            check_every_ns=40_000,
        )

        assert record.state is PolicyState.ACTIVE
        assert record.verdict.ok
        assert daemon.audit.history("numa-good") == [
            PolicyState.SUBMITTED,
            PolicyState.VERIFIED,
            PolicyState.CANARY,
            PolicyState.ACTIVE,
        ]
        # Promoted beyond the canary subset: live on all four shards.
        loaded = concord.policies["numa-good"]
        assert sorted(loaded.attached_locks) == sorted(
            kernel.locks.select_names(SELECTOR)
        )
        kernel.run()

    def test_quiet_canary_promotes_on_verifier_trust(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "bob")
        # No workload at all: the guard never becomes ready.
        client.submit(
            PolicySubmission(
                spec=PolicySpec(
                    name="idle",
                    hook=HOOK_CMP_NODE,
                    source=RETURN_ZERO,
                    lock_selector=SELECTOR,
                )
            )
        )
        record = client.rollout("idle", baseline_ns=10_000, canary_ns=10_000)
        assert record.state is PolicyState.ACTIVE
        assert not record.verdict.ready
        assert "too quiet" in daemon.audit.for_policy("idle")[-1].cause


class TestLifecycleIntegration:
    def test_rollout_requires_verified(self, world):
        _, _, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        with pytest.raises(LifecycleError, match="never submitted|no policy"):
            client.rollout("phantom")

        sub = PolicySubmission(
            spec=PolicySpec(
                name="once",
                hook=HOOK_CMP_NODE,
                source=RETURN_ZERO,
                lock_selector=SELECTOR,
            )
        )
        client.submit(sub)
        client.withdraw("once")  # VERIFIED -> RETIRED
        with pytest.raises(LifecycleError, match="needs state VERIFIED"):
            client.rollout("once")

    def test_withdraw_active_policy_cleans_up(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        hammer(kernel, stop_at=kernel.now + 600_000)
        client.submit(
            PolicySubmission(
                spec=make_numa_policy(lock_selector=SELECTOR, name="tidy")
            )
        )
        record = client.rollout("tidy", baseline_ns=80_000, canary_ns=160_000)
        assert record.state is PolicyState.ACTIVE

        client.withdraw("tidy")
        assert record.state is PolicyState.RETIRED
        assert "tidy" not in concord.policies
        for name in kernel.locks.select_names(SELECTOR):
            assert concord.chain(name, HOOK_CMP_NODE) == ()
        kernel.run()

    def test_withdraw_mid_canary_reverts_impl(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        originals = {
            name: kernel.locks.get(name).core.impl
            for name in kernel.locks.select_names(SELECTOR)
        }
        hammer(kernel, stop_at=kernel.now + 400_000)
        client.submit(
            PolicySubmission(
                impl_factory=molasses, name="oops", lock_selector=SELECTOR
            )
        )
        # A forgiving guard lets the bad impl reach ACTIVE fleet-wide...
        daemon.guard = SLOGuard(max_avg_wait_regression=1e9)
        record = client.rollout("oops", baseline_ns=40_000, canary_ns=80_000)
        assert record.state is PolicyState.ACTIVE
        assert len(record.patches) == 4

        # ...and withdraw still restores every original implementation.
        client.withdraw("oops")
        kernel.run()
        for name, original in originals.items():
            assert kernel.locks.get(name).core.impl is original, name
        assert not kernel.patcher.active
