"""The fleet over the fabric: partitions, deadlines, convergence.

Where :mod:`tests.test_netsim` exercises the network layer alone, this
file wires it into the stacks that ride it: the coordinator reaching
members through a :class:`Fabric`, a :class:`ReplicaGroup` whose quorum
traffic can be cut, and — the headline property — that after *any*
seeded :class:`PartitionSchedule` heals, scrub plus one anti-entropy
write converge every copy to the same committed prefix and no stale
leader's write ever lands.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import PolicyJournal
from repro.faults import (
    CHAOS_NET_SITES,
    SITE_NET_LINK_DELIVER,
    SITE_NET_PARTITION_FLIP,
    FaultPlan,
    InjectedCrash,
    injected,
    sample_plan,
)
from repro.fleet import FleetCoordinator, FleetRolloutState, RolloutPlanner
from repro.netsim import Fabric, LinkModel, sample_partition_schedule
from repro.replication import NoQuorum, ReplicaGroup, StaleLeaderFenced
from repro.replication.site import SiteState
from repro.storage import Scrubber

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    good_factory,
    learn,
    spawn_shard_workload,
    three_kernel_fleet,
)
from tests.test_chaos import assert_converged_and_debt_free

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)


def fleet_events(journal, event=None):
    entries = [e for e in journal.entries() if e.get("kind") == "fleet"]
    if event is not None:
        entries = [e for e in entries if e.get("event") == event]
    return entries


# ----------------------------------------------------------------------
# Coordinator over the fabric
# ----------------------------------------------------------------------
def test_flat_fabric_changes_nothing():
    """A coordinator routed through an unconfigured fabric reaches the
    same verdict with the same outcomes as one with no fabric — the
    opt-in default is byte-identical."""
    bare_fleet = three_kernel_fleet()
    bare = FleetCoordinator(bare_fleet).execute(
        RolloutPlanner(**PLANNER).plan("numa-good", learn(bare_fleet)),
        good_factory,
        **ROLLOUT_KWARGS,
    )

    fabric = Fabric(seed=99)
    wired_fleet = three_kernel_fleet()
    wired = FleetCoordinator(wired_fleet, fabric=fabric).execute(
        RolloutPlanner(**PLANNER).plan("numa-good", learn(wired_fleet)),
        good_factory,
        **ROLLOUT_KWARGS,
    )

    assert bare.state is wired.state is FleetRolloutState.COMPLETE
    assert bare.outcomes == wired.outcomes
    assert bare.completed_waves == wired.completed_waves
    # The traffic really crossed the fabric — and none of it was lost.
    assert fabric.delivered > 0 and fabric.rejected == 0


def test_partition_mid_rollout_quarantines_and_books_debt():
    """A timed partition cuts one member at its bake: the coordinator's
    envelope exhausts, the loss is journaled *classified*, the member
    is quarantined, and the patch it holds becomes revert debt."""
    fleet = three_kernel_fleet()
    fabric = Fabric(seed=5)
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal, fabric=fabric)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))

    kill = FaultPlan(seed=5, name="cut-k2")
    kill.stall(
        SITE_NET_PARTITION_FLIP,
        delay_ns=2_000_000,  # outlives the retry backoff: a real outage
        times=1,
        match={"dst": "k2", "op": "bake"},
    )
    with injected(kill):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert fabric.flips == 1 and fabric.rejected > 0
    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.unreachable_kernels() == ["k2"]
    assert fleet.is_quarantined("k2")
    assert [(d["kernel"], d["policy"]) for d in coord.debt] == [("k2", "numa-good")]

    (exhausted,) = fleet_events(journal, "rpc-exhausted")
    assert exhausted["kernel"] == "k2" and exhausted["op"] == "bake"
    assert exhausted["classification"] == "unreachable"
    assert exhausted["attempts"] == 2  # first try + member_retries
    assert fleet_events(journal, "quarantine")[0]["kernel"] == "k2"
    assert fleet_events(journal, "revert-debt")[0]["kernel"] == "k2"

    # Heal, reinstate, drain: the debt is settled and journaled so.
    fabric.heal()
    coord.reinstate("k2")
    coord.drain_debt()
    assert not coord.debt
    assert fleet_events(journal, "debt-drained")


def test_slow_member_exhausts_deadline_not_attempts():
    """A member that stalls just under forever: per-delivery latency
    beyond the per-call timeout, retried until the *total* simulated
    deadline — not the attempt budget — gives out.  The journal entry
    says ``deadline-exceeded``, distinct from ``unreachable``."""
    fleet = three_kernel_fleet()
    fabric = Fabric(seed=5)
    journal = PolicyJournal()
    coord = FleetCoordinator(
        fleet,
        journal=journal,
        fabric=fabric,
        member_retries=4,
        rpc_timeout_ns=5_000,
        rpc_deadline_ns=40_000,
        rpc_jitter_seed=5,
    )
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))

    lag = FaultPlan(seed=5, name="lag-k2")
    lag.stall(SITE_NET_LINK_DELIVER, delay_ns=50_000, times=None, match={"dst": "k2"})
    with injected(lag):
        rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    assert rollout.state is FleetRolloutState.HALTED
    assert rollout.unreachable_kernels() == ["k2"]
    entries = fleet_events(journal, "rpc-exhausted")
    assert entries and all(e["kernel"] == "k2" for e in entries)
    first = entries[0]
    assert first["classification"] == "deadline-exceeded"
    assert first["attempts"] < 5  # time ran out with retries to spare
    assert first["elapsed_ns"] >= 40_000


# ----------------------------------------------------------------------
# Replica groups: partitioned is not failed
# ----------------------------------------------------------------------
def test_group_distinguishes_partitioned_site_from_failed():
    fabric = Fabric(seed=2)
    group = ReplicaGroup("k9", nr_sites=3, fabric=fabric)
    group.append({"n": 1})
    fabric.cut("k9", "k9/site2")  # quorum traffic origin -> one copy
    group.append({"n": 2})  # site2's ack dies on the cut link
    group.fail_site("k9/site1", cause="operator kill")

    health = group.health()["sites"]
    assert health["k9/site2"]["state"] == "DOWN"
    assert health["k9/site2"]["partitioned"] is True
    assert "partitioned" in health["k9/site2"]["down_cause"]
    assert health["k9/site1"]["state"] == "DOWN"
    assert health["k9/site1"]["partitioned"] is False
    assert health["k9/site1"]["down_cause"] == "operator kill"
    assert "[partitioned, log intact]" in group.site("site2").describe()
    assert "[partitioned, log intact]" not in group.site("site1").describe()

    # Heal + recover + one committed write: the cut copy catches up.
    fabric.heal()
    group.recover_site("site2")
    group.recover_site("site1")
    group.append({"n": 3})
    assert all(s.state is SiteState.UP for s in group.sites)
    for site in group.sites:
        assert site.committed_entries(group.commit_index) == group.entries()


def test_partition_of_quorum_fails_the_write_cleanly():
    fabric = Fabric(seed=2)
    group = ReplicaGroup("k9", nr_sites=3, fabric=fabric)
    group.append({"n": 1})
    fabric.partition([("k9",), ("k9/site0", "k9/site1", "k9/site2")])
    with pytest.raises(NoQuorum):
        group.append({"n": 2})
    assert group.commit_index == 1  # a failed append commits nothing
    # Every copy is down-as-partitioned, none down-as-failed.
    assert all(s.down_partitioned for s in group.sites)


# ----------------------------------------------------------------------
# The convergence property (satellite: any healed schedule converges)
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_any_healed_schedule_converges(seed):
    """For ANY seeded partition schedule: while it plays, writes either
    quorum-commit or fail typed (never a stale-leader escape); after it
    heals, recovery + one anti-entropy write + a scrub leave every site
    holding the same committed prefix."""
    fabric = Fabric(seed=seed)
    fabric.set_model(LinkModel(latency_ns=120, jitter_ns=60))
    group = ReplicaGroup("g", nr_sites=3, fabric=fabric)
    stale = group.lease()
    endpoints = ["g"] + [s.name for s in group.sites]
    total_ns = 600_000
    fabric.schedule = sample_partition_schedule(seed, endpoints, total_ns)

    committed = 0
    for step in range(1, 25):
        fabric.advance(step * 50_000)  # generous: outlives any sampled split
        for site in group.sites:
            if site.down_partitioned and all(
                fabric.reachable("g", s.name) for s in group.sites
            ):
                group.recover_site(site.name)
        try:
            group.append({"step": step})
            committed += 1
        except (NoQuorum, StaleLeaderFenced) as exc:
            # NoQuorum is legal mid-split; a stale-leader escape on a
            # leaseless quorum write never is.
            assert isinstance(exc, NoQuorum), exc

    # The schedule always ends healed; make sure time passed its tail.
    fabric.advance(10 * total_ns)
    assert fabric.applied and fabric.applied[-1].action == "heal"
    for site in group.sites:
        if site.state is SiteState.DOWN:
            group.recover_site(site.name)
    group.append({"kind": "anti-entropy"})  # catch-up ships with the commit

    if group.lease_epoch > stale.epoch:
        before = group.commit_index
        with pytest.raises(StaleLeaderFenced):
            group.append({"kind": "stale-write"}, lease=stale)
        assert group.commit_index == before  # fenced writes land nowhere

    assert Scrubber().scrub_group(group).ok
    reference = group.entries()
    assert len(reference) >= committed + 1
    for site in group.sites:
        assert site.committed_entries(group.commit_index) == reference


# ----------------------------------------------------------------------
# Sampled network chaos (seeded via --chaos-seed)
# ----------------------------------------------------------------------
def test_net_sites_default_keeps_existing_plans_identical(chaos_seed):
    """The chaos sampler's regression contract: with ``net_sites``
    left empty, plans for existing seeds are byte-identical, and
    enabling it only ever *appends* rules."""
    base = [repr(r) for r in sample_plan(chaos_seed).rules]
    off = [repr(r) for r in sample_plan(chaos_seed, net_sites=()).rules]
    assert base == off
    wired = [repr(r) for r in sample_plan(chaos_seed, net_sites=CHAOS_NET_SITES).rules]
    assert wired[: len(base)] == base
    assert len(wired) in (len(base), len(base) + 1)


def test_chaos_partitions_never_split_fleet_or_strand_debt(chaos_seed):
    """Sampled chaos with the network sites armed, the whole rollout
    routed through a fabric: whatever splits, after heal + recovery the
    fleet is uniform and every journaled revert debt is drained."""
    fleet = three_kernel_fleet(journal=PolicyJournal())
    fabric = Fabric(seed=chaos_seed)
    journal = PolicyJournal()  # off-fabric: a halt must be recordable
    coord = FleetCoordinator(
        fleet, journal=journal, fabric=fabric, rpc_jitter_seed=chaos_seed
    )
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))

    chaos = sample_plan(chaos_seed, net_sites=CHAOS_NET_SITES)
    with injected(chaos):
        try:
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # typed failure: rollout aborted, invariants must hold

    # Chaos cleared; timed flips self-heal, operator heals the rest and
    # re-arms the workload the burned sim-time drained.
    fabric.heal()
    for member in fleet.members():
        spawn_shard_workload(member.kernel, member.kernel.now + 6_000_000, 2)
    assert_converged_and_debt_free(fleet, journal, "numa-good")
