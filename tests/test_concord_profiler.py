"""Dynamic lock profiling (§3.2): selectivity, accuracy, cost."""

import pytest

from repro.concord import Concord, LockProfiler
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology, ops


def make_kernel():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=3)
    kernel.add_lock("hot.lock", ShflLock(kernel.engine, name="hot"))
    kernel.add_lock("cold.lock", ShflLock(kernel.engine, name="cold"))
    return kernel


def hammer(kernel, lock_name, n_tasks=4, iters=30, cs_ns=400):
    site = kernel.locks.get(lock_name)

    def worker(task):
        for _ in range(iters):
            yield from site.acquire(task)
            yield ops.Delay(cs_ns)
            yield from site.release(task)
            yield ops.Delay(100)

    for cpu in range(n_tasks):
        kernel.spawn(worker, cpu=cpu)


class TestProfiling:
    def test_counts_match_reality(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=4, iters=30)
        kernel.run()
        report = session.stop()
        profile = report.by_name("hot.lock")
        assert profile.acquired == 4 * 30
        assert profile.releases == 4 * 30
        assert profile.attempts == 4 * 30

    def test_hold_time_approximates_cs(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=1, iters=20, cs_ns=700)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        # Hold time = CS + release-side hook costs; must be ~700ns.
        assert 700 <= profile.avg_hold_ns <= 1500

    def test_contention_detected(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=6, iters=20, cs_ns=1_000)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        assert profile.contended > 0
        assert profile.avg_wait_ns > 0

    def test_single_instance_selectivity(self):
        """The paper's point: profile ONE lock, not all of them."""
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=2, iters=10)
        hammer(kernel, "cold.lock", n_tasks=2, iters=10)
        kernel.run()
        report = session.stop()
        assert report.by_name("hot.lock").acquired == 20
        assert report.by_name("cold.lock") is None
        # And the unprofiled lock carries no hooks at all.
        assert kernel.locks.get("cold.lock").core.impl.hooks is None

    def test_wildcard_profiles_everything(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("*")
        hammer(kernel, "hot.lock", n_tasks=2, iters=10)
        hammer(kernel, "cold.lock", n_tasks=2, iters=5)
        kernel.run()
        report = session.stop()
        assert report.by_name("hot.lock").acquired == 20
        assert report.by_name("cold.lock").acquired == 10
        assert report.hottest() is not None

    def test_stop_detaches_programs(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        session.stop()
        assert kernel.locks.get("hot.lock").core.impl.hooks is None
        with pytest.raises(RuntimeError):
            session.stop()

    def test_profiling_costs_time(self):
        """Table 1 hazard: profiling hooks lengthen the critical path."""

        def run(profiled):
            kernel = make_kernel()
            concord = Concord(kernel)
            if profiled:
                LockProfiler(concord).start("hot.lock")
            hammer(kernel, "hot.lock", n_tasks=2, iters=50)
            return kernel.run()

        assert run(True) > run(False)

    def test_report_format(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=2, iters=5)
        kernel.run()
        text = session.stop().format()
        assert "hot.lock" in text
        assert "avg hold" in text
