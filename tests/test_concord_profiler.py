"""Dynamic lock profiling (§3.2): selectivity, accuracy, cost —
plus the log₂ wait histograms and per-socket counters the guard
library's tail and fairness oracles consume."""

import pytest

from repro.concord import Concord, LockProfiler
from repro.concord.profiler import (
    LockProfile,
    MAX_SOCKETS,
    ProfilerStall,
    WAIT_BUCKETS,
    bucket_bounds,
)
from repro.faults import FaultPlan, SITE_PROFILER_HISTOGRAM, injected
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology, ops


def make_kernel():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=3)
    kernel.add_lock("hot.lock", ShflLock(kernel.engine, name="hot"))
    kernel.add_lock("cold.lock", ShflLock(kernel.engine, name="cold"))
    return kernel


def hammer(kernel, lock_name, n_tasks=4, iters=30, cs_ns=400):
    site = kernel.locks.get(lock_name)

    def worker(task):
        for _ in range(iters):
            yield from site.acquire(task)
            yield ops.Delay(cs_ns)
            yield from site.release(task)
            yield ops.Delay(100)

    for cpu in range(n_tasks):
        kernel.spawn(worker, cpu=cpu)


class TestProfiling:
    def test_counts_match_reality(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=4, iters=30)
        kernel.run()
        report = session.stop()
        profile = report.by_name("hot.lock")
        assert profile.acquired == 4 * 30
        assert profile.releases == 4 * 30
        assert profile.attempts == 4 * 30

    def test_hold_time_approximates_cs(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=1, iters=20, cs_ns=700)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        # Hold time = CS + release-side hook costs; must be ~700ns.
        assert 700 <= profile.avg_hold_ns <= 1500

    def test_contention_detected(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=6, iters=20, cs_ns=1_000)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        assert profile.contended > 0
        assert profile.avg_wait_ns > 0

    def test_single_instance_selectivity(self):
        """The paper's point: profile ONE lock, not all of them."""
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=2, iters=10)
        hammer(kernel, "cold.lock", n_tasks=2, iters=10)
        kernel.run()
        report = session.stop()
        assert report.by_name("hot.lock").acquired == 20
        assert report.by_name("cold.lock") is None
        # And the unprofiled lock carries no hooks at all.
        assert kernel.locks.get("cold.lock").core.impl.hooks is None

    def test_wildcard_profiles_everything(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("*")
        hammer(kernel, "hot.lock", n_tasks=2, iters=10)
        hammer(kernel, "cold.lock", n_tasks=2, iters=5)
        kernel.run()
        report = session.stop()
        assert report.by_name("hot.lock").acquired == 20
        assert report.by_name("cold.lock").acquired == 10
        assert report.hottest() is not None

    def test_stop_detaches_programs(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        session.stop()
        assert kernel.locks.get("hot.lock").core.impl.hooks is None
        with pytest.raises(RuntimeError):
            session.stop()

    def test_profiling_costs_time(self):
        """Table 1 hazard: profiling hooks lengthen the critical path."""

        def run(profiled):
            kernel = make_kernel()
            concord = Concord(kernel)
            if profiled:
                LockProfiler(concord).start("hot.lock")
            hammer(kernel, "hot.lock", n_tasks=2, iters=50)
            return kernel.run()

        assert run(True) > run(False)

    def test_report_format(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=2, iters=5)
        kernel.run()
        text = session.stop().format()
        assert "hot.lock" in text
        assert "avg hold" in text
        assert "p99" in text


def synthetic_profile(name="syn.lock", histogram=None, per_socket=None, acquired=None):
    histogram = tuple(histogram or ())
    histogram += (0,) * (WAIT_BUCKETS - len(histogram))
    per_socket = tuple(per_socket or ())
    per_socket += (0,) * (MAX_SOCKETS - len(per_socket))
    count = acquired if acquired is not None else max(sum(histogram), 1)
    return LockProfile(
        lock_name=name,
        attempts=count,
        contended=sum(histogram),
        acquired=count,
        wait_total_ns=sum(
            c * int(sum(bucket_bounds(i)) // 2) for i, c in enumerate(histogram)
        ),
        hold_total_ns=count * 500,
        releases=count,
        wait_histogram=histogram,
        per_socket_acquired=per_socket,
    )


class TestWaitHistograms:
    def test_buckets_are_log2(self):
        assert bucket_bounds(0) == (0.0, 2.0)
        assert bucket_bounds(1) == (2.0, 4.0)
        assert bucket_bounds(10) == (1024.0, 2048.0)
        for i in range(WAIT_BUCKETS - 1):
            assert bucket_bounds(i)[1] == bucket_bounds(i + 1)[0]

    def test_histogram_counts_contended_waits(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=6, iters=20, cs_ns=1_000)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        # One histogram sample per measured wait, never more than the
        # acquisition count (uncontended fast paths record no wait).
        assert 0 < sum(profile.wait_histogram) <= profile.acquired
        # The mass sits in buckets consistent with the measured average.
        weighted = sum(
            count * sum(bucket_bounds(index)) / 2
            for index, count in enumerate(profile.wait_histogram)
        )
        approx_avg = weighted / sum(profile.wait_histogram)
        true_avg = profile.wait_total_ns / sum(profile.wait_histogram)
        assert 0.5 * true_avg <= approx_avg <= 2.0 * true_avg

    def test_quantiles_are_monotone_and_bracket_the_mass(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=6, iters=30, cs_ns=800)
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        p50, p90, p99 = (profile.quantile(q) for q in (0.5, 0.9, 0.99))
        assert 0 < p50 <= p90 <= p99 == profile.p99_wait_ns
        top = max(i for i, c in enumerate(profile.wait_histogram) if c)
        assert p99 <= bucket_bounds(top)[1]

    def test_quantile_interpolates_within_bucket(self):
        # 100 waits in [1024, 2048): rank 50 sits halfway through the
        # bucket's span, rank ~99 near its top.
        profile = synthetic_profile(histogram=[0] * 10 + [100])
        assert profile.quantile(0.0) == 1024.0
        assert profile.quantile(0.5) == pytest.approx(1536.0)
        assert profile.quantile(1.0) == pytest.approx(2048.0)
        assert 2027.0 < profile.quantile(0.99) < 2048.0

    def test_quantile_with_no_samples_is_zero(self):
        assert synthetic_profile(histogram=[], acquired=5).quantile(0.99) == 0.0

    def test_per_socket_counts_sum_to_acquisitions(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=8, iters=10)  # cpus span both sockets
        kernel.run()
        profile = session.stop().by_name("hot.lock")
        assert sum(profile.per_socket_acquired) == profile.acquired
        assert sum(1 for c in profile.per_socket_acquired if c) >= 2

    def test_histogram_fault_site_stalls_live_snapshots_only(self):
        kernel = make_kernel()
        concord = Concord(kernel)
        session = LockProfiler(concord).start("hot.lock")
        hammer(kernel, "hot.lock", n_tasks=4, iters=20)
        kernel.run()
        plan = FaultPlan(seed=5)
        plan.fail(SITE_PROFILER_HISTOGRAM, times=1)
        with injected(plan):
            with pytest.raises(ProfilerStall):
                session.snapshot()
            # The final collect runs quiesced (active=False): the same
            # armed site must never leak a stall into stop().
            plan.fail(SITE_PROFILER_HISTOGRAM, times=1)
            report = session.stop()
        assert report.by_name("hot.lock").acquired > 0
