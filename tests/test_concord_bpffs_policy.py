"""bpffs pinning semantics and PolicySpec validation."""

import pytest

from repro.bpf import ContextLayout, Program, Verifier
from repro.bpf.errors import BPFError
from repro.bpf.insn import Insn, OP_EXIT, OP_LDC, R0
from repro.concord import PolicySpec
from repro.concord.bpffs import BpfFS as ConcordBpfFS
from repro.concord.bpffs import BpfPinError


def make_program(name="p", verified=True):
    layout = ContextLayout("t", ["a"])
    program = Program(name, [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)], layout)
    if verified:
        Verifier().verify(program)
    return program


class TestBpfFS:
    def test_pin_get_roundtrip(self):
        fs = ConcordBpfFS()
        program = make_program()
        path = fs.pin("concord/test/cmp_node", program)
        assert path == "/sys/fs/bpf/concord/test/cmp_node"
        assert fs.get(path) is program
        assert fs.get("concord/test/cmp_node") is program  # relative ok

    def test_pin_requires_verified(self):
        fs = ConcordBpfFS()
        with pytest.raises(BPFError, match="unverified"):
            fs.pin("x", make_program(verified=False))

    def test_double_pin_rejected(self):
        fs = ConcordBpfFS()
        fs.pin("x", make_program())
        with pytest.raises(BPFError, match="already pinned"):
            fs.pin("x", make_program())

    def test_unpin(self):
        fs = ConcordBpfFS()
        program = make_program()
        fs.pin("x", program)
        assert fs.unpin("x") is program
        # A second unpin (or unpinning a never-pinned path) is a typed
        # error, not a silent no-op.
        with pytest.raises(BpfPinError):
            fs.unpin("x")
        with pytest.raises(BpfPinError):
            fs.unpin("never/pinned")
        with pytest.raises(BPFError):
            fs.get("x")

    def test_listdir_prefix(self):
        fs = ConcordBpfFS()
        fs.pin("concord/a/hook", make_program("a"))
        fs.pin("concord/b/hook", make_program("b"))
        fs.pin("other/c", make_program("c"))
        assert len(fs.listdir("concord")) == 2
        assert len(fs.listdir()) == 3
        assert len(fs) == 3
        assert [p for p, _ in fs.entries()] == sorted(p for p, _ in fs.entries())


class TestPolicySpecValidation:
    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="hook"):
            PolicySpec("p", "not_a_hook", "def f(ctx):\n    return 0\n")

    def test_unknown_combiner_rejected(self):
        with pytest.raises(ValueError, match="combiner"):
            PolicySpec("p", "cmp_node", "def f(ctx):\n    return 0\n", combiner="xor")

    def test_defaults(self):
        spec = PolicySpec("p", "cmp_node", "def f(ctx):\n    return 0\n")
        assert spec.lock_selector == "*"
        assert spec.combiner == "or"
        assert not spec.exclusive
        assert spec.priority == 0
        assert spec.maps == {}

    def test_repr_is_informative(self):
        spec = PolicySpec("p", "cmp_node", "src", lock_selector="mm.*")
        assert "p" in repr(spec) and "mm.*" in repr(spec)
