"""Unit tests for the replication layer: sites, groups, replicated
journals, and the commit-time serialization ledger.

The contract under test is RepCRec's available-copies model: quorum
commit against the full membership, read-your-writes through a fenced
leader, the recovered-site read gate, and first-committer-wins
serialization of concurrent rollouts.
"""

import pytest

from repro.controlplane.journal import JournalError
from repro.faults import (
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_CATCHUP,
    SITE_REPLICATION_READ,
    FaultPlan,
    injected,
)
from repro.replication import (
    NoQuorum,
    ReplicaGroup,
    ReplicatedJournal,
    ReplicationError,
    SerializationConflict,
    SerializationLedger,
    SiteDown,
    SiteState,
    SiteUnreadable,
    StaleLeaderFenced,
    TxnStatus,
)


def entry(n):
    return {"kind": "transition", "policy": "p", "seq": n}


class TestQuorumWrites:
    def test_append_commits_on_every_live_site(self):
        group = ReplicaGroup("m")
        seq = group.append(entry(1))
        assert seq == 1 and group.commit_index == 1
        assert all(site.entry(1)["seq"] == 1 for site in group.sites)
        assert all(site.commit_index == 1 for site in group.sites)

    def test_commit_survives_one_dead_site(self):
        group = ReplicaGroup("m")
        group.fail_site("site2")
        group.append(entry(1))
        assert group.commit_index == 1
        assert [e["seq"] for e in group.entries()] == [1]

    def test_no_quorum_rolls_the_tentative_write_back(self):
        group = ReplicaGroup("m")
        group.fail_site("site1")
        group.fail_site("site2")
        with pytest.raises(NoQuorum):
            group.append(entry(1))
        assert group.commit_index == 0
        assert all(1 not in site.log for site in group.sites)

    def test_quorum_is_majority_of_full_membership_not_live_set(self):
        # 2 of 5 sites live: both ack, but a "majority of the living"
        # would let a committed entry die with a single further failure.
        group = ReplicaGroup("m", nr_sites=5)
        for name in ("site2", "site3", "site4"):
            group.fail_site(name)
        with pytest.raises(NoQuorum):
            group.append(entry(1))

    def test_no_quorum_is_a_journal_error(self):
        # The integration contract: callers that tolerate a failed
        # journal shard tolerate a lost quorum identically.
        assert issubclass(NoQuorum, JournalError)
        assert issubclass(ReplicationError, JournalError)


class TestFailover:
    def test_leader_death_elects_and_bumps_the_lease(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        old, epoch = group.leader.name, group.lease_epoch
        group.fail_site(old)
        assert group.leader.name != old
        assert group.lease_epoch > epoch
        assert group.failovers == 1
        assert [e["seq"] for e in group.entries()] == [1]

    def test_leader_dying_under_append_still_commits_the_write(self):
        group = ReplicaGroup("m")
        old = group.leader.name
        plan = FaultPlan(seed=1, name="kill-leader")
        plan.fail(SITE_REPLICATION_APPEND, times=1, match={"replica": old})
        with injected(plan):
            seq = group.append(entry(1))
        assert seq == 1 and group.commit_index == 1
        assert group.leader.name != old and group.failovers == 1
        assert [e["seq"] for e in group.entries()] == [1]

    def test_on_failover_hook_fires_once_per_move(self):
        moved = []
        group = ReplicaGroup("m", on_failover=lambda g: moved.append(g.leader.name))
        group.fail_site(group.leader.name)
        assert moved == [group.leader.name]

    def test_election_truncates_uncommitted_residue(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        survivor = group.sites[1]
        survivor.log[2] = {"kind": "ghost"}  # ack of a write that never reached quorum
        group.fail_site(group.leader.name)
        assert group.leader is survivor  # longest log wins the election
        assert 2 not in survivor.log
        assert [e["seq"] for e in group.entries()] == [1]

    def test_no_electable_site_raises_no_quorum(self):
        group = ReplicaGroup("m")
        for site in list(group.sites):
            site.fail()
        with pytest.raises(NoQuorum):
            group.elect()

    def test_read_fault_fails_over_to_another_readable_site(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        plan = FaultPlan(seed=1, name="dark-read")
        plan.fail(SITE_REPLICATION_READ, times=1, match={"replica": group.leader.name})
        with injected(plan):
            entries = group.entries()
        assert [e["seq"] for e in entries] == [1]
        assert group.failovers == 1


class TestLeaseFencing:
    def test_stale_lease_is_fenced_after_failover(self):
        group = ReplicaGroup("m")
        lease = group.lease()
        group.fail_site(group.leader.name)  # the election bumps the epoch
        with pytest.raises(StaleLeaderFenced):
            group.append(entry(1), lease=lease)
        assert group.commit_index == 0

    def test_fence_rides_the_member_epoch(self):
        group = ReplicaGroup("m")
        lease = group.lease()
        assert group.fence(7) >= 7
        with pytest.raises(StaleLeaderFenced):
            group.append(entry(1), lease=lease)
        # A re-acquired lease writes fine.
        group.append(entry(1), lease=group.lease())
        assert group.commit_index == 1

    def test_fence_is_monotonic_even_for_lower_epochs(self):
        group = ReplicaGroup("m")
        before = group.lease_epoch
        assert group.fence(0) == before + 1


class TestRecoveryReadGate:
    def test_recovered_site_refuses_reads_until_committed_write(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        group.append(entry(2))  # missed while down
        group.recover_site(follower.name)
        assert follower.state is SiteState.RECOVERING
        with pytest.raises(SiteUnreadable):
            follower.read(group.commit_index)
        group.append(entry(3))  # first post-recovery committed write
        assert follower.readable and follower.state is SiteState.UP
        assert [e["seq"] for e in follower.read(group.commit_index)] == [1, 2, 3]

    def test_down_site_refuses_reads_and_writes(self):
        group = ReplicaGroup("m")
        group.fail_site("site1")
        with pytest.raises(SiteDown):
            group.site("site1").read(0)
        with pytest.raises(SiteDown):
            group.site("site1").append(1, entry(1), group.lease_epoch)

    def test_catchup_fault_fails_the_site_not_the_write(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        group.append(entry(2))
        group.recover_site(follower.name)
        plan = FaultPlan(seed=1, name="torn-catchup")
        plan.fail(SITE_REPLICATION_CATCHUP, times=1, match={"replica": follower.name})
        with injected(plan):
            group.append(entry(3))
        assert group.commit_index == 3  # the write committed on the others
        assert group.site(follower.name).state is SiteState.DOWN

    def test_site_log_is_durable_across_failure(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        assert follower.entry(1)["seq"] == 1  # disk survives the death


class TestReplicatedJournal:
    def test_round_trip_and_heartbeat(self):
        group = ReplicaGroup("m")
        journal = group.journal()
        assert isinstance(journal, ReplicatedJournal)
        journal.append({"kind": "client", "client": "a"})
        journal.heartbeat(5)
        assert [e["kind"] for e in journal.entries()] == ["client", "heartbeat"]
        assert len(journal) == 2

    def test_entries_need_a_kind(self):
        with pytest.raises(JournalError):
            ReplicaGroup("m").journal().append({"client": "a"})

    def test_last_transition_reads_through_the_group(self):
        journal = ReplicaGroup("m").journal()
        journal.append({"kind": "transition", "policy": "p", "to": "VERIFIED"})
        journal.append({"kind": "transition", "policy": "p", "to": "ACTIVE"})
        assert journal.last_transition("p")["to"] == "ACTIVE"

    def test_survives_any_single_site_death(self):
        group = ReplicaGroup("m")
        journal = group.journal()
        journal.append({"kind": "client", "client": "a"})
        group.fail_site(group.leader.name)
        journal.append({"kind": "client", "client": "b"})
        assert [e["client"] for e in journal.entries()] == ["a", "b"]

    def test_lost_quorum_surfaces_as_journal_error(self):
        group = ReplicaGroup("m")
        journal = group.journal()
        group.fail_site("site1")
        group.fail_site("site2")
        with pytest.raises(JournalError):
            journal.append({"kind": "client", "client": "a"})

    def test_two_journal_handles_share_the_group_log(self):
        # A restarted daemon's fresh handle reads everything the old
        # handle committed — the handle is stateless, the group is not.
        group = ReplicaGroup("m")
        group.journal().append({"kind": "client", "client": "a"})
        assert [e["client"] for e in group.journal().entries()] == ["a"]


class TestSerializationLedger:
    def test_disjoint_concurrent_rollouts_both_commit(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", locks=["k0/shard0"])
        b = ledger.begin("b", locks=["k1/shard1"])
        ledger.commit(a)
        ledger.commit(b)
        assert {t.txn_id for t in ledger.committed()} == {"a", "b"}

    def test_overlapping_concurrent_rollouts_second_aborts(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", locks=["svc.shard0.lock"])
        b = ledger.begin("b", locks=["svc.shard0.lock", "svc.shard1.lock"])
        ledger.commit(a)
        with pytest.raises(SerializationConflict):
            ledger.commit(b)
        assert b.status is TxnStatus.ABORTED
        assert "cycle" in b.abort_cause
        assert [t.txn_id for t in ledger.committed()] == ["a"]

    def test_serial_rollouts_on_the_same_locks_both_commit(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", locks=["l"])
        ledger.commit(a)
        b = ledger.begin("b", locks=["l"])  # begins after a committed
        ledger.commit(b)
        assert len(ledger.committed()) == 2

    def test_rw_antidependency_cycle_aborts(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", reads=["x"], writes=["y"])
        b = ledger.begin("b", reads=["y"], writes=["x"])
        ledger.commit(a)
        with pytest.raises(SerializationConflict):
            ledger.commit(b)

    def test_shared_reads_disjoint_writes_are_serializable(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", reads=["x"], writes=["y"])
        b = ledger.begin("b", reads=["x"], writes=["z"])
        ledger.commit(a)
        ledger.commit(b)
        assert len(ledger.committed()) == 2

    def test_abort_is_idempotent_and_journaled(self):
        journal = ReplicaGroup("m").journal()
        ledger = SerializationLedger(journal=journal)
        a = ledger.begin("a", locks=["l"])
        ledger.abort(a, cause="halted")
        ledger.abort(a, cause="again")
        assert [e["event"] for e in journal.entries()] == ["txn-begin", "txn-abort"]
        assert a.abort_cause == "halted"

    def test_conflict_verdict_is_journaled(self):
        journal = ReplicaGroup("m").journal()
        ledger = SerializationLedger(journal=journal)
        a = ledger.begin("a", locks=["l"])
        b = ledger.begin("b", locks=["l"])
        ledger.commit(a)
        with pytest.raises(SerializationConflict):
            ledger.commit(b)
        events = [e["event"] for e in journal.entries()]
        assert events.count("txn-commit") == 1
        assert events.count("txn-abort") == 1

    def test_double_open_of_the_same_txn_id_rejected(self):
        ledger = SerializationLedger()
        ledger.begin("a", locks=["l"])
        with pytest.raises(ReplicationError):
            ledger.begin("a", locks=["l"])

    def test_commit_requires_an_open_transaction(self):
        ledger = SerializationLedger()
        a = ledger.begin("a", locks=["l"])
        ledger.commit(a)
        with pytest.raises(ReplicationError):
            ledger.commit(a)


class TestHealthSnapshot:
    def test_health_names_leader_sites_and_commit_progress(self):
        group = ReplicaGroup("m")
        group.append(entry(1))
        group.fail_site("site2")
        health = group.health()
        assert health["leader"] == group.leader.name
        assert health["commit_index"] == 1
        assert health["quorum"] == 2
        assert health["sites"]["m/site2"]["state"] == "DOWN"
        assert health["sites"][group.leader.name]["readable"] is True
