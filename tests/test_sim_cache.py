"""Cache-coherence cost model: latency structure and serialization."""

from repro.sim import Engine, Topology, ops
from repro.sim.cache import CacheModel, Cell, CellWaiter
from repro.sim.stats import StatsRegistry
from repro.sim.topology import LatencyModel


def make_model(sockets=2, cores=4, **lat):
    topo = Topology(sockets=sockets, cores_per_socket=cores, latency=LatencyModel(**lat))
    return topo, CacheModel(topo, StatsRegistry())


class TestAccessCosts:
    def test_first_touch_is_cheap(self):
        topo, model = make_model()
        cell = Cell(0)
        finish, value = model.load(0, cpu=0, cell=cell)
        assert finish == topo.latency.l1_hit
        assert value == 0

    def test_repeat_load_stays_cheap(self):
        topo, model = make_model()
        cell = Cell(0)
        model.load(0, cpu=3, cell=cell)
        finish, _ = model.load(100, cpu=3, cell=cell)
        assert finish == 100 + topo.latency.l1_hit

    def test_cross_socket_load_pays_transfer(self):
        topo, model = make_model()
        cell = Cell(0)
        model.store(0, cpu=0, cell=cell, value=1)  # owner: cpu 0 (socket 0)
        finish, _ = model.load(1000, cpu=4, cell=cell)  # socket 1
        assert finish == 1000 + topo.latency.remote_transfer

    def test_same_socket_load_pays_local_transfer(self):
        topo, model = make_model()
        cell = Cell(0)
        model.store(0, cpu=0, cell=cell, value=1)
        finish, _ = model.load(1000, cpu=1, cell=cell)
        assert finish == 1000 + topo.latency.local_transfer

    def test_owner_rewrite_is_cheap(self):
        topo, model = make_model()
        cell = Cell(0)
        model.store(0, cpu=2, cell=cell, value=1)
        finish, _none, _ = model.store(1000, cpu=2, cell=cell, value=2)
        assert finish == 1000 + topo.latency.l1_hit

    def test_store_invalidates_remote_sharer(self):
        """Writing a line shared remotely pays the invalidation round-trip."""
        topo, model = make_model()
        cell = Cell(0)
        model.store(0, cpu=0, cell=cell, value=1)
        model.load(100, cpu=4, cell=cell)  # remote shared copy
        finish, _none, _ = model.store(1000, cpu=0, cell=cell, value=2)
        assert finish == 1000 + topo.latency.remote_transfer
        assert not cell.sharers  # sharers invalidated

    def test_atomic_extra_cost(self):
        topo, model = make_model()
        cell = Cell(0)
        model.store(0, cpu=4, cell=cell, value=0)
        finish, result, _ = model.cas(1000, cpu=0, cell=cell, expected=0, new=1)
        assert result == (True, 0)
        assert finish == 1000 + topo.latency.remote_transfer + topo.latency.atomic_extra

    def test_failed_cas_still_pays(self):
        topo, model = make_model()
        cell = Cell(5)
        model.store(0, cpu=4, cell=cell, value=5)
        finish, result, _ = model.cas(1000, cpu=0, cell=cell, expected=0, new=1)
        assert result == (False, 5)
        assert finish > 1000 + topo.latency.l1_hit


class TestSerialization:
    def test_contended_atomics_serialize(self):
        """N same-time CASes on one line finish one after another."""
        topo, model = make_model()
        cell = Cell(0)
        finishes = []
        for cpu in range(4):
            finish, _res, _ = model.cas(0, cpu=cpu, cell=cell, expected=cpu, new=cpu + 1)
            finishes.append(finish)
        assert finishes == sorted(finishes)
        assert len(set(finishes)) == 4  # strictly increasing

    def test_loads_do_not_extend_busy(self):
        topo, model = make_model()
        cell = Cell(0)
        model.cas(0, cpu=0, cell=cell, expected=0, new=1)
        busy = cell.busy_until
        model.load(0, cpu=1, cell=cell)
        model.load(0, cpu=2, cell=cell)
        assert cell.busy_until == busy


class TestWaiters:
    def test_recheck_stagger_orders_waiters(self):
        """k-th spinner on a line is rechecked later (serialized refills)."""
        topo, model = make_model()
        cell = Cell(0)

        class _FakeTask:
            def __init__(self, cpu):
                self.cpu_id = cpu

        waiters = [CellWaiter(_FakeTask(cpu), lambda v: True) for cpu in (1, 2, 3)]
        for waiter in waiters:
            model.add_waiter(cell, waiter)
        _finish, _none, rechecks = model.store(0, cpu=0, cell=cell, value=1)
        times = [at for _w, at in rechecks]
        assert times == sorted(times)
        assert times[1] > times[0] and times[2] > times[1]

    def test_cancelled_waiter_not_rechecked(self):
        topo, model = make_model()
        cell = Cell(0)

        class _FakeTask:
            cpu_id = 1

        waiter = CellWaiter(_FakeTask(), lambda v: True)
        model.add_waiter(cell, waiter)
        model.remove_waiter(cell, waiter)
        _f, _n, rechecks = model.store(0, cpu=0, cell=cell, value=1)
        assert rechecks == []


class TestEndToEndCosts:
    def test_remote_ping_pong_slower_than_local(self):
        def run(cpu_a, cpu_b):
            eng = Engine(Topology(sockets=2, cores_per_socket=4))
            cell = eng.cell(0)

            def bouncer(task, expect):
                for _ in range(100):
                    yield ops.WaitValue(cell, lambda v, e=expect: v % 2 == e)
                    yield ops.FetchAdd(cell, 1)

            eng.spawn(lambda t: bouncer(t, 0), cpu=cpu_a)
            eng.spawn(lambda t: bouncer(t, 1), cpu=cpu_b)
            eng.run()
            return eng.now

        local = run(0, 1)
        remote = run(0, 4)
        assert remote > local * 1.5
