"""concordd admission: capabilities, quotas, conflicting submissions."""

import pytest

from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    AdmissionError,
    CapabilityError,
    Concordd,
    PolicyState,
    PolicySubmission,
    QuotaError,
    SubmissionConflictError,
)
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import HOOK_CMP_NODE, HOOK_LOCK_ACQUIRE
from repro.sim import Topology
from repro.userspace import PolicyClient

RETURN_ZERO = "def f(ctx):\n    return 0\n"


@pytest.fixture
def daemon():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=2), seed=1)
    for prefix in ("svc.a", "svc.b", "db.main"):
        kernel.add_lock(f"{prefix}.lock", ShflLock(kernel.engine, name=prefix))
    return Concordd(Concord(kernel))


def sub(name, selector="svc.*.lock", hook=HOOK_CMP_NODE, **spec_kw):
    return PolicySubmission(
        spec=PolicySpec(
            name=name, hook=hook, source=RETURN_ZERO, lock_selector=selector, **spec_kw
        )
    )


class TestCapabilities:
    def test_denied_selector(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", allowed_selectors=("svc.*",))
        with pytest.raises(CapabilityError, match="may not touch"):
            client.submit(sub("sneaky", selector="db.*.lock"))
        record = daemon.status("sneaky")
        assert record.state is PolicyState.REJECTED
        assert "db.main.lock" in record.error

    def test_partial_coverage_is_still_denied(self, daemon):
        # A wildcard selector reaching even one uncovered lock is denied.
        client = PolicyClient.connect(daemon, "tenant", allowed_selectors=("svc.*",))
        with pytest.raises(CapabilityError):
            client.submit(sub("broad", selector="*.lock"))

    def test_covered_selector_admitted(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", allowed_selectors=("svc.*",))
        record = client.submit(sub("fine"))
        assert record.state is PolicyState.VERIFIED
        assert sorted(record.target_locks) == ["svc.a.lock", "svc.b.lock"]

    def test_impl_switch_needs_capability(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", may_switch_impl=False)
        with pytest.raises(CapabilityError, match="may not switch"):
            client.submit(
                PolicySubmission(
                    impl_factory=lambda old: old, name="swap", lock_selector="svc.*.lock"
                )
            )

    def test_unregistered_client_rejected(self, daemon):
        with pytest.raises(CapabilityError, match="not registered"):
            PolicyClient(daemon, "ghost")

    def test_empty_selector_rejected(self, daemon):
        client = PolicyClient.connect(daemon, "tenant")
        with pytest.raises(AdmissionError, match="matches no registered locks"):
            client.submit(sub("void", selector="nothing.*"))


class TestQuota:
    def test_quota_exhaustion(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", max_live_policies=2)
        client.submit(sub("p0"))
        client.submit(sub("p1"))
        with pytest.raises(QuotaError, match="quota 2"):
            client.submit(sub("p2"))
        assert daemon.status("p2").state is PolicyState.REJECTED

    def test_terminal_policies_free_quota(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", max_live_policies=2)
        client.submit(sub("p0"))
        client.submit(sub("p1"))
        client.withdraw("p0")
        assert client.submit(sub("p2")).state is PolicyState.VERIFIED

    def test_quota_is_per_client(self, daemon):
        alice = PolicyClient.connect(daemon, "alice", max_live_policies=1)
        bob = PolicyClient.connect(daemon, "bob", max_live_policies=1)
        alice.submit(sub("a0"))
        # Bob's quota is untouched by Alice's policy; selector overlap is
        # fine because neither spec is exclusive and combiners agree.
        assert bob.submit(sub("b0")).state is PolicyState.VERIFIED


class TestConflicts:
    def test_two_sessions_exclusive_collision(self, daemon):
        alice = PolicyClient.connect(daemon, "alice")
        bob = PolicyClient.connect(daemon, "bob")
        alice.submit(sub("a-only", exclusive=True))
        with pytest.raises(SubmissionConflictError, match="in-flight"):
            bob.submit(sub("b-too"))
        assert daemon.status("b-too").state is PolicyState.REJECTED
        # Alice's record is untouched by Bob's denial.
        assert daemon.status("a-only").state is PolicyState.VERIFIED

    def test_combiner_disagreement_between_sessions(self, daemon):
        alice = PolicyClient.connect(daemon, "alice")
        bob = PolicyClient.connect(daemon, "bob")
        alice.submit(sub("a-or", combiner="or"))
        with pytest.raises(SubmissionConflictError, match="combiner"):
            bob.submit(sub("b-and", combiner="and"))

    def test_disjoint_selectors_do_not_conflict(self, daemon):
        alice = PolicyClient.connect(daemon, "alice")
        bob = PolicyClient.connect(daemon, "bob")
        alice.submit(sub("a-x", selector="svc.a.lock", exclusive=True))
        assert (
            bob.submit(sub("b-x", selector="svc.b.lock", exclusive=True)).state
            is PolicyState.VERIFIED
        )

    def test_conflict_with_kernel_chain(self, daemon):
        # A policy already loaded straight through Concord (bypassing the
        # daemon) still blocks conflicting submissions.
        daemon.concord.load_policy(
            PolicySpec(
                name="preexisting",
                hook=HOOK_LOCK_ACQUIRE,
                source=RETURN_ZERO,
                lock_selector="svc.*.lock",
                exclusive=True,
            )
        )
        client = PolicyClient.connect(daemon, "tenant")
        with pytest.raises(SubmissionConflictError):
            client.submit(sub("late", hook=HOOK_LOCK_ACQUIRE))

    def test_intra_bundle_conflict(self, daemon):
        client = PolicyClient.connect(daemon, "tenant")
        bundle = PolicySubmission(
            specs=(
                PolicySpec(
                    name="b",
                    hook=HOOK_CMP_NODE,
                    source=RETURN_ZERO,
                    lock_selector="svc.*.lock",
                    exclusive=True,
                ),
                PolicySpec(
                    name="b.extra",
                    hook=HOOK_CMP_NODE,
                    source=RETURN_ZERO,
                    lock_selector="svc.*.lock",
                ),
            )
        )
        with pytest.raises(SubmissionConflictError, match="exclusive"):
            client.submit(bundle)

    def test_name_collision_with_inflight(self, daemon):
        alice = PolicyClient.connect(daemon, "alice")
        bob = PolicyClient.connect(daemon, "bob")
        alice.submit(sub("shared-name"))
        with pytest.raises(AdmissionError, match="already in flight"):
            bob.submit(sub("shared-name"))


class TestAudit:
    def test_denial_is_audited(self, daemon):
        client = PolicyClient.connect(daemon, "tenant", allowed_selectors=("svc.*",))
        with pytest.raises(CapabilityError):
            client.submit(sub("nope", selector="db.*.lock"))
        history = daemon.audit.history("nope")
        assert history == [PolicyState.SUBMITTED, PolicyState.REJECTED]
        last = daemon.audit.for_policy("nope")[-1]
        assert "admission denied" in last.cause

    def test_watch_shows_only_own_policies(self, daemon):
        alice = PolicyClient.connect(daemon, "alice")
        bob = PolicyClient.connect(daemon, "bob")
        alice.submit(sub("a-p", selector="svc.a.lock"))
        bob.submit(sub("b-p", selector="svc.b.lock"))
        assert {r.policy for r in alice.watch()} == {"a-p"}
        assert {r.policy for r in bob.watch()} == {"b-p"}

    def test_verifier_rejection_is_audited(self, daemon):
        client = PolicyClient.connect(daemon, "tenant")
        too_big = "def f(ctx):\n    acc = 0\n" + "".join(
            f"    acc = acc + {i}\n" for i in range(200)
        ) + "    return 0\n"
        from repro.bpf.errors import BPFError

        with pytest.raises(BPFError):
            client.submit(sub_source("fat", too_big))
        assert daemon.audit.history("fat") == [
            PolicyState.SUBMITTED,
            PolicyState.REJECTED,
        ]
        assert "verifier rejected" in daemon.audit.for_policy("fat")[-1].cause


def sub_source(name, source):
    return PolicySubmission(
        spec=PolicySpec(
            name=name, hook=HOOK_CMP_NODE, source=source, lock_selector="svc.*.lock"
        )
    )
