"""Prebuilt policies: each §3 use case does what the paper claims."""

import pytest

from repro.concord import Concord
from repro.concord.policies import (
    make_amp_policy,
    make_inheritance_policy,
    make_numa_policy,
    make_priority_policy,
    make_scl_policies,
    make_vcpu_policy,
)
from repro.kernel import Kernel, annotate_priority_path
from repro.locks import ShflLock
from repro.sim import Topology, amp_machine, ops


def make_setup(topo=None, seed=3, **lock_kwargs):
    kernel = Kernel(topo or Topology(sockets=4, cores_per_socket=4), seed=seed)
    kernel.add_lock("the.lock", ShflLock(kernel.engine, name="impl", **lock_kwargs))
    return kernel, Concord(kernel), kernel.locks.get("the.lock")


def contended_run(kernel, site, n_tasks, duration_ns=600_000, cs_ns=400, classes=None):
    """Spawn workers; returns per-task op counts keyed by name."""
    rng = kernel.engine.rng

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(cs_ns)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    for index in range(n_tasks):
        task = kernel.spawn(worker, cpu=index, name=f"w{index}", at=rng.randint(0, 10_000))
        if classes:
            classes(task, index)
    kernel.run(until=duration_ns)
    return {t.name: t.stats.get("ops", 0) for t in kernel.engine.tasks}


class TestNuma:
    def test_numa_policy_groups_handoffs(self):
        kernel, concord, site = make_setup()
        concord.load_policy(make_numa_policy(lock_selector="the.lock"))
        handoffs = {"last": None, "local": 0, "remote": 0}
        rng = kernel.engine.rng

        def worker(task):
            while True:
                yield from site.acquire(task)
                if handoffs["last"] is not None:
                    key = "local" if task.numa_node == handoffs["last"] else "remote"
                    handoffs[key] += 1
                handoffs["last"] = task.numa_node
                yield ops.Delay(150)
                yield from site.release(task)
                yield ops.Delay(rng.randint(0, 300))

        for index in range(16):
            kernel.spawn(worker, cpu=index, at=rng.randint(0, 10_000))
        kernel.run(until=900_000)
        total = handoffs["local"] + handoffs["remote"]
        assert handoffs["local"] / total > 0.5  # >> 25% random baseline
        assert site.core.impl.shuffle_moves > 0


class TestPriorityBoost:
    def test_boosted_tids_get_more_lock_time(self):
        kernel, concord, site = make_setup()
        spec, boost_tids = make_priority_policy(lock_selector="the.lock")
        concord.load_policy(spec)

        counts = contended_run(
            kernel,
            site,
            n_tasks=12,
            classes=lambda task, index: boost_tids.update(task.tid, 1)
            if index < 2
            else None,
        )
        boosted = [counts[f"w{i}"] for i in range(2)]
        normal = [counts[f"w{i}"] for i in range(2, 12)]
        assert min(boosted) > (sum(normal) / len(normal)), (boosted, normal)

    def test_kernel_annotation_also_boosts(self):
        kernel, concord, site = make_setup()
        spec, _map = make_priority_policy(lock_selector="the.lock")
        concord.load_policy(spec)
        counts = contended_run(
            kernel,
            site,
            n_tasks=12,
            classes=lambda task, index: annotate_priority_path(task)
            if index == 0
            else None,
        )
        normal_avg = sum(counts[f"w{i}"] for i in range(1, 12)) / 11
        assert counts["w0"] > normal_avg


class TestInheritance:
    def test_holders_of_other_locks_prioritized(self):
        kernel, concord, site = make_setup()
        other = kernel.add_lock("other.lock", ShflLock(kernel.engine, name="other"))
        spec, _declared = make_inheritance_policy(lock_selector="the.lock")
        concord.load_policy(spec)
        rng = kernel.engine.rng
        latencies = {"chain": [], "plain": []}

        def chain_worker(task):
            while True:
                yield from other.acquire(task)
                start = task.engine.now
                yield from site.acquire(task)
                latencies["chain"].append(task.engine.now - start)
                yield ops.Delay(200)
                yield from site.release(task)
                yield from other.release(task)
                yield ops.Delay(rng.randint(0, 400))

        def plain_worker(task):
            while True:
                start = task.engine.now
                yield from site.acquire(task)
                latencies["plain"].append(task.engine.now - start)
                yield ops.Delay(200)
                yield from site.release(task)
                yield ops.Delay(rng.randint(0, 400))

        kernel.spawn(chain_worker, cpu=0, name="chain")
        for index in range(1, 12):
            kernel.spawn(plain_worker, cpu=index, at=rng.randint(0, 5_000))
        kernel.run(until=800_000)
        avg_chain = sum(latencies["chain"]) / len(latencies["chain"])
        avg_plain = sum(latencies["plain"]) / len(latencies["plain"])
        # The lock-holding waiter should wait no longer than plain ones.
        assert avg_chain < avg_plain * 1.1


class TestSCL:
    def test_usage_metering_accumulates(self):
        kernel, concord, site = make_setup()
        specs, usage = make_scl_policies(lock_selector="the.lock")
        for spec in specs:
            concord.load_policy(spec)
        counts = contended_run(kernel, site, n_tasks=6, duration_ns=400_000)
        assert len(usage) >= 6  # every tid metered
        assert sum(counts.values()) > 0

    def test_meter_distinguishes_hogs_from_mice(self):
        """The usage map must reflect true per-class lock consumption,
        and heavy-shuffler passes must approve light waiters.

        Note (recorded in EXPERIMENTS.md): with cmp_node-only semantics
        the reordering cannot reduce a hog's *turn frequency* in a
        closed loop — that needs SCL's banning, which the safe Table 1
        surface deliberately does not expose.  What we verify here is
        that the policy's inputs and decisions are correct.
        """
        kernel, concord, site = make_setup()
        specs, usage = make_scl_policies(lock_selector="the.lock")
        for spec in specs:
            concord.load_policy(spec)
        impl = site.core.impl
        decisions = {"approve": 0, "deny": 0}
        original = impl._decide_cmp

        def spy(task, shuffler, curr):
            result = yield from original(task, shuffler, curr)
            decisions["approve" if result else "deny"] += 1
            return result

        impl._decide_cmp = spy
        rng = kernel.engine.rng

        def worker(task, cs_ns):
            task.stats["ops"] = 0
            while True:
                yield from site.acquire(task)
                yield ops.Delay(cs_ns)
                yield from site.release(task)
                task.stats["ops"] += 1
                yield ops.Delay(rng.randint(0, 200))

        hog_tids, mouse_tids = [], []
        for index in range(3):
            hog_tids.append(kernel.spawn(lambda t: worker(t, 5_000), cpu=index, name=f"hog{index}").tid)
        for index in range(3, 12):
            mouse_tids.append(kernel.spawn(lambda t: worker(t, 300), cpu=index, name=f"mouse{index}").tid)
        kernel.run(until=900_000)
        hog_usage = min(usage.lookup(tid) for tid in hog_tids)
        mouse_usage = max(usage.lookup(tid) for tid in mouse_tids)
        assert hog_usage > 5 * mouse_usage
        assert decisions["approve"] > 0  # light waiters were moved forward


class TestAMP:
    def test_fast_cores_prioritized(self):
        topo = amp_machine(big_cores=4, little_cores=12, little_slowdown=4.0)
        kernel = Kernel(topo, seed=3)
        site = kernel.add_lock("the.lock", ShflLock(kernel.engine, name="impl"))
        concord = Concord(kernel)
        spec, fast_map = make_amp_policy(topo, lock_selector="the.lock")
        concord.load_policy(spec)
        assert fast_map.lookup(0) == 1 and fast_map.lookup(10) is None
        counts = contended_run(kernel, site, n_tasks=16, duration_ns=800_000)
        fast = sum(counts[f"w{i}"] for i in range(4)) / 4
        slow = sum(counts[f"w{i}"] for i in range(4, 16)) / 12
        assert fast > slow


class TestVcpu:
    def test_preempted_vcpu_waiters_deprioritized(self):
        kernel, concord, site = make_setup()
        spec, vcpu_running = make_vcpu_policy(
            nr_vcpus=kernel.topology.nr_cpus, lock_selector="the.lock"
        )
        concord.load_policy(spec)
        # The "hypervisor" marks cpu 3 as preempted and freezes it.
        vcpu_running[3] = 0
        kernel.engine.call_at(50_000, lambda: kernel.engine.freeze_cpu(3, 400_000))
        counts = contended_run(kernel, site, n_tasks=8, duration_ns=600_000)
        # Work continued despite the frozen vCPU: others kept acquiring.
        others = [counts[f"w{i}"] for i in range(8) if i != 3]
        assert min(others) > 0
