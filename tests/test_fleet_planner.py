"""Placement learning and wave planning.

Placement is *measured*: the probe and profiler run on each member's
own kernel, so the map reflects observed sockets and contention, not
configuration.  Plans then order kernels by ascending blast radius and
pick placement-diverse canary subsets.
"""

import pytest

from repro.fleet import (
    FleetPlan,
    FleetPlanError,
    LockPlacement,
    PlacementMap,
    PlacementRefresher,
    RolloutPlanner,
)
from repro.fleet.placement import _CLASS_WEIGHT

from tests._fleet_util import FleetManager, add_member, learn, three_kernel_fleet


# ----------------------------------------------------------------------
# PlacementMap.learn
# ----------------------------------------------------------------------
def test_learn_covers_every_member_and_lock():
    fleet = three_kernel_fleet()
    placement = learn(fleet)
    assert placement.kernels() == ["k0", "k1", "k2"]
    assert len(placement.for_kernel("k0")) == 2
    assert len(placement.for_kernel("k1")) == 3
    assert len(placement.for_kernel("k2")) == 3
    assert len(placement) == 8


def test_learn_classifies_contention_by_load():
    fleet = three_kernel_fleet()
    placement = learn(fleet)
    # One task per lock never contends; four tasks per lock always do.
    assert all(p.contention == "cold" for p in placement.for_kernel("k0"))
    assert any(p.contention == "hot" for p in placement.for_kernel("k2"))
    assert placement.blast_radius("k0") < placement.blast_radius("k2")


def test_learn_observes_sockets_and_unloads_probe():
    fleet = FleetManager()
    member = add_member(fleet, "k0", locks=2, tasks_per_lock=2)
    before = set(member.concord.policies)
    placement = learn(fleet)
    # The probe + profiler programs are gone after learning.
    assert set(member.concord.policies) == before
    sockets = {p.socket for p in placement.for_kernel("k0")}
    assert sockets <= set(range(member.kernel.topology.sockets))


def test_idle_lock_is_cold_with_no_socket():
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, workload_ns=0)  # nobody runs
    placement = learn(fleet)
    for p in placement.for_kernel("k0"):
        assert p.contention == "cold"
        assert p.socket == -1
        assert p.acquired == 0


def test_placement_map_round_trips_serialization():
    fleet = three_kernel_fleet()
    placement = learn(fleet)
    clone = PlacementMap.deserialize(placement.serialize())
    assert clone.kernels() == placement.kernels()
    for kernel in placement.kernels():
        assert clone.blast_radius(kernel) == placement.blast_radius(kernel)
        assert clone.locks(kernel) == placement.locks(kernel)


# ----------------------------------------------------------------------
# RolloutPlanner
# ----------------------------------------------------------------------
def _placements(kernel, specs):
    """specs: (lock_name, socket, contention) triples."""
    return [
        LockPlacement(
            kernel=kernel,
            lock_name=name,
            socket=socket,
            contention=contention,
            acquired=10,
            contended=5,
            avg_wait_ns=100.0,
        )
        for name, socket, contention in specs
    ]


def _map(by_kernel):
    placements = []
    for kernel, specs in by_kernel.items():
        placements.extend(_placements(kernel, specs))
    return PlacementMap(placements)


def test_waves_order_by_ascending_blast_radius():
    placement = _map(
        {
            "hot": [("a", 0, "hot"), ("b", 1, "hot")],       # radius 8
            "mild": [("a", 0, "warm")],                       # radius 2
            "cool": [("a", 0, "cold")],                       # radius 1
            "warm": [("a", 0, "warm"), ("b", 1, "cold")],     # radius 3
        }
    )
    planner = RolloutPlanner(max_concurrent_kernels=2, canary_kernels=1, bake_ns=0)
    plan = planner.plan("p", placement)
    assert [w.kernels for w in plan.waves] == [["cool"], ["mild", "warm"], ["hot"]]
    assert plan.waves[0].canary and not plan.waves[1].canary
    assert [w.index for w in plan.waves] == [0, 1, 2]


def test_wave_width_honors_max_concurrent_kernels():
    placement = _map({f"k{i}": [("a", 0, "cold")] for i in range(7)})
    planner = RolloutPlanner(max_concurrent_kernels=3, canary_kernels=2)
    plan = planner.plan("p", placement)
    widths = [len(w.kernels) for w in plan.waves]
    assert widths == [2, 3, 2]
    assert plan.kernels() == sorted(f"k{i}" for i in range(7))


def test_canary_subset_spans_sockets_and_classes():
    planner = RolloutPlanner(canary_fraction=0.5)
    placements = _placements(
        "k",
        [
            ("s0.a", 0, "hot"),
            ("s0.b", 0, "hot"),
            ("s0.c", 0, "hot"),
            ("s1.a", 1, "cold"),
            ("s1.b", 1, "cold"),
            ("s1.c", 1, "cold"),
        ],
    )
    subset = planner.canary_subset(placements)
    assert len(subset) == 3
    # Round-robin across (socket, class) groups: both sockets appear —
    # a sorted-prefix subset would have canaried socket 0 only.
    assert any(name.startswith("s0.") for name in subset)
    assert any(name.startswith("s1.") for name in subset)
    # Hottest group leads, so a minimal subset canaries the risky locks.
    assert subset[0].startswith("s0.")


def test_canary_subset_respects_min_and_bounds():
    planner = RolloutPlanner(canary_fraction=0.1, min_canary_locks=2)
    placements = _placements("k", [(f"l{i}", 0, "cold") for i in range(4)])
    assert len(planner.canary_subset(placements)) == 2
    # Never more locks than exist.
    one = _placements("k", [("only", 0, "cold")])
    assert planner.canary_subset(one) == ["only"]
    with pytest.raises(FleetPlanError):
        planner.canary_subset([])


def test_plan_round_trips_serialization():
    placement = _map(
        {"a": [("x", 0, "hot")], "b": [("x", 1, "cold")], "c": [("x", 0, "warm")]}
    )
    planner = RolloutPlanner(
        max_concurrent_kernels=1, verdict_mode="quorum", quorum=0.6, bake_ns=123
    )
    plan = planner.plan("p", placement)
    clone = FleetPlan.deserialize(plan.serialize())
    assert clone.policy == plan.policy
    assert clone.verdict_mode == "quorum" and clone.quorum == 0.6
    assert [w.kernels for w in clone.waves] == [w.kernels for w in plan.waves]
    assert [w.bake_ns for w in clone.waves] == [123] * len(plan.waves)
    assert clone.canary_locks == plan.canary_locks


def test_planner_rejects_bad_knobs_and_empty_maps():
    with pytest.raises(FleetPlanError):
        RolloutPlanner(max_concurrent_kernels=0)
    with pytest.raises(FleetPlanError):
        RolloutPlanner(canary_kernels=0)
    with pytest.raises(FleetPlanError):
        RolloutPlanner(verdict_mode="majority-ish")
    with pytest.raises(FleetPlanError):
        RolloutPlanner(quorum=0.0)
    with pytest.raises(FleetPlanError, match="no kernels"):
        RolloutPlanner().plan("p", PlacementMap([]))


def test_class_weights_are_ordered():
    assert _CLASS_WEIGHT["hot"] > _CLASS_WEIGHT["warm"] > _CLASS_WEIGHT["cold"]


# ----------------------------------------------------------------------
# Placement staleness
# ----------------------------------------------------------------------
def test_learn_stamps_learned_at_from_member_clocks():
    fleet = three_kernel_fleet()
    placement = learn(fleet)
    assert placement.learned_at_ns is not None
    assert placement.learned_at_ns == max(m.kernel.now for m in fleet.members())


def test_is_stale_math():
    placement = PlacementMap(_placements("k", [("a", 0, "cold")]), learned_at_ns=1_000)
    assert not placement.is_stale(now_ns=1_500, max_age_ns=500)
    assert placement.is_stale(now_ns=1_501, max_age_ns=500)
    # A map with no timestamp (hand-built, deserialized from an old
    # format) is always stale once a freshness bound is in force.
    unstamped = PlacementMap(_placements("k", [("a", 0, "cold")]))
    assert unstamped.is_stale(now_ns=0, max_age_ns=10**12)


def test_stale_map_warns_but_still_plans():
    from repro.fleet import StalePlacementWarning

    placement = PlacementMap(_placements("k", [("a", 0, "cold")]), learned_at_ns=0)
    planner = RolloutPlanner(max_placement_age_ns=100)
    with pytest.warns(StalePlacementWarning, match="stale"):
        plan = planner.plan("p", placement, now_ns=5_000)
    assert plan.kernels() == ["k"]  # warned, not refused


def test_fresh_or_unconfigured_map_does_not_warn():
    import warnings as warnings_mod

    placement = PlacementMap(_placements("k", [("a", 0, "cold")]), learned_at_ns=0)
    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("error")
        # Within the bound: no warning.
        RolloutPlanner(max_placement_age_ns=10_000).plan("p", placement, now_ns=50)
        # No bound configured, or no clock supplied: staleness is not
        # checked (the planner cannot invent a now).
        RolloutPlanner().plan("p", placement, now_ns=10**15)
        RolloutPlanner(max_placement_age_ns=1).plan("p", placement)


# ----------------------------------------------------------------------
# Drift + drift-triggered refresh (hysteresis)
# ----------------------------------------------------------------------
def test_drift_is_zero_for_identical_and_empty_maps():
    a = _map({"k0": [("a", 0, "hot"), ("b", 1, "cold")]})
    b = _map({"k0": [("a", 0, "hot"), ("b", 1, "cold")]})
    assert a.drift(b) == 0.0
    assert PlacementMap([]).drift(PlacementMap([])) == 0.0


def test_drift_weighs_changes_by_the_heavier_class():
    before = _map({"k0": [("a", 0, "hot"), ("b", 1, "cold")]})
    # "a" unchanged (weight 4); "b" went cold -> warm, which counts at
    # the heavier of its two weights (2).
    after = _map({"k0": [("a", 0, "hot"), ("b", 1, "warm")]})
    assert before.drift(after) == pytest.approx(2 / 6)
    # Drift is symmetric: the heavier weight wins from either side.
    assert after.drift(before) == pytest.approx(2 / 6)


def test_drift_counts_socket_moves_and_one_sided_entries():
    before = _map({"k0": [("a", 0, "cold"), ("b", 1, "cold")]})
    # "a" moved sockets, "b" vanished: everything drifted.
    after = _map({"k0": [("a", 1, "cold")]})
    assert before.drift(after) == 1.0
    # Fully disjoint maps drift by definition.
    disjoint = _map({"k1": [("z", 0, "hot")]})
    assert before.drift(disjoint) == 1.0


def _scripted_refresher(monkeypatch, current, probes, **kwargs):
    """Refresher whose learn() probes return queued maps in order."""
    queue = list(probes)
    calls = []

    def fake_learn(fleet, selector, window_ns=200_000, hot_ratio=0.40, warm_ratio=0.05):
        calls.append((fleet, selector, window_ns, hot_ratio, warm_ratio))
        return queue.pop(0)

    monkeypatch.setattr(PlacementMap, "learn", staticmethod(fake_learn))
    refresher = PlacementRefresher(
        fleet="<fleet>", selector="lock.*", current=current, **kwargs
    )
    return refresher, calls


def test_refresher_adopts_only_past_the_adopt_threshold(monkeypatch):
    current = _map({"k0": [("a", 0, "hot"), ("b", 0, "hot")]})
    same = _map({"k0": [("a", 0, "hot"), ("b", 0, "hot")]})
    moved = _map({"k0": [("a", 1, "hot"), ("b", 0, "hot")]})  # drift 0.5
    refresher, calls = _scripted_refresher(
        monkeypatch,
        current,
        [same, moved],
        window_ns=12_345,
        adopt_above=0.25,
        settle_below=0.10,
    )

    in_force, adopted = refresher.maybe_refresh()
    assert in_force is current and not adopted
    assert refresher.last_drift == 0.0 and refresher.adoptions == 0

    in_force, adopted = refresher.maybe_refresh()
    assert in_force is moved and adopted
    assert refresher.current is moved
    assert refresher.last_drift == pytest.approx(0.5)
    assert refresher.refreshes == 2 and refresher.adoptions == 1
    # Probes carry the refresher's own selector/window/ratios.
    assert calls == [("<fleet>", "lock.*", 12_345, 0.40, 0.05)] * 2


def test_refresher_disarms_after_adoption_until_drift_settles(monkeypatch):
    def at_socket(socket):
        return _map({"k0": [("a", socket, "hot"), ("b", 0, "hot")]})

    current = at_socket(0)
    hi1, hi2, settle, hi3 = at_socket(1), at_socket(2), at_socket(1), at_socket(3)
    refresher, _ = _scripted_refresher(
        monkeypatch, current, [hi1, hi2, settle, hi3],
        adopt_above=0.25, settle_below=0.10,
    )

    assert refresher.maybe_refresh() == (hi1, True)       # armed: adopt
    assert not refresher.armed
    assert refresher.maybe_refresh() == (hi1, False)      # still high: no flap
    assert not refresher.armed
    assert refresher.maybe_refresh() == (hi1, False)      # settled: re-arm only
    assert refresher.armed
    assert refresher.maybe_refresh() == (hi3, True)       # genuine new excursion
    assert refresher.refreshes == 4 and refresher.adoptions == 2


def test_refresher_validates_the_hysteresis_band():
    current = _map({"k0": [("a", 0, "cold")]})
    with pytest.raises(ValueError, match="hysteresis band"):
        PlacementRefresher(None, "*", current, adopt_above=0.1, settle_below=0.2)
    with pytest.raises(ValueError, match="hysteresis band"):
        PlacementRefresher(None, "*", current, adopt_above=1.5)
    with pytest.raises(ValueError, match="hysteresis band"):
        PlacementRefresher(None, "*", current, settle_below=-0.1)


def test_refresher_learns_from_a_live_fleet():
    fleet = three_kernel_fleet()
    current = learn(fleet)
    refresher = PlacementRefresher(
        fleet, "svc.*.lock", current, window_ns=150_000, adopt_above=0.99
    )
    in_force, adopted = refresher.maybe_refresh()
    # A steady fleet re-measured the same way should not cross a 0.99
    # adopt threshold; the map in force is untouched.
    assert in_force is current and not adopted
    assert refresher.last_drift is not None and 0.0 <= refresher.last_drift < 0.99


# ----------------------------------------------------------------------
# Replanning the unexecuted tail
# ----------------------------------------------------------------------
def test_replan_keeps_done_waves_and_rewaves_the_tail():
    placement = _map(
        {
            "hot": [("a", 0, "hot"), ("b", 1, "hot")],       # radius 8
            "mild": [("a", 0, "warm")],                       # radius 2
            "cool": [("a", 0, "cold")],                       # radius 1
            "warm": [("a", 0, "warm"), ("b", 1, "cold")],     # radius 3
        }
    )
    planner = RolloutPlanner(max_concurrent_kernels=2, canary_kernels=1, bake_ns=0)
    plan = planner.plan("p", placement)
    assert [w.kernels for w in plan.waves] == [["cool"], ["mild", "warm"], ["hot"]]

    # The fleet moved under the rollout: "hot" cooled off, "mild" caught fire.
    refreshed = _map(
        {
            "hot": [("a", 0, "cold"), ("b", 1, "cold")],      # radius 2
            "mild": [("a", 1, "hot")],                         # radius 4
            "cool": [("a", 0, "cold")],
            "warm": [("a", 0, "warm"), ("b", 1, "cold")],      # radius 3
        }
    )
    replan = planner.replan_remaining(plan, refreshed, next_wave_index=1)
    # The executed canary wave is preserved verbatim; the tail re-ranks
    # by the refreshed blast radius without minting a new canary.
    assert replan.waves[0].kernels == ["cool"] and replan.waves[0].canary
    assert [w.kernels for w in replan.waves[1:]] == [["hot", "warm"], ["mild"]]
    assert [w.index for w in replan.waves] == [0, 1, 2]
    assert not any(w.canary for w in replan.waves[1:])
    assert replan.policy == "p"
    assert sorted(replan.kernels()) == sorted(plan.kernels())


def test_replan_unknown_kernel_ranks_first_and_keeps_canary_locks():
    placement = _map(
        {
            "k0": [("a", 0, "cold")],
            "k1": [("a", 0, "warm"), ("b", 0, "warm")],
            "k2": [("a", 0, "hot")],
        }
    )
    planner = RolloutPlanner(max_concurrent_kernels=1, canary_kernels=1, bake_ns=0)
    plan = planner.plan("p", placement)
    assert [w.kernels for w in plan.waves] == [["k0"], ["k1"], ["k2"]]

    # The refreshed map no longer sees k2 at all and re-learned k1.
    refreshed = _map({"k1": [("c", 1, "cold")]})
    replan = planner.replan_remaining(plan, refreshed, next_wave_index=1)
    # k2 ranks first (radius 0: nothing known at stake) and keeps its
    # original canary locks; k1's are refreshed from the new map.
    assert [w.kernels for w in replan.waves] == [["k0"], ["k2"], ["k1"]]
    assert replan.canary_locks["k2"] == plan.canary_locks["k2"]
    assert replan.canary_locks["k1"] == ["c"]
    assert replan.canary_locks["k0"] == plan.canary_locks["k0"]


def test_replan_preserves_verdict_mode_and_quorum():
    placement = _map({f"k{i}": [("a", 0, "cold")] for i in range(4)})
    planner = RolloutPlanner(
        max_concurrent_kernels=2, verdict_mode="quorum", quorum=0.5, bake_ns=7
    )
    plan = planner.plan("p", placement)
    replan = planner.replan_remaining(plan, placement, next_wave_index=2)
    assert replan.verdict_mode == "quorum" and replan.quorum == 0.5
    assert all(w.bake_ns == 7 for w in replan.waves)
    # Identical map: membership survives the re-wave untouched.
    assert sorted(replan.kernels()) == sorted(plan.kernels())
    # And a replan round-trips the journal format like any plan.
    assert FleetPlan.deserialize(replan.serialize()).serialize() == replan.serialize()
