"""The verifier's acceptance and rejection catalogue."""

import pytest

from repro.bpf import ContextLayout, HashMap, Program, VerificationError, Verifier
from repro.bpf.insn import (
    Insn,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDC,
    OP_LDX,
    OP_LD_MAP,
    OP_MOV,
    OP_STX,
    R0,
    R1,
    R2,
    R3,
    R4,
    R10,
)

LAYOUT = ContextLayout("test", ["a", "b"])


def verify(insns, maps=None, **kwargs):
    program = Program("t", insns, LAYOUT, maps=maps)
    return Verifier(**kwargs).verify(program)


def reject(insns, fragment, maps=None, **kwargs):
    with pytest.raises(VerificationError) as err:
        verify(insns, maps=maps, **kwargs)
    assert fragment in str(err.value), str(err.value)


class TestAcceptance:
    def test_minimal_program(self):
        report = verify([Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)])
        assert report.insn_count == 2

    def test_ctx_read_ok(self):
        verify([Insn(OP_LDX, dst=R0, src=R1, off=8), Insn(OP_EXIT)])

    def test_stack_roundtrip_ok(self):
        verify(
            [
                Insn(OP_LDC, dst=R2, imm=1),
                Insn(OP_STX, dst=R10, src=R2, off=-8),
                Insn(OP_LDX, dst=R0, src=R10, off=-8),
                Insn(OP_EXIT),
            ]
        )

    def test_branches_merge_ok(self):
        verify(
            [
                Insn(OP_LDX, dst=R2, src=R1, off=0),
                Insn("jeq", dst=R2, imm=0, off=3),
                Insn(OP_LDC, dst=R0, imm=1),
                Insn(OP_JA, off=2),
                Insn(OP_LDC, dst=R0, imm=2),
                Insn(OP_EXIT),
            ]
        )

    def test_map_call_ok(self):
        verify(
            [
                Insn(OP_LD_MAP, dst=R1, imm=0),
                Insn(OP_LDC, dst=R2, imm=5),
                Insn(OP_CALL, imm=8),
                Insn(OP_EXIT),
            ],
            maps=[HashMap("m")],
        )

    def test_dead_code_logged_not_fatal(self):
        report = verify(
            [
                Insn(OP_LDC, dst=R0, imm=0),
                Insn(OP_JA, off=2),
                Insn(OP_LDC, dst=R0, imm=9),  # unreachable
                Insn(OP_EXIT),
            ]
        )
        assert any("unreachable" in line for line in report.log)

    def test_verified_flag_set(self):
        program = Program("t", [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)], LAYOUT)
        assert not program.verified
        Verifier().verify(program)
        assert program.verified


class TestStructuralRejections:
    def test_empty_program(self):
        reject([], "empty")

    def test_backward_jump(self):
        reject(
            [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_JA, off=-1), Insn(OP_EXIT)],
            "backward",
        )

    def test_jump_out_of_bounds(self):
        reject(
            [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_JA, off=50), Insn(OP_EXIT)],
            "out of bounds",
        )

    def test_fall_off_the_end(self):
        reject([Insn(OP_LDC, dst=R0, imm=0)], "fall off")

    def test_write_to_frame_pointer(self):
        reject(
            [Insn(OP_LDC, dst=R10, imm=0), Insn(OP_EXIT)],
            "frame pointer",
        )

    def test_program_too_large(self):
        insns = [Insn(OP_LDC, dst=R0, imm=0)] * 20 + [Insn(OP_EXIT)]
        reject(insns, "too large", max_insns=10)

    def test_bad_register_index(self):
        reject([Insn(OP_LDC, dst=14, imm=0), Insn(OP_EXIT)], "does not exist")


class TestDataflowRejections:
    def test_uninitialized_register_use(self):
        reject([Insn(OP_MOV, dst=R0, src=R3), Insn(OP_EXIT)], "before init")

    def test_uninitialized_stack_read(self):
        reject(
            [Insn(OP_LDX, dst=R0, src=R10, off=-8), Insn(OP_EXIT)],
            "uninitialized stack",
        )

    def test_exit_without_r0(self):
        reject([Insn(OP_EXIT)], "exit with R0")

    def test_ctx_bad_offset(self):
        reject(
            [Insn(OP_LDX, dst=R0, src=R1, off=64), Insn(OP_EXIT)],
            "invalid offset",
        )

    def test_ctx_unaligned(self):
        reject(
            [Insn(OP_LDX, dst=R0, src=R1, off=4), Insn(OP_EXIT)],
            "invalid offset",
        )

    def test_ctx_is_read_only(self):
        reject(
            [
                Insn(OP_LDC, dst=R2, imm=0),
                Insn(OP_STX, dst=R1, src=R2, off=0),
                Insn(OP_EXIT),
            ],
            "read-only",
        )

    def test_stack_out_of_bounds(self):
        reject(
            [
                Insn(OP_LDC, dst=R2, imm=0),
                Insn(OP_STX, dst=R10, src=R2, off=-520),
                Insn(OP_EXIT),
            ],
            "invalid offset",
        )

    def test_load_from_scalar(self):
        reject(
            [
                Insn(OP_LDC, dst=R2, imm=100),
                Insn(OP_LDX, dst=R0, src=R2, off=0),
                Insn(OP_EXIT),
            ],
            "non-pointer",
        )

    def test_pointer_arithmetic_needs_constant(self):
        reject(
            [
                Insn(OP_LDX, dst=R2, src=R1, off=0),  # unknown scalar
                Insn(OP_MOV, dst=R3, src=R10),
                Insn("add", dst=R3, src=R2),
                Insn(OP_LDC, dst=R0, imm=0),
                Insn(OP_EXIT),
            ],
            "known constant",
        )

    def test_pointer_multiplication_rejected(self):
        reject(
            [
                Insn(OP_MOV, dst=R2, src=R10),
                Insn("mul", dst=R2, imm=2),
                Insn(OP_LDC, dst=R0, imm=0),
                Insn(OP_EXIT),
            ],
            "on a pointer",
        )

    def test_comparison_on_pointer_rejected(self):
        reject(
            [
                Insn(OP_MOV, dst=R2, src=R10),
                Insn("jeq", dst=R2, imm=0, off=1),
                Insn(OP_EXIT),
            ],
            "non-scalar",
        )

    def test_spilled_pointer_rejected(self):
        reject(
            [
                Insn(OP_MOV, dst=R2, src=R1),
                Insn(OP_STX, dst=R10, src=R2, off=-8),
                Insn(OP_LDC, dst=R0, imm=0),
                Insn(OP_EXIT),
            ],
            "scalars may be spilled",
        )

    def test_conflicting_types_at_merge_unusable(self):
        # r2 is a scalar on one path, a ctx pointer on the other; using
        # it afterwards must be rejected.
        reject(
            [
                Insn(OP_LDX, dst=R3, src=R1, off=0),
                Insn("jeq", dst=R3, imm=0, off=3),
                Insn(OP_LDC, dst=R2, imm=7),
                Insn(OP_JA, off=2),
                Insn(OP_MOV, dst=R2, src=R1),
                Insn(OP_MOV, dst=R0, src=R2),  # use after merge
                Insn(OP_EXIT),
            ],
            "incompatible types",
        )


class TestHelperRules:
    def test_unknown_helper(self):
        reject([Insn(OP_CALL, imm=999), Insn(OP_EXIT)], "unknown helper")

    def test_helper_whitelist(self):
        reject(
            [Insn(OP_CALL, imm=3), Insn(OP_EXIT)],
            "not allowed",
            allowed_helpers=["get_smp_processor_id"],
        )

    def test_map_helper_requires_handle(self):
        reject(
            [
                Insn(OP_LDC, dst=R1, imm=0),
                Insn(OP_LDC, dst=R2, imm=0),
                Insn(OP_CALL, imm=8),
                Insn(OP_EXIT),
            ],
            "map handle",
        )

    def test_helper_args_must_be_initialized(self):
        reject(
            [
                Insn(OP_LD_MAP, dst=R1, imm=0),
                Insn(OP_CALL, imm=11),  # map_contains needs r2 (the key)
                Insn(OP_EXIT),
            ],
            "before init",
            maps=[HashMap("m")],
        )

    def test_ld_map_index_checked(self):
        reject(
            [Insn(OP_LD_MAP, dst=R1, imm=3), Insn(OP_EXIT)],
            "not attached",
        )

    def test_caller_saved_dead_after_call(self):
        reject(
            [
                Insn(OP_LDC, dst=R2, imm=1),
                Insn(OP_CALL, imm=1),
                Insn(OP_MOV, dst=R0, src=R2),  # r2 clobbered by the call
                Insn(OP_EXIT),
            ],
            "before init",
        )
