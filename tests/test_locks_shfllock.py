"""ShflLock internals: shuffling mechanics, hook points, safety bounds."""

import pytest

from repro import locks as L
from repro.locks.base import HOOK_CMP_NODE, HOOK_SKIP_SHUFFLE, HookSet
from repro.locks.shfllock import S_HEAD, S_SHUFFLER, S_WAITING, ShflNode
from repro.sim import Engine, Topology, ops


def build_queue(engine, lock, head_socket, sockets):
    """Construct a queue of nodes with the given sockets (test rigging)."""
    cpus = {s: engine.topology.cpus_of_socket(s)[0] for s in set([head_socket] + sockets)}
    tasks = []

    def noop(task):
        yield ops.Delay(1)

    def make_node(socket, name):
        task = engine.spawn(noop, cpu=cpus[socket], name=name)
        tasks.append(task)
        return ShflNode(engine, task)

    head = make_node(head_socket, "head")
    prev = head
    nodes = []
    for index, socket in enumerate(sockets):
        node = make_node(socket, f"n{index}")
        prev.next.value = node
        nodes.append(node)
        prev = node
    lock.tail.value = prev
    return head, nodes


class TestShufflePass:
    def test_groups_same_socket_behind_shuffler(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, policy=L.NumaPolicy(), debug_checks=True)
        head, _nodes = build_queue(eng, lock, 0, [1, 0, 2, 0, 3, 0])
        result = {}

        def driver(task):
            result["r"] = yield from lock._shuffle_pass(task, head)

        eng.spawn(driver, cpu=0)
        eng.run()
        moved, _anchor, _deepest = result["r"]
        assert moved == 2
        order = [n.task.numa_node for n in L.ShflLock.walk_queue_from(head)]
        # The last node is the tail and is never moved.
        assert order == [0, 0, 0, 1, 2, 3, 0]

    def test_queue_membership_preserved(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, policy=L.NumaPolicy(), debug_checks=True)
        head, nodes = build_queue(eng, lock, 0, [3, 1, 0, 2, 0, 1, 0, 3])
        before = {id(n) for n in L.ShflLock.walk_queue_from(head)}

        def driver(task):
            yield from lock._shuffle_pass(task, head)

        eng.spawn(driver, cpu=0)
        eng.run()
        after = {id(n) for n in L.ShflLock.walk_queue_from(head)}
        assert before == after

    def test_fifo_policy_never_moves(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, debug_checks=True)  # no policy
        head, _ = build_queue(eng, lock, 0, [1, 0, 2, 0])
        result = {}

        def driver(task):
            result["r"] = yield from lock._shuffle_pass(task, head)

        eng.spawn(driver, cpu=0)
        eng.run()
        assert result["r"][0] == 0

    def test_window_bounds_pass(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, policy=L.NumaPolicy(), max_shuffle_window=3)
        head, _ = build_queue(eng, lock, 0, [1, 1, 1, 1, 0, 0])
        result = {}

        def driver(task):
            result["r"] = yield from lock._shuffle_pass(task, head)

        eng.spawn(driver, cpu=0)
        eng.run()
        # Window of 3 cannot reach the socket-0 nodes at positions 5-6.
        assert result["r"][0] == 0


class TestHookPoints:
    def test_cmp_node_hook_consulted(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, debug_checks=True)
        calls = []
        hooks = HookSet(dispatch_ns=5)
        # Approve only socket-2 waiters: forces a real splice (an
        # approve-everyone hook only extends the adjacent prefix).
        hooks.attach(
            HOOK_CMP_NODE,
            lambda env: (
                calls.append(env["curr_node"]) or int(env["curr_node"].socket == 2),
                10,
            ),
        )
        lock.hooks = hooks
        head, _ = build_queue(eng, lock, 0, [1, 2, 3])
        result = {}

        def driver(task):
            result["r"] = yield from lock._shuffle_pass(task, head)

        eng.spawn(driver, cpu=0)
        eng.run()
        assert calls  # the BPF-side decision was consulted
        assert result["r"][0] == 1
        order = [n.task.numa_node for n in L.ShflLock.walk_queue_from(head)]
        assert order == [0, 2, 1, 3]

    def test_skip_shuffle_hook_short_circuits(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, policy=L.NumaPolicy())
        hooks = HookSet(dispatch_ns=5)
        hooks.attach(HOOK_SKIP_SHUFFLE, lambda env: (1, 5))
        lock.hooks = hooks
        decided = {}

        def driver(task):
            node = ShflNode(eng, task)
            decided["skip"] = yield from lock._decide_skip(task, node)

        eng.spawn(driver, cpu=0)
        eng.run()
        assert decided["skip"] is True

    def test_hook_cost_charged(self, topo):
        """A cmp_node program's cost must consume simulated time."""
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng)
        hooks = HookSet(dispatch_ns=50)
        hooks.attach(HOOK_CMP_NODE, lambda env: (0, 500))
        lock.hooks = hooks
        head, _ = build_queue(eng, lock, 0, [1, 2, 3])
        t0 = {}

        def driver(task):
            start = task.engine.now
            yield from lock._shuffle_pass(task, head)
            t0["elapsed"] = task.engine.now - start

        eng.spawn(driver, cpu=1)
        eng.run()
        assert t0["elapsed"] >= 2 * 550  # two decisions at least


class TestEndToEnd:
    def test_shuffling_produces_socket_batches(self):
        topo = Topology(sockets=4, cores_per_socket=4)
        eng = Engine(topo, seed=11)
        lock = L.ShflLock(eng, policy=L.NumaPolicy(), debug_checks=True)
        handoffs = {"local": 0, "remote": 0, "last": None}

        def worker(task):
            while task.engine.now < 800_000:
                yield from lock.acquire(task)
                if handoffs["last"] is not None:
                    key = "local" if task.numa_node == handoffs["last"] else "remote"
                    handoffs[key] += 1
                handoffs["last"] = task.numa_node
                yield ops.Delay(100)
                yield from lock.release(task)
                yield ops.Delay(task.engine.rng.randint(0, 300))

        for cpu in range(16):
            eng.spawn(worker, cpu=cpu, at=eng.rng.randint(0, 20_000))
        eng.run()
        total = handoffs["local"] + handoffs["remote"]
        assert total > 100
        # Random handoffs would be ~25% local on 4 sockets; shuffling
        # should push well past that.
        assert handoffs["local"] / total > 0.5

    def test_blocking_mode_parks_waiters(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ShflLock(eng, policy=L.NumaPolicy(), blocking=True, spin_budget_ns=400)

        def worker(task):
            for _ in range(5):
                yield from lock.acquire(task)
                yield ops.Delay(20_000)  # long CS forces waiters to park
                yield from lock.release(task)

        for cpu in range(4):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        assert eng.stats.counter("sched.parks").value > 0

    def test_bounded_rounds_limits_shuffler_work(self, topo):
        def run(rounds):
            eng = Engine(topo, seed=1)
            lock = L.ShflLock(eng, policy=L.NumaPolicy(), max_shuffle_rounds=rounds)

            def worker(task):
                for _ in range(20):
                    yield from lock.acquire(task)
                    yield ops.Delay(300)
                    yield from lock.release(task)

            for cpu in range(8):
                eng.spawn(worker, cpu=cpu)
            eng.run()
            return lock

        # rounds=0: every shuffler tenure is cut off before any pass.
        assert run(0).shuffle_passes == 0
        # With a budget, passes happen but each tenure is bounded.
        assert run(4).shuffle_passes > 0
