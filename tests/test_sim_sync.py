"""Wait queues, barriers, completions."""

from repro.sim import Barrier, Completion, Engine, Topology, WaitQueue, ops


def make_engine():
    return Engine(Topology(sockets=1, cores_per_socket=8))


class TestWaitQueue:
    def test_fifo_wake_order(self):
        eng = make_engine()
        queue = WaitQueue("q")
        order = []

        def sleeper(task):
            yield ops.Delay(task.tid)  # deterministic arrival order
            yield from queue.sleep(task)
            order.append(task.name)

        def waker(task):
            yield ops.Delay(1_000)
            while len(queue):
                yield from queue.wake_one(task)
                yield ops.Delay(100)

        for index in range(3):
            eng.spawn(sleeper, cpu=index, name=f"s{index}")
        eng.spawn(waker, cpu=3)
        eng.run()
        assert order == ["s0", "s1", "s2"]

    def test_wake_all(self):
        eng = make_engine()
        queue = WaitQueue()
        woken = []

        def sleeper(task):
            yield from queue.sleep(task)
            woken.append(task.name)

        def waker(task):
            yield ops.Delay(500)
            yield from queue.wake_all(task)

        for index in range(4):
            eng.spawn(sleeper, cpu=index)
        eng.spawn(waker, cpu=4)
        eng.run()
        assert len(woken) == 4

    def test_sleep_timeout_self_removes(self):
        eng = make_engine()
        queue = WaitQueue()
        results = []

        def sleeper(task):
            woken = yield from queue.sleep(task, timeout_ns=1_000)
            results.append(woken)

        eng.spawn(sleeper, cpu=0)
        eng.run()
        assert results == [False]
        assert len(queue) == 0


class TestBarrier:
    def test_all_release_together(self):
        eng = make_engine()
        barrier = Barrier(4)
        release_times = []

        def body(task):
            yield ops.Delay(task.tid * 100)
            yield from barrier.wait(task)
            release_times.append(task.engine.now)

        for index in range(4):
            eng.spawn(body, cpu=index)
        eng.run()
        assert len(release_times) == 4
        # Nobody released before the last arrival (t=400).
        assert min(release_times) >= 400

    def test_invalid_parties(self):
        import pytest

        with pytest.raises(ValueError):
            Barrier(0)


class TestCompletion:
    def test_wait_then_complete(self):
        eng = make_engine()
        completion = Completion()
        log = []

        def waiter(task):
            yield from completion.wait(task)
            log.append(("woke", task.engine.now))

        def completer(task):
            yield ops.Delay(2_000)
            yield from completion.complete_all(task)

        eng.spawn(waiter, cpu=0)
        eng.spawn(completer, cpu=1)
        eng.run()
        assert log and log[0][1] >= 2_000

    def test_wait_after_done_returns_immediately(self):
        eng = make_engine()
        completion = Completion()
        completion.done = True

        def waiter(task):
            yield from completion.wait(task)
            yield ops.Delay(1)

        task = eng.spawn(waiter, cpu=0)
        eng.run()
        assert task.done
