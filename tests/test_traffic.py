"""The traffic layer: arrivals, phases, tenants, traces, and replay.

The load layer's contract is *byte-level* determinism: a trace is a
pure function of (schedule, arrivals, tenants, seed), and reproducing
a rollout verdict requires reproducing the load that produced it.  The
property tests here assert exactly that — same seed ⇒ byte-identical
JSONL — across arrival models, schedule shapes, and tenant mixes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    CHAOS_TRAFFIC_SITES,
    FaultPlan,
    SITE_TRAFFIC_PHASE_SHIFT,
    injected,
    sample_plan,
)
from repro.kernel.core import Kernel
from repro.locks import ShflLock
from repro.sim import Topology
from repro.traffic import (
    ClosedLoopProcess,
    LockBinding,
    Phase,
    PhaseSchedule,
    PoissonProcess,
    Tenant,
    TenantSet,
    TraceGenerator,
    TraceRunner,
)

TOPO = Topology(sockets=2, cores_per_socket=4)

TENANTS = TenantSet(
    [
        Tenant("web", 3.0, [("shard0", 2.0), ("shard1", 1.0)]),
        Tenant("batch", 1.0, [("shard1", 1.0)]),
    ]
)


def _bursty(seed=7, rate=150.0, scale=6.0):
    schedule = PhaseSchedule.burst(800_000, 400_000, 300_000, burst_scale=scale)
    return TraceGenerator(schedule, PoissonProcess(rate), TENANTS, seed=seed)


class TestPhaseSchedule:
    def test_boundaries_and_lookup(self):
        schedule = PhaseSchedule.burst(1_000, 500, 250, burst_scale=4.0)
        assert schedule.total_ns == 1_750
        starts = [start for start, _ in schedule.boundaries()]
        assert starts == [0, 1_000, 1_500]
        assert schedule.phase_at(0).name == "pre"
        assert schedule.phase_at(1_200).name == "burst"
        assert schedule.phase_at(9_999).name == "post"  # clamps to last

    def test_diurnal_ramps_up_then_down(self):
        schedule = PhaseSchedule.diurnal(8_000, steps=8, trough_scale=0.2)
        scales = [p.rate_scale for p in schedule]
        assert scales[0] < scales[3]  # ramp up
        assert scales[4] > scales[7]  # ramp down
        assert max(scales) <= 1.0 and min(scales) >= 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase("x", 0)
        with pytest.raises(ValueError):
            Phase("x", 100, rate_scale=-1)
        with pytest.raises(ValueError):
            PhaseSchedule([])
        with pytest.raises(ValueError):
            PhaseSchedule.diurnal(8_000, steps=1)


class TestArrivals:
    def test_poisson_times_sorted_and_bounded(self):
        import random

        times = PoissonProcess(100.0).times(random.Random(3), 1_000, 500_000)
        assert times == sorted(times)
        assert all(1_000 <= t < 500_000 for t in times)
        assert len(times) > 10

    def test_poisson_rate_scale(self):
        import random

        lo = PoissonProcess(100.0).times(random.Random(3), 0, 1_000_000, 1.0)
        hi = PoissonProcess(100.0).times(random.Random(3), 0, 1_000_000, 5.0)
        assert len(hi) > 3 * len(lo)
        assert PoissonProcess(100.0).times(random.Random(3), 0, 1_000_000, 0.0) == []

    def test_closed_loop_self_limits(self):
        import random

        proc = ClosedLoopProcess(clients=4, think_ns=50_000)
        times = proc.times(random.Random(3), 0, 1_000_000)
        assert times == sorted(times)
        # A 4-client pool can't produce more than ~clients * window/think
        # arrivals no matter what: the closed-loop ceiling.
        assert len(times) < 4 * (1_000_000 // 50_000) * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0)
        with pytest.raises(ValueError):
            ClosedLoopProcess(0, 1_000)


class TestTenants:
    def test_weighted_assignment_tracks_weights(self):
        import random

        rng = random.Random(11)
        counts = {"web": 0, "batch": 0}
        for _ in range(2_000):
            tenant, op = TENANTS.assign(rng)
            counts[tenant] += 1
            assert op in ("shard0", "shard1")
        assert counts["web"] > 2 * counts["batch"]

    def test_op_keys(self):
        assert TENANTS.op_keys() == ("shard0", "shard1")

    def test_validation(self):
        with pytest.raises(ValueError):
            Tenant("t", 0.0, [("a", 1.0)])
        with pytest.raises(ValueError):
            Tenant("t", 1.0, [])
        with pytest.raises(ValueError):
            TenantSet([])
        with pytest.raises(ValueError):
            TenantSet([Tenant("a", 1, [("x", 1)]), Tenant("a", 1, [("x", 1)])])


class TestTraceDeterminism:
    def test_same_seed_byte_identical(self):
        gen = _bursty(seed=9)
        assert gen.generate().to_jsonl() == gen.generate().to_jsonl()

    def test_different_seeds_differ(self):
        assert _bursty(seed=1).generate().to_jsonl() != _bursty(seed=2).generate().to_jsonl()

    def test_events_sorted_with_phase_attribution(self):
        trace = _bursty().generate()
        times = [ev.time_ns for ev in trace]
        assert times == sorted(times)
        schedule = PhaseSchedule.burst(800_000, 400_000, 300_000, burst_scale=6.0)
        for ev in trace:
            assert schedule.phase_at(ev.time_ns).name == ev.phase

    def test_burst_phase_is_denser(self):
        trace = _bursty(scale=6.0).generate()
        counts = trace.counts_by_phase()
        # burst covers half the pre window but at 6x the rate.
        assert counts["burst"] > 2 * counts["pre"]

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=5.0, max_value=300.0),
        shape=st.sampled_from(["steady", "burst", "diurnal"]),
        closed=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_same_seed_same_bytes(self, seed, rate, shape, closed):
        if shape == "steady":
            schedule = PhaseSchedule.steady(600_000)
        elif shape == "burst":
            schedule = PhaseSchedule.burst(300_000, 150_000, 150_000, burst_scale=5.0)
        else:
            schedule = PhaseSchedule.diurnal(600_000, steps=4)
        if closed:
            arrivals = ClosedLoopProcess(clients=6, think_ns=40_000)
        else:
            arrivals = PoissonProcess(rate)
        gen = TraceGenerator(schedule, arrivals, TENANTS, seed=seed)
        a, b = gen.generate(), gen.generate()
        assert a.to_jsonl() == b.to_jsonl()
        # Arrival times, tenant assignment, and phase boundaries all match.
        assert [ev.time_ns for ev in a] == [ev.time_ns for ev in b]
        assert [ev.tenant for ev in a] == [ev.tenant for ev in b]
        assert a.phase_names() == b.phase_names()


BINDINGS = {
    "shard0": LockBinding("svc.shard0.lock", cs_ns=500),
    "shard1": LockBinding("svc.shard1.lock", cs_ns=500),
}


def _kernel(seed=1):
    kernel = Kernel(TOPO, seed=seed)
    kernel.add_lock("svc.shard0.lock", ShflLock(kernel.engine, name="s0"))
    kernel.add_lock("svc.shard1.lock", ShflLock(kernel.engine, name="s1"))
    return kernel


class TestTraceRunner:
    def test_replay_completes_every_request(self):
        trace = _bursty().generate()
        runner = TraceRunner(trace, BINDINGS)
        kernel = _kernel()
        installed = runner.install(kernel, tag="k0")
        assert installed == len(trace)
        kernel.run(until=trace.total_ns + 3_000_000)
        for phase in trace.phase_names():
            stats = runner.phase_stats(phase)
            assert stats.completions == stats.arrivals

    def test_burst_phase_waits_longer(self):
        trace = _bursty(scale=8.0).generate()
        runner = TraceRunner(trace, BINDINGS)
        kernel = _kernel()
        runner.install(kernel, tag="k0")
        kernel.run(until=trace.total_ns + 3_000_000)
        assert (
            runner.phase_stats("burst").wait_p99()
            > 2 * runner.phase_stats("pre").wait_p99()
        )

    def test_unbound_op_rejected(self):
        trace = _bursty().generate()
        with pytest.raises(KeyError):
            TraceRunner(trace, {"shard0": BINDINGS["shard0"]})

    def test_replay_deterministic(self):
        def waits():
            trace = _bursty().generate()
            runner = TraceRunner(trace, BINDINGS)
            kernel = _kernel(seed=4)
            runner.install(kernel, tag="k0")
            kernel.run(until=trace.total_ns + 3_000_000)
            return [
                (phase, runner.phase_stats(phase).wait_p99())
                for phase in trace.phase_names()
            ]

        assert waits() == waits()

    def test_report_lists_phases(self):
        trace = _bursty().generate()
        runner = TraceRunner(trace, BINDINGS)
        kernel = _kernel()
        runner.install(kernel, tag="k0")
        kernel.run(until=trace.total_ns + 3_000_000)
        text = runner.report()
        for phase in ("pre", "burst", "post"):
            assert phase in text


class TestPhaseShiftFault:
    def test_stall_shifts_phase_earlier(self):
        trace = _bursty().generate()
        shift = 300_000
        plan = FaultPlan(seed=1)
        plan.stall(SITE_TRAFFIC_PHASE_SHIFT, delay_ns=shift, times=1)
        kernel = _kernel()
        runner = TraceRunner(trace, BINDINGS)
        with injected(plan):
            runner.install(kernel, tag="k0")
        # The first phase consulted ("pre") absorbed the one-shot rule:
        # its events moved `shift` ns earlier (clamped at the install
        # instant), so the earliest spawn sits at t=0 instead of the
        # first Poisson arrival.
        first = min(t.spawn_time for t in kernel.engine.tasks)
        unshifted = _kernel()
        TraceRunner(trace, BINDINGS).install(unshifted, tag="k0")
        first_unshifted = min(t.spawn_time for t in unshifted.engine.tasks)
        assert first < first_unshifted

    def test_burst_can_land_mid_bake(self):
        # Target the burst phase specifically: pre/post rules exhausted
        # by `after`, so the burst arrives 300us early.
        trace = _bursty().generate()
        shift = 300_000
        plan = FaultPlan(seed=1)
        plan.stall(SITE_TRAFFIC_PHASE_SHIFT, delay_ns=shift, times=1, after=1)
        kernel = _kernel()
        runner = TraceRunner(trace, BINDINGS)
        with injected(plan):
            runner.install(kernel, tag="k0")
        burst_starts = [
            t.spawn_time
            for t in kernel.engine.tasks
            if "req" in t.name and trace.events[int(t.name.split("req")[1])].phase == "burst"
        ]
        assert min(burst_starts) < 800_000  # earlier than the planned burst start
        kernel.run(until=trace.total_ns + 3_000_000)
        for phase in trace.phase_names():
            stats = runner.phase_stats(phase)
            assert stats.completions == stats.arrivals  # replay still completes


class TestChaosSampler:
    def test_existing_seeds_byte_identical(self):
        # The traffic rule is drawn after every other rule and gated on
        # a default-empty site list, so pre-existing chaos seeds keep
        # their exact plans.
        for seed in (3, 11, 19, 23, 31, 42):
            before = sample_plan(seed)
            after = sample_plan(seed, traffic_sites=())
            assert [repr(r) for r in before.rules] == [repr(r) for r in after.rules]

    def test_traffic_rule_only_appends(self):
        for seed in range(30):
            base = sample_plan(seed)
            with_traffic = sample_plan(seed, traffic_sites=CHAOS_TRAFFIC_SITES)
            base_reprs = [repr(r) for r in base.rules]
            traffic_reprs = [repr(r) for r in with_traffic.rules]
            assert traffic_reprs[: len(base_reprs)] == base_reprs
            extra = traffic_reprs[len(base_reprs):]
            assert len(extra) <= 1
            for r in extra:
                assert SITE_TRAFFIC_PHASE_SHIFT in r

    def test_some_seed_draws_a_traffic_rule(self):
        drawn = sum(
            len(sample_plan(seed, traffic_sites=CHAOS_TRAFFIC_SITES).rules)
            - len(sample_plan(seed).rules)
            for seed in range(30)
        )
        assert drawn > 5  # ~half the seeds should draw the stall rule
