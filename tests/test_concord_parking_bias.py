"""Adaptive parking (§3.1.1) and BRAVO bias control policies."""

import pytest

from repro.concord import Concord
from repro.concord.policies import (
    install_bravo,
    make_parking_policy,
    set_reader_bias,
)
from repro.kernel import Kernel
from repro.locks import BravoLock, RWSemaphore, SpinParkMutex
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    return Kernel(Topology(sockets=2, cores_per_socket=4), seed=9)


class TestAdaptiveParking:
    def _run(self, kernel, site, cs_ns=8_000, workers=4, iters=20):
        def worker(task):
            for _ in range(iters):
                yield from site.acquire(task)
                yield ops.Delay(cs_ns)
                yield from site.release(task)
                yield ops.Delay(200)

        for cpu in range(workers):
            kernel.spawn(worker, cpu=cpu)
        kernel.run()

    def test_policy_sets_spin_budget_from_map(self, kernel):
        """With the measured CS in the map, waiters spin ~2x the CS and
        avoid parking entirely for short CSes."""
        site = kernel.add_lock(
            "m.lock", SpinParkMutex(kernel.engine, spin_budget_ns=500)
        )
        concord = Concord(kernel)
        spec, cs_map = make_parking_policy(lock_selector="m.lock")
        concord.load_policy(spec)
        cs_map[kernel.lock_id_by_name("m.lock")] = 8_000  # userspace estimate
        self._run(kernel, site)
        # Budget 16us > 8us CS: nobody should ever park.
        assert site.core.impl.park_count == 0

    def test_without_policy_short_budget_parks(self, kernel):
        site = kernel.add_lock(
            "m.lock", SpinParkMutex(kernel.engine, spin_budget_ns=500)
        )
        self._run(kernel, site)
        assert site.core.impl.park_count > 0

    def test_budget_capped(self, kernel):
        """The policy caps the derived budget at 50us."""
        site = kernel.add_lock(
            "m.lock", SpinParkMutex(kernel.engine, spin_budget_ns=500)
        )
        concord = Concord(kernel)
        spec, cs_map = make_parking_policy(lock_selector="m.lock")
        concord.load_policy(spec)
        cs_map[kernel.lock_id_by_name("m.lock")] = 10_000_000
        # Hold far beyond the cap: waiters must still park eventually.
        self._run(kernel, site, cs_ns=200_000, workers=2, iters=3)
        assert site.core.impl.park_count > 0


class TestReaderBiasControl:
    def test_toggle_bias_at_runtime(self, kernel):
        site = kernel.add_rwlock("r.lock", RWSemaphore(kernel.engine))
        concord = Concord(kernel)
        install_bravo(concord, "r.lock")
        impl = site.core.impl
        assert isinstance(impl, BravoLock)
        assert impl.rbias.peek() == 1
        set_reader_bias(concord, "r.lock", False)
        assert impl.rbias.peek() == 0
        set_reader_bias(concord, "r.lock", True)
        assert impl.rbias.peek() == 1
        assert any(e.kind == "param" for e in concord.events)

    def test_bias_off_forces_slowpath(self, kernel):
        site = kernel.add_rwlock("r.lock", RWSemaphore(kernel.engine))
        concord = Concord(kernel)
        install_bravo(concord, "r.lock")
        set_reader_bias(concord, "r.lock", False)
        impl = site.core.impl
        impl.inhibit_until = 10**12  # keep readers from re-enabling it

        def reader(task):
            for _ in range(10):
                yield from site.read_acquire(task)
                yield ops.Delay(100)
                yield from site.read_release(task)

        kernel.spawn(reader, cpu=0)
        kernel.run()
        assert impl.slowpath_reads == 10
        assert impl.fastpath_reads == 0

    def test_set_bias_on_non_bravo_rejected(self, kernel):
        kernel.add_rwlock("r.lock", RWSemaphore(kernel.engine))
        concord = Concord(kernel)
        with pytest.raises(TypeError):
            set_reader_bias(concord, "r.lock", True)
