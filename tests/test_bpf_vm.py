"""BPF VM semantics: ALU, jumps, memory, helpers, runtime guards, costs."""

import pytest

from repro.bpf import ContextLayout, HashMap, Program, RuntimeFault, VM
from repro.bpf.insn import (
    Insn,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDC,
    OP_LDX,
    OP_LD_MAP,
    OP_MOV,
    OP_ST,
    OP_STX,
    R0,
    R1,
    R2,
    R3,
    R10,
)

LAYOUT = ContextLayout("test", ["a", "b", "c"])
U64 = (1 << 64) - 1


def run(insns, ctx=None, maps=None, task=None, engine=None, **vm_kwargs):
    program = Program("t", insns, LAYOUT, maps=maps)
    vm = VM(**vm_kwargs)
    values = LAYOUT.pack(ctx or {})
    return vm.run(program, values, task=task, engine=engine)


class TestALU:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, U64),  # wraps
            ("mul", 1 << 40, 1 << 30, (1 << 70) & U64),
            ("div", 17, 5, 3),
            ("div", 17, 0, 0),   # eBPF: div by zero -> 0
            ("mod", 17, 5, 2),
            ("mod", 17, 0, 17),  # eBPF: mod by zero -> dst unchanged
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("lsh", 1, 65, 2),   # shift masked to 6 bits
            ("rsh", 8, 2, 2),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        r0, _cost = run(
            [
                Insn(OP_LDC, dst=R0, imm=a),
                Insn(OP_LDC, dst=R1, imm=b),
                Insn(op, dst=R0, src=R1),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == expected

    def test_arsh_sign_extends(self):
        minus_8 = (-8) & U64
        r0, _ = run(
            [
                Insn(OP_LDC, dst=R0, imm=minus_8),
                Insn("arsh", dst=R0, imm=1),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == (-4) & U64

    def test_neg(self):
        r0, _ = run(
            [Insn(OP_LDC, dst=R0, imm=5), Insn("neg", dst=R0, imm=0), Insn(OP_EXIT)]
        )
        assert r0 == (-5) & U64

    def test_imm_form(self):
        r0, _ = run(
            [Insn(OP_LDC, dst=R0, imm=10), Insn("add", dst=R0, imm=32), Insn(OP_EXIT)]
        )
        assert r0 == 42


class TestJumps:
    def test_ja_skips(self):
        r0, _ = run(
            [
                Insn(OP_LDC, dst=R0, imm=1),
                Insn(OP_JA, off=2),
                Insn(OP_LDC, dst=R0, imm=99),
                Insn(OP_EXIT),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == 1

    @pytest.mark.parametrize(
        "op,a,b,taken",
        [
            ("jeq", 5, 5, True),
            ("jne", 5, 5, False),
            ("jgt", 6, 5, True),
            ("jlt", 6, 5, False),
            ("jsgt", (-1) & U64, 0, False),  # signed: -1 < 0
            ("jslt", (-1) & U64, 0, True),
            ("jset", 0b110, 0b010, True),
            ("jset", 0b100, 0b010, False),
        ],
    )
    def test_conditional(self, op, a, b, taken):
        r0, _ = run(
            [
                Insn(OP_LDC, dst=R0, imm=a),
                Insn(OP_LDC, dst=R1, imm=b),
                # Jump semantics: pc += off (off counted from the jump
                # instruction itself), matching the assembler's patcher.
                Insn(op, dst=R0, src=R1, off=3),
                Insn(OP_LDC, dst=R0, imm=0),
                Insn(OP_JA, off=2),
                Insn(OP_LDC, dst=R0, imm=1),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == (1 if taken else 0)


class TestMemory:
    def test_ctx_reads(self):
        r0, _ = run(
            [
                Insn(OP_LDX, dst=R0, src=R1, off=8),  # field b
                Insn(OP_EXIT),
            ],
            ctx={"a": 1, "b": 42, "c": 3},
        )
        assert r0 == 42

    def test_stack_spill_and_reload(self):
        r0, _ = run(
            [
                Insn(OP_LDC, dst=R2, imm=77),
                Insn(OP_STX, dst=R10, src=R2, off=-8),
                Insn(OP_LDX, dst=R0, src=R10, off=-8),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == 77

    def test_st_immediate(self):
        r0, _ = run(
            [
                Insn(OP_ST, dst=R10, off=-16, imm=9),
                Insn(OP_LDX, dst=R0, src=R10, off=-16),
                Insn(OP_EXIT),
            ]
        )
        assert r0 == 9

    def test_ctx_write_faults(self):
        with pytest.raises(RuntimeFault):
            run(
                [
                    Insn(OP_LDC, dst=R2, imm=1),
                    Insn(OP_STX, dst=R1, src=R2, off=0),
                    Insn(OP_EXIT),
                ]
            )

    def test_out_of_bounds_stack_faults(self):
        with pytest.raises(RuntimeFault):
            run(
                [
                    Insn(OP_LDX, dst=R0, src=R10, off=-10_000),
                    Insn(OP_EXIT),
                ]
            )

    def test_wild_pointer_faults(self):
        with pytest.raises(RuntimeFault):
            run(
                [
                    Insn(OP_LDC, dst=R2, imm=0xDEAD),
                    Insn(OP_LDX, dst=R0, src=R2, off=0),
                    Insn(OP_EXIT),
                ]
            )


class TestHelpersAndMaps:
    def test_map_roundtrip(self):
        bpf_map = HashMap("m")
        insns = [
            Insn(OP_LD_MAP, dst=R1, imm=0),
            Insn(OP_LDC, dst=R2, imm=5),
            Insn(OP_LDC, dst=R3, imm=123),
            Insn(OP_CALL, imm=9),  # map_update_elem
            Insn(OP_LD_MAP, dst=R1, imm=0),
            Insn(OP_LDC, dst=R2, imm=5),
            Insn(OP_CALL, imm=8),  # map_lookup_elem
            Insn(OP_EXIT),
        ]
        r0, _ = run(insns, maps=[bpf_map])
        assert r0 == 123
        assert bpf_map[5] == 123

    def test_missing_key_reads_zero(self):
        bpf_map = HashMap("m")
        insns = [
            Insn(OP_LD_MAP, dst=R1, imm=0),
            Insn(OP_LDC, dst=R2, imm=42),
            Insn(OP_CALL, imm=8),
            Insn(OP_EXIT),
        ]
        r0, _ = run(insns, maps=[bpf_map])
        assert r0 == 0

    def test_map_helper_without_handle_faults(self):
        insns = [
            Insn(OP_LDC, dst=R1, imm=0),
            Insn(OP_LDC, dst=R2, imm=0),
            Insn(OP_CALL, imm=8),
            Insn(OP_EXIT),
        ]
        with pytest.raises(RuntimeFault):
            run(insns)

    def test_helpers_clobber_caller_saved(self):
        """R1-R5 are dead after a call; R0 has the result."""
        insns = [
            Insn(OP_CALL, imm=1),  # get_smp_processor_id
            Insn(OP_MOV, dst=R0, src=R2),  # r2 was cleared to 0
            Insn(OP_EXIT),
        ]
        r0, _ = run(insns)
        assert r0 == 0

    def test_unknown_helper_faults(self):
        with pytest.raises(RuntimeFault):
            run([Insn(OP_CALL, imm=999), Insn(OP_EXIT)])


class TestGuardsAndCosts:
    def test_instruction_budget(self):
        # A tight legal loop cannot be built (forward jumps only), so
        # drive the budget down below a straight-line program's length.
        insns = [Insn(OP_LDC, dst=R0, imm=0)] * 50 + [Insn(OP_EXIT)]
        with pytest.raises(RuntimeFault):
            run(insns, insn_limit=10)

    def test_cost_scales_with_instructions(self):
        short = [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)]
        long = [Insn(OP_LDC, dst=R0, imm=0)] * 50 + [Insn(OP_EXIT)]
        _r0, cost_short = run(short)
        _r0, cost_long = run(long)
        assert cost_long > cost_short

    def test_helper_cost_included(self):
        without = [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)]
        with_call = [Insn(OP_CALL, imm=3), Insn(OP_EXIT)]  # ktime (15ns)
        _r0, c1 = run(without)
        _r0, c2 = run(with_call)
        assert c2 > c1

    def test_run_stats_accumulate(self):
        program = Program("t", [Insn(OP_LDC, dst=R0, imm=0), Insn(OP_EXIT)], LAYOUT)
        vm = VM()
        vm.run(program, LAYOUT.pack({}))
        vm.run(program, LAYOUT.pack({}))
        assert program.run_count == 2
        assert program.insns_executed == 4
