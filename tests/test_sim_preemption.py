"""Scheduler edge paths: priority preemption, spinner descheduling,
freezing interacting with parking — the machinery behind the vCPU and
priority-inversion use cases."""

import pytest

from repro.sim import Engine, TaskState, Topology, ops


def make_engine(**kw):
    return Engine(Topology(sockets=1, cores_per_socket=4), **kw)


class TestPreemptivePriorities:
    def test_high_priority_wakeup_preempts(self):
        eng = make_engine(preemptive_priorities=True)
        order = []

        def low(task):
            for _ in range(20):
                yield ops.Delay(1_000)
            order.append("low-done")

        def high(task):
            woken = yield ops.Park()
            order.append(("high-ran", task.engine.now))
            yield ops.Delay(100)

        low_task = eng.spawn(low, cpu=0, priority=0)
        high_task = eng.spawn(high, cpu=0, priority=5)

        def waker(task):
            yield ops.Delay(3_000)
            yield ops.Unpark(high_task)

        eng.spawn(waker, cpu=1)
        eng.run()
        # high ran long before low finished its 20ms of work.
        ran_at = [t for item, t in [x for x in order if isinstance(x, tuple)]][0]
        assert ran_at < 15_000
        assert eng.stats.counter("sched.preemptions").value >= 1

    def test_no_preemption_without_flag(self):
        eng = make_engine(preemptive_priorities=False)
        order = []

        def low(task):
            for _ in range(10):
                yield ops.Delay(1_000)
            order.append("low-done")

        def high(task):
            woken = yield ops.Park()
            order.append("high-ran")

        eng.spawn(low, cpu=0, priority=0)
        high_task = eng.spawn(high, cpu=0, priority=5)

        def waker(task):
            yield ops.Delay(2_000)
            yield ops.Unpark(high_task)

        eng.spawn(waker, cpu=1)
        eng.run()
        assert order == ["low-done", "high-ran"]


class TestSpinnerDescheduling:
    def test_quantum_evicts_spinner(self):
        """A task blocked in WaitValue (spinning) is descheduled by the
        quantum so a runnable peer can use the CPU."""
        eng = make_engine(preemption_quantum=2_000)
        cell = eng.cell(0)
        order = []

        def spinner(task):
            value = yield ops.WaitValue(cell, lambda v: v == 1)
            order.append(("spinner-woke", task.engine.now))

        def peer(task):
            yield ops.Delay(500)
            order.append(("peer-ran", task.engine.now))

        eng.spawn(spinner, cpu=0, name="spinner")
        eng.spawn(peer, cpu=0, name="peer", at=100)
        eng.call_at(20_000, lambda: eng.external_store(cell, 1))
        eng.run()
        kinds = [k for k, _ in order]
        assert kinds == ["peer-ran", "spinner-woke"]
        assert eng.stats.counter("sched.spinner_preemptions").value >= 1

    def test_descheduled_spinner_gets_value_on_redispatch(self):
        """The cell can fire while the spinner is off-CPU; the value must
        be delivered when it runs again."""
        eng = make_engine(preemption_quantum=1_000)
        cell = eng.cell(0)
        result = {}

        def spinner(task):
            value = yield ops.WaitValue(cell, lambda v: v == 7)
            result["value"] = value
            result["at"] = task.engine.now

        def hog(task):
            for _ in range(10):
                yield ops.Delay(2_000)

        eng.spawn(spinner, cpu=0, name="spinner")
        eng.spawn(hog, cpu=0, name="hog", at=100)
        # Fire the cell while the hog occupies the CPU.
        eng.call_at(5_000, lambda: eng.external_store(cell, 7))
        eng.run()
        assert result["value"] == 7


class TestFreezeInteractions:
    def test_freeze_defers_wakeup(self):
        eng = make_engine()

        def sleeper(task):
            woken = yield ops.Park()
            task.stats["woke_at"] = task.engine.now

        target = eng.spawn(sleeper, cpu=0)

        def waker(task):
            yield ops.Delay(1_000)
            yield ops.Unpark(target)

        eng.spawn(waker, cpu=1)
        eng.call_at(500, lambda: eng.freeze_cpu(0, 50_000))
        eng.run()
        assert target.stats["woke_at"] >= 50_000

    def test_freeze_stacks_to_longest(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(100)
            task.stats["end"] = task.engine.now

        task = eng.spawn(body, cpu=0)
        eng.call_at(10, lambda: eng.freeze_cpu(0, 1_000))
        eng.call_at(20, lambda: eng.freeze_cpu(0, 100_000))
        eng.run()
        assert task.stats["end"] >= 100_000

    def test_other_cpus_unaffected(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(1_000)
            task.stats["end"] = task.engine.now

        frozen = eng.spawn(body, cpu=0)
        free = eng.spawn(body, cpu=1)
        eng.call_at(10, lambda: eng.freeze_cpu(0, 30_000))
        eng.run()
        assert free.stats["end"] == 1_000
        assert frozen.stats["end"] >= 30_000
