"""Fail-open degradation: the per-policy runtime circuit breaker.

A policy whose hook programs keep faulting at invocation time must not
poison the lock path.  The framework counts :class:`RuntimeFault`\\ s per
policy; at ``fault_threshold`` it detaches the policy (the lock falls
back to stock behaviour) and emits ``breaker-tripped``.  When concordd
owns the policy, its event bridge turns the trip into an automatic
``ACTIVE → ROLLED_BACK`` transition — releasing the client's admission
quota slot — with the whole story in the audit log.
"""

import pytest

from repro.bpf.maps import HashMap
from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import Concordd, PolicyState, PolicySubmission, SLOGuard
from repro.faults import FaultPlan, injected
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology, ops
from repro.userspace import PolicyClient

SELECTOR = "svc.*.lock"

#: A policy whose every invocation calls a helper — the injection point.
METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def meter_submission(name="meter"):
    return PolicySubmission(
        spec=PolicySpec(
            name=name,
            hook=HOOK_LOCK_ACQUIRED,
            source=METER_SOURCE,
            maps={"hits": HashMap(f"{name}.hits", max_entries=4096)},
            lock_selector=SELECTOR,
        )
    )


@pytest.fixture
def world():
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=11)
    for index in range(4):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel, fault_threshold=5)
    daemon = Concordd(concord, guard=SLOGuard(max_avg_wait_regression=0.20))
    return kernel, concord, daemon


def hammer(kernel, stop_at, tasks_per_lock=2, cs_ns=300):
    tasks = []
    cpu = 0
    for name in kernel.locks.select_names(SELECTOR):
        site = kernel.locks.get(name)
        for _ in range(tasks_per_lock):

            def worker(task, site=site):
                task.stats["ops"] = 0
                while task.engine.now < stop_at:
                    yield from site.acquire(task)
                    yield ops.Delay(cs_ns)
                    yield from site.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(120)

            tasks.append(kernel.spawn(worker, cpu=cpu % kernel.topology.nr_cpus))
            cpu += 1
    return tasks


class TestBreakerInFramework:
    def test_faulting_policy_detaches_at_threshold(self, world):
        kernel, concord, _ = world
        spec = meter_submission().specs[0]
        concord.load_policy(spec)
        plan = FaultPlan()
        plan.fail("bpf.helper", times=None, match={"program": "meter"})

        hammer(kernel, stop_at=kernel.now + 200_000)
        with injected(plan):
            kernel.run()

        loaded_names = list(concord.policies)
        assert "meter" not in loaded_names  # breaker unloaded it
        trips = [e for e in concord.events if e.kind == "breaker-tripped"]
        faults = [e for e in concord.events if e.kind == "policy-fault"]
        assert len(trips) == 1
        assert len(faults) == concord.fault_threshold
        assert "5 runtime fault(s)" in trips[0].message
        # The lock path is back to stock: no hook chains anywhere.
        for name in kernel.locks.select_names(SELECTOR):
            assert not concord.chain(name, HOOK_LOCK_ACQUIRED)

    def test_breaker_trip_is_measurable_revert_to_stock(self, world):
        """Throughput after the trip beats throughput while faulting:
        faults burn VM entry cost per acquisition; stock locks don't."""
        kernel, concord, _ = world
        spec = meter_submission().specs[0]
        concord.load_policy(spec)
        plan = FaultPlan()
        # Trip late so a meaningful faulting window exists first.
        plan.fail("bpf.helper", times=None, match={"program": "meter"})

        window = 150_000
        tasks = hammer(kernel, stop_at=kernel.now + 2 * window)
        with injected(plan):
            kernel.run(until=kernel.now + window)
            assert "meter" not in concord.policies  # tripped inside window 1
            mid_ops = sum(t.stats.get("ops", 0) for t in tasks)
            kernel.run()
        post_ops = sum(t.stats.get("ops", 0) for t in tasks) - mid_ops
        assert post_ops > 0
        # Stock behaviour restored: the second window is at least as
        # productive as the first (which paid dispatch + fault costs).
        assert post_ops >= mid_ops


class TestBreakerInControlPlane:
    def test_active_policy_rolls_back_fail_open(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        client.submit(meter_submission())
        record = client.rollout("meter", baseline_ns=40_000, canary_ns=40_000)
        assert record.state is PolicyState.ACTIVE

        plan = FaultPlan()
        plan.fail("bpf.helper", times=None, match={"program": "meter"})
        hammer(kernel, stop_at=kernel.now + 200_000)
        with injected(plan):
            kernel.run()

        assert record.state is PolicyState.ROLLED_BACK
        history = daemon.audit.history("meter")
        assert history[-2:] == [PolicyState.ACTIVE, PolicyState.ROLLED_BACK]
        last = daemon.audit.for_policy("meter")[-1]
        assert last.kind == "transition"
        assert "fail-open" in last.cause and "circuit breaker" in last.cause
        # The bridged framework events are attached to the record too.
        kinds = [
            r.cause.split(":")[0]
            for r in daemon.audit.for_policy("meter")
            if r.kind == "event"
        ]
        assert "concord policy-fault" in kinds
        assert "concord breaker-tripped" in kinds
        assert "meter" not in concord.policies

    def test_auto_rollback_releases_quota(self, world):
        kernel, concord, daemon = world
        client = PolicyClient.connect(daemon, "ops", max_live_policies=1)
        client.submit(meter_submission())
        record = client.rollout("meter", baseline_ns=40_000, canary_ns=40_000)
        assert record.state is PolicyState.ACTIVE

        plan = FaultPlan()
        plan.fail("bpf.helper", times=None, match={"program": "meter"})
        hammer(kernel, stop_at=kernel.now + 200_000)
        with injected(plan):
            kernel.run()
        assert record.state is PolicyState.ROLLED_BACK

        # The only quota slot is free again: a fresh submission passes
        # admission rather than dying on QuotaError.
        second = client.submit(meter_submission(name="meter2"))
        assert second.state is PolicyState.VERIFIED

    def test_event_bridge_attaches_verify_failures(self, world):
        """Satellite: framework notifications land on the owning record
        even for flows that never reach the breaker."""
        _, _, daemon = world
        client = PolicyClient.connect(daemon, "ops")
        bad = PolicySubmission(
            spec=PolicySpec(
                name="bad",
                hook=HOOK_LOCK_ACQUIRED,
                source="def f(ctx):\n    while True:\n        pass\n",
                lock_selector=SELECTOR,
            )
        )
        with pytest.raises(Exception):
            client.submit(bad)
        events = [r for r in daemon.audit.for_policy("bad") if r.kind == "event"]
        assert any("verify-failed" in r.cause for r in events)
        # ...but the pure state sequence is unpolluted.
        assert daemon.audit.history("bad") == [
            PolicyState.SUBMITTED,
            PolicyState.REJECTED,
        ]
