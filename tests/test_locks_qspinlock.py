"""qspinlock: the pending-bit fast path and MCS slow path."""

import pytest

from repro.locks import MCSLock, QSpinLock
from repro.sim import Engine, Topology, ops
from tests.conftest import run_counter_workers


@pytest.fixture
def engine():
    return Engine(Topology(sockets=2, cores_per_socket=4), seed=4)


class TestCorrectness:
    @pytest.mark.parametrize("n_tasks", [1, 2, 3, 8])
    def test_mutual_exclusion(self, engine, n_tasks):
        lock = QSpinLock(engine)
        shared = run_counter_workers(engine, lock, n_tasks=n_tasks, iters=40)
        assert shared.peek() == n_tasks * 40

    def test_multiple_seeds(self):
        for seed in (1, 7, 19):
            engine = Engine(Topology(sockets=2, cores_per_socket=4), seed=seed)
            lock = QSpinLock(engine)
            shared = run_counter_workers(engine, lock, n_tasks=6, iters=30)
            assert shared.peek() == 180

    def test_trylock(self, engine):
        lock = QSpinLock(engine)
        results = []

        def holder(task):
            yield from lock.acquire(task)
            yield ops.Delay(3_000)
            yield from lock.release(task)

        def taster(task):
            yield ops.Delay(500)
            results.append((yield from lock.try_acquire(task)))
            yield ops.Delay(5_000)
            results.append((yield from lock.try_acquire(task)))
            yield from lock.release(task)

        engine.spawn(holder, cpu=0)
        engine.spawn(taster, cpu=1)
        engine.run()
        assert results == [False, True]


class TestPendingBit:
    def test_two_thread_intermittent_contention_uses_pending(self, engine):
        """The pending path serves *intermittent* 2-CPU contention.

        (Under continuous back-to-back contention the queue becomes
        self-sustaining — each arrival finds the other thread's node
        still queued — which matches the real lock's behaviour.)"""
        lock = QSpinLock(engine)

        def worker(task):
            for _ in range(100):
                yield from lock.acquire(task)
                yield ops.Delay(300)
                yield from lock.release(task)
                yield ops.Delay(task.engine.rng.randint(0, 1500))

        for cpu in range(2):
            engine.spawn(worker, cpu=cpu)
        engine.run()
        assert lock.pending_fastpaths > 20

    def test_competitive_with_mcs_at_two_threads(self):
        """With intermittent 2-thread contention qspinlock matches MCS
        while skipping node allocation on the pending path."""

        def run(make):
            engine = Engine(Topology(sockets=1, cores_per_socket=2), seed=3)
            lock = make(engine)

            def worker(task):
                for _ in range(150):
                    yield from lock.acquire(task)
                    yield ops.Delay(300)
                    yield from lock.release(task)
                    yield ops.Delay(task.engine.rng.randint(0, 1500))

            for cpu in range(2):
                engine.spawn(worker, cpu=cpu)
            engine.run()
            return engine.now

        assert run(lambda e: QSpinLock(e)) <= run(lambda e: MCSLock(e)) * 1.1

    def test_three_threads_fall_back_to_queue(self, engine):
        lock = QSpinLock(engine)
        seen_max = {"inside": 0, "max": 0}

        def worker(task):
            for _ in range(40):
                yield from lock.acquire(task)
                seen_max["inside"] += 1
                seen_max["max"] = max(seen_max["max"], seen_max["inside"])
                yield ops.Delay(100)
                seen_max["inside"] -= 1
                yield from lock.release(task)

        for cpu in range(5):
            engine.spawn(worker, cpu=cpu)
        engine.run()
        assert seen_max["max"] == 1
        assert lock.word.peek() == 0
        assert lock.tail.peek() is None
