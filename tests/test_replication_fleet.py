"""Replicated control plane, fleet-level: members whose policy journals
are :class:`~repro.replication.journal.ReplicatedJournal`\\ s over
3-site replica groups, driven through real rollouts.

Covers the ISSUE's acceptance invariants: a leader death mid-rollout
fails over within the wave, a member restart fences stale leases, site
probes escalate into group failovers, two concurrent overlapping
rollouts commit exactly once, and — under sampled replication-site
chaos plus a guaranteed site kill — the fleet converges with no split
brain, no lost committed acks, and the recovered-site read gate intact.
"""

import pytest

from repro.controlplane import PolicyState
from repro.faults import (
    CHAOS_REPLICATION_SITES,
    SITE_REPLICATION_APPEND,
    SITE_REPLICATION_READ,
    FaultPlan,
    InjectedCrash,
    injected,
    sample_plan,
)
from repro.fleet import (
    FleetCoordinator,
    FleetManager,
    FleetRolloutState,
    HealthMonitor,
    HealthState,
    RolloutPlanner,
)
from repro.replication import (
    ReplicaGroup,
    ReplicatedJournal,
    SerializationLedger,
    SiteState,
    SiteUnreadable,
    StaleLeaderFenced,
    TxnStatus,
)

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    learn,
    meter_factory,
)
from tests.test_chaos import assert_converged_and_debt_free

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)


def replicated_fleet(**daemon_kwargs):
    """The usual three-kernel fleet, every member journaling through its
    own 3-site replica group."""
    fleet = FleetManager()
    groups = {}
    for name, locks, seed, tasks in (
        ("k0", 2, 11, 1),
        ("k1", 3, 12, 3),
        ("k2", 3, 13, 4),
    ):
        groups[name] = ReplicaGroup(name)
        add_member(
            fleet,
            name,
            locks=locks,
            seed=seed,
            tasks_per_lock=tasks,
            replica_group=groups[name],
            **daemon_kwargs,
        )
    return fleet, groups


class TestReplicatedMembers:
    def test_members_journal_through_their_replica_groups(self):
        fleet, groups = replicated_fleet()
        for member in fleet.members():
            assert isinstance(member.journal, ReplicatedJournal)
        coord = FleetCoordinator(fleet, journal=ReplicaGroup("fleet").journal())
        result = coord.execute(
            RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet)),
            good_factory,
            **ROLLOUT_KWARGS,
        )
        assert result.state is FleetRolloutState.COMPLETE
        for name, group in groups.items():
            assert group.commit_index > 0
            member = fleet.member(name)
            assert member.journal.last_transition("numa-good")["to"] == "ACTIVE"
            ping = member.daemon.ping()
            assert ping["replication"]["commit_index"] == group.commit_index
            assert ping["replication"]["leader"] == group.leader.name

    def test_member_restart_fences_the_lease(self):
        fleet, groups = replicated_fleet()
        member, group = fleet.member("k1"), groups["k1"]
        stale = group.lease()
        member.restart()
        assert group.lease_epoch >= member.epoch
        with pytest.raises(StaleLeaderFenced):
            group.append({"kind": "client", "client": "x"}, lease=stale)
        # The restarted daemon itself (no lease pinned) writes fine.
        member.journal.heartbeat(int(member.kernel.now))
        assert group.commit_index >= 1


class TestLeaderFailoverMidRollout:
    def test_leader_kill_mid_rollout_failover_completes_the_wave(self):
        fleet, groups = replicated_fleet()
        group = groups["k1"]
        old_leader = group.leader.name
        coord = FleetCoordinator(fleet, journal=ReplicaGroup("fleet").journal())
        plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
        kill = FaultPlan(seed=1, name="kill-leader")
        kill.fail(SITE_REPLICATION_APPEND, times=1, match={"replica": old_leader})
        with injected(kill):
            result = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        assert kill.fired[SITE_REPLICATION_APPEND] == 1
        assert result.state is FleetRolloutState.COMPLETE
        assert all(
            fleet.member(k).daemon.records["numa-good"].state
            is PolicyState.ACTIVE
            for k in plan.kernels()
        )
        assert group.failovers >= 1 and group.leader.name != old_leader
        assert group.site(old_leader).state is SiteState.DOWN
        # No lost committed acks: the full committed log reads back.
        assert len(group.entries()) == group.commit_index
        assert fleet.member("k1").journal.last_transition("numa-good")["to"] == "ACTIVE"

    def test_mid_wave_crash_recovers_over_replicated_fleet_journal(self):
        fleet, groups = replicated_fleet()
        fleet_group = ReplicaGroup("fleet")
        plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
        coord = FleetCoordinator(fleet, journal=fleet_group.journal())
        kill = FaultPlan(seed=1, name="kill9")
        kill.crash("fleet.wave.checkpoint", after=1, times=1)
        with injected(kill):
            with pytest.raises(InjectedCrash):
                coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        fresh = FleetCoordinator(fleet, journal=fleet_group.journal())
        resumed = fresh.recover(good_factory, **ROLLOUT_KWARGS)
        assert resumed is not None
        assert resumed.state is FleetRolloutState.COMPLETE
        assert resumed.resumed_from_wave == 1


class TestSiteProbes:
    def test_site_probe_escalation_fails_the_site_and_fails_over(self):
        fleet, groups = replicated_fleet()
        group = groups["k1"]
        leader = group.leader.name
        monitor = HealthMonitor(fleet, dead_after=2)
        dark = FaultPlan(seed=1, name="dark-site")
        dark.fail(SITE_REPLICATION_READ, times=None, match={"replica": leader})
        with injected(dark):
            first = monitor.probe_sites("k1")
            second = monitor.probe_sites("k1")
        assert not first[leader].ok and not second[leader].ok
        assert monitor.state(leader) is HealthState.DEAD
        assert group.site(leader).state is SiteState.DOWN
        assert group.leader.name != leader and group.failovers == 1

    def test_probe_all_with_sites_covers_every_replica(self):
        fleet, groups = replicated_fleet()
        records = HealthMonitor(fleet).probe_all(include_sites=True)
        site_keys = [k for k in records if "/site" in k]
        assert len(site_keys) == 9 and all(records[k].ok for k in site_keys)

    def test_recovering_site_probes_ok_but_read_gated(self):
        fleet, groups = replicated_fleet()
        group = groups["k2"]
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        group.recover_site(follower.name)
        record = HealthMonitor(fleet).probe_sites("k2")[follower.name]
        assert record.ok and "read-gated" in record.detail


class TestConcurrentRollouts:
    def test_overlapping_rollouts_exactly_one_commits(self):
        fleet, groups = replicated_fleet()
        placement = learn(fleet)
        fleet_group = ReplicaGroup("fleet")
        ledger = SerializationLedger(journal=fleet_group.journal())
        coord_a = FleetCoordinator(
            fleet, journal=fleet_group.journal(), client_id="coord-a", ledger=ledger
        )
        coord_b = FleetCoordinator(
            fleet, journal=fleet_group.journal(), client_id="coord-b", ledger=ledger
        )
        plan_a = RolloutPlanner(**PLANNER).plan("numa-good", placement)
        plan_b = RolloutPlanner(**PLANNER).plan("meter", placement)
        txn_b = coord_b.open_transaction(plan_b)  # concurrent from here on
        result_a = coord_a.execute(plan_a, good_factory, **ROLLOUT_KWARGS)
        result_b = coord_b.execute(plan_b, meter_factory, **ROLLOUT_KWARGS)

        assert result_a.state is FleetRolloutState.COMPLETE
        assert result_a.txn.status is TxnStatus.COMMITTED
        assert result_b.state is FleetRolloutState.HALTED
        assert "serialization conflict" in result_b.halt_cause
        assert txn_b.status is TxnStatus.ABORTED
        assert [t.txn_id for t in ledger.committed()] == ["numa-good@coord-a"]
        events = [e.get("event") for e in fleet_group.journal().entries()]
        assert "serialization-conflict" in events and "txn-abort" in events
        for member in fleet.members():
            assert member.daemon.records["numa-good"].state is PolicyState.ACTIVE
            record = member.daemon.records.get("meter")
            assert record is None or not record.live

    def test_sequential_rollouts_do_not_conflict(self):
        fleet, groups = replicated_fleet()
        placement = learn(fleet)
        ledger = SerializationLedger()
        coord = FleetCoordinator(
            fleet, journal=ReplicaGroup("fleet").journal(), ledger=ledger
        )
        first = coord.execute(
            RolloutPlanner(**PLANNER).plan("numa-good", placement),
            good_factory,
            **ROLLOUT_KWARGS,
        )
        second = coord.execute(
            RolloutPlanner(**PLANNER).plan("meter", placement),
            meter_factory,
            **ROLLOUT_KWARGS,
        )
        assert first.state is FleetRolloutState.COMPLETE
        assert second.state is FleetRolloutState.COMPLETE
        assert len(ledger.committed()) == 2

    def test_halted_rollout_aborts_its_transaction(self):
        from tests._fleet_util import bad_factory

        fleet, groups = replicated_fleet(max_regression=0.05)
        ledger = SerializationLedger()
        coord = FleetCoordinator(
            fleet, journal=ReplicaGroup("fleet").journal(), ledger=ledger
        )
        result = coord.execute(
            RolloutPlanner(**PLANNER).plan("bad-numa", learn(fleet)),
            bad_factory,
            **ROLLOUT_KWARGS,
        )
        assert result.state is FleetRolloutState.HALTED
        assert result.txn is not None and result.txn.status is TxnStatus.ABORTED
        assert not ledger.committed()


def test_chaos_replicated_rollout_invariants(chaos_seed):
    """RF=3 under a sampled ``replication.site.*`` chaos plan *plus* one
    guaranteed leader kill mid-rollout: whatever fires, the rollout
    completes or halts+reverts cleanly, the fleet converges (no split
    fleet), no committed ack is lost, there is no split brain, and a
    recovered site stays read-gated until the next committed write."""
    fleet, groups = replicated_fleet()
    placement = learn(fleet)
    fleet_group = ReplicaGroup("fleet")
    journal = fleet_group.journal()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", placement)
    coord = FleetCoordinator(fleet, journal=journal)

    chaos = sample_plan(chaos_seed, replication_sites=CHAOS_REPLICATION_SITES)
    victim = groups["k1"].leader.name
    chaos.fail(SITE_REPLICATION_APPEND, times=1, match={"replica": victim})
    outcome = None
    with injected(chaos):
        try:
            outcome = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # a typed failure aborts the rollout; invariants must hold

    if outcome is None or outcome.state not in (
        FleetRolloutState.COMPLETE,
        FleetRolloutState.HALTED,
    ):
        fresh = FleetCoordinator(fleet, journal=journal)
        fresh.recover(good_factory, **ROLLOUT_KWARGS)
    assert_converged_and_debt_free(fleet, journal, "numa-good")

    for group in groups.values():
        # No lost committed acks: the committed log reads back whole.
        assert len(group.entries()) == group.commit_index
        # No split brain: one UP leader, no site past the group epoch.
        assert group.leader.state is SiteState.UP
        assert all(
            s.lease_epoch_seen <= group.lease_epoch for s in group.sites
        )

    # The recovered-site read gate holds even after the chaos.
    group = groups["k2"]
    down = [s for s in group.sites if s.state is SiteState.DOWN]
    casualty = down[0] if down else group.fail_site(
        next(s.name for s in group.sites if s is not group.leader)
    )
    group.recover_site(casualty.name)
    with pytest.raises(SiteUnreadable):
        casualty.read(group.commit_index)
    member = fleet.member("k2")
    member.journal.heartbeat(int(member.kernel.now))
    assert casualty.readable
    assert casualty.read(group.commit_index) == group.entries()
