"""Readers-writer locks: exclusion, reader parallelism, fairness flavours."""

import pytest

from repro import locks as L
from repro.sim import Engine, Topology, ops

RW_FACTORIES = {
    "neutral": lambda e: L.NeutralRWLock(e),
    "reader-pref": lambda e: L.ReaderPrefRWLock(e),
    "rwsem": lambda e: L.RWSemaphore(e),
    "bravo-rwsem": lambda e: L.BravoLock(e, L.RWSemaphore(e)),
    "bravo-neutral": lambda e: L.BravoLock(e, L.NeutralRWLock(e)),
    "percpu": lambda e: L.PerCPURWLock(e),
    "phase-fair": lambda e: L.PhaseFairRWLock(e),
    "switchable-rwsem": lambda e: L.SwitchableRWLock(e, L.RWSemaphore(e)),
}


@pytest.fixture(params=sorted(RW_FACTORIES))
def rw_factory(request):
    return RW_FACTORIES[request.param]


def run_rw_mix(engine, lock, readers, writers, iters, read_ns=150, write_ns=120, seed_think=60):
    shared = engine.cell(0, name="value")
    torn_reads = []

    def reader(task):
        for _ in range(iters):
            yield from lock.read_acquire(task)
            before = yield ops.Load(shared)
            yield ops.Delay(read_ns)
            after = yield ops.Load(shared)
            if before != after:
                torn_reads.append((before, after))
            yield from lock.read_release(task)
            yield ops.Delay(seed_think)

    def writer(task):
        for _ in range(iters):
            yield from lock.write_acquire(task)
            value = yield ops.Load(shared)
            yield ops.Delay(write_ns)
            yield ops.Store(shared, value + 1)
            yield from lock.write_release(task)
            yield ops.Delay(seed_think * 4)

    cpu = 0
    nr = engine.topology.nr_cpus
    for _ in range(readers):
        engine.spawn(reader, cpu=cpu % nr)
        cpu += 1
    for _ in range(writers):
        engine.spawn(writer, cpu=cpu % nr)
        cpu += 1
    engine.run()
    return shared, torn_reads


class TestRWExclusion:
    def test_writers_atomic_and_readers_consistent(self, topo, rw_factory):
        eng = Engine(topo, seed=4)
        lock = rw_factory(eng)
        shared, torn = run_rw_mix(eng, lock, readers=8, writers=3, iters=25)
        assert shared.peek() == 75
        assert torn == []

    def test_multiple_seeds(self, topo, rw_factory):
        for seed in (1, 9, 17):
            eng = Engine(topo, seed=seed)
            lock = rw_factory(eng)
            shared, torn = run_rw_mix(eng, lock, readers=6, writers=2, iters=15)
            assert shared.peek() == 30
            assert torn == []

    def test_write_exclusion_via_invariant(self, topo, rw_factory):
        eng = Engine(topo, seed=2)
        lock = rw_factory(eng)

        def bad(task):
            yield from lock.read_acquire(task)
            yield from lock.read_release(task)
            yield from lock.read_release(task)  # double release

        eng.spawn(bad, cpu=0)
        with pytest.raises(Exception):
            eng.run()


class TestReaderParallelism:
    def _reader_window(self, factory, readers):
        topo = Topology(sockets=2, cores_per_socket=8)
        eng = Engine(topo, seed=3)
        lock = factory(eng)

        def reader(task):
            for _ in range(50):
                yield from lock.read_acquire(task)
                yield ops.Delay(500)
                yield from lock.read_release(task)

        for cpu in range(readers):
            eng.spawn(reader, cpu=cpu)
        eng.run()
        return eng.now

    @pytest.mark.parametrize("name", ["neutral", "rwsem", "percpu", "bravo-rwsem", "phase-fair"])
    def test_readers_overlap(self, name):
        """8 readers should take far less than 8x one reader's time."""
        solo = self._reader_window(RW_FACTORIES[name], 1)
        group = self._reader_window(RW_FACTORIES[name], 8)
        assert group < solo * 4, name

    def test_bravo_fastpath_scales_better_than_rwsem(self):
        rwsem = self._reader_window(RW_FACTORIES["rwsem"], 16)
        bravo = self._reader_window(RW_FACTORIES["bravo-rwsem"], 16)
        assert bravo <= rwsem * 1.1


class TestBravoSpecifics:
    def test_fastpath_used_when_biased(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.BravoLock(eng, L.RWSemaphore(eng))

        def reader(task):
            for _ in range(20):
                yield from lock.read_acquire(task)
                yield ops.Delay(100)
                yield from lock.read_release(task)

        eng.spawn(reader, cpu=0)
        eng.run()
        assert lock.fastpath_reads > 0
        assert lock.slowpath_reads <= 1

    def test_writer_revokes_bias(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.BravoLock(eng, L.RWSemaphore(eng))

        def writer(task):
            yield from lock.write_acquire(task)
            yield ops.Delay(100)
            yield from lock.write_release(task)

        eng.spawn(writer, cpu=0)
        eng.run()
        assert lock.revocations == 1
        assert lock.rbias.peek() == 0
        assert lock.inhibit_until > 0

    def test_bias_restored_after_inhibit_window(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.BravoLock(eng, L.RWSemaphore(eng))

        def writer(task):
            yield from lock.write_acquire(task)
            yield from lock.write_release(task)

        def late_reader(task):
            yield ops.Delay(2_000_000)  # well past the inhibit window
            yield from lock.read_acquire(task)
            yield ops.Delay(10)
            yield from lock.read_release(task)

        eng.spawn(writer, cpu=0)
        eng.spawn(late_reader, cpu=1)
        eng.run()
        assert lock.rbias.peek() == 1

    def test_start_unbiased(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.BravoLock(eng, L.RWSemaphore(eng), start_biased=False)

        def reader(task):
            yield from lock.read_acquire(task)
            yield from lock.read_release(task)

        eng.spawn(reader, cpu=0)
        eng.run()
        assert lock.slowpath_reads == 1


class TestWriterPreferenceFlavours:
    def test_neutral_blocks_new_readers_behind_writer(self, topo):
        """With a writer waiting, new readers must not cut the line."""
        eng = Engine(topo, seed=1)
        lock = L.NeutralRWLock(eng)
        events = []

        def long_reader(task):
            yield from lock.read_acquire(task)
            yield ops.Delay(10_000)
            yield from lock.read_release(task)

        def writer(task):
            yield ops.Delay(1_000)
            yield from lock.write_acquire(task)
            events.append(("writer", task.engine.now))
            yield ops.Delay(100)
            yield from lock.write_release(task)

        def late_reader(task):
            yield ops.Delay(2_000)
            yield from lock.read_acquire(task)
            events.append(("late-reader", task.engine.now))
            yield from lock.read_release(task)

        eng.spawn(long_reader, cpu=0)
        eng.spawn(writer, cpu=1)
        eng.spawn(late_reader, cpu=2)
        eng.run()
        assert events[0][0] == "writer"

    def test_reader_pref_lets_readers_cut(self, topo):
        eng = Engine(topo, seed=1)
        lock = L.ReaderPrefRWLock(eng)
        events = []

        def long_reader(task):
            yield from lock.read_acquire(task)
            yield ops.Delay(10_000)
            yield from lock.read_release(task)

        def writer(task):
            yield ops.Delay(1_000)
            yield from lock.write_acquire(task)
            events.append(("writer", task.engine.now))
            yield from lock.write_release(task)

        def late_reader(task):
            yield ops.Delay(2_000)
            yield from lock.read_acquire(task)
            events.append(("late-reader", task.engine.now))
            yield from lock.read_release(task)

        eng.spawn(long_reader, cpu=0)
        eng.spawn(writer, cpu=1)
        eng.spawn(late_reader, cpu=2)
        eng.run()
        assert events[0][0] == "late-reader"


class TestPhaseFair:
    def test_reader_waits_at_most_one_writer_phase(self):
        """Even with a deep writer queue, a reader gets in after one phase."""
        topo = Topology(sockets=1, cores_per_socket=10)
        eng = Engine(topo, seed=1)
        lock = L.PhaseFairRWLock(eng)
        reader_entry = []

        def writer(task):
            for _ in range(5):
                yield from lock.write_acquire(task)
                yield ops.Delay(2_000)
                yield from lock.write_release(task)

        def reader(task):
            yield ops.Delay(500)  # arrive while writers queue up
            start = task.engine.now
            yield from lock.read_acquire(task)
            reader_entry.append(task.engine.now - start)
            yield from lock.read_release(task)

        for cpu in range(4):
            eng.spawn(writer, cpu=cpu)
        eng.spawn(reader, cpu=5)
        eng.run()
        # Four writers x 5 CSes = 40us of writer work; phase fairness
        # admits the reader after at most ~one phase (~2-3us + overheads).
        assert reader_entry[0] < 10_000
