"""§6 extensions: RCU and seqlocks."""

import pytest

from repro.kernel import RCU, Kernel, RCUError
from repro.locks import SeqLock
from repro.sim import Topology, ops


@pytest.fixture
def kernel():
    return Kernel(Topology(sockets=2, cores_per_socket=4), seed=1)


class TestRCUReaders:
    def test_read_section_nests(self, kernel):
        rcu = RCU(kernel)

        def body(task):
            yield from rcu.read_lock(task)
            yield from rcu.read_lock(task)
            yield from rcu.read_unlock(task)
            yield from rcu.read_unlock(task)

        kernel.spawn(body, cpu=0)
        kernel.run()
        assert rcu.read_sections == 1  # outermost exit counts once

    def test_unbalanced_unlock_raises(self, kernel):
        rcu = RCU(kernel)

        def body(task):
            yield from rcu.read_unlock(task)

        kernel.spawn(body, cpu=0)
        with pytest.raises(RCUError):
            kernel.run()

    def test_blocking_inside_reader_rejected(self, kernel):
        rcu = RCU(kernel)

        def body(task):
            yield from rcu.read_lock(task)
            yield from rcu.synchronize(task)

        kernel.spawn(body, cpu=0)
        with pytest.raises(RCUError):
            kernel.run()


class TestGracePeriods:
    def test_synchronize_waits_for_readers(self, kernel):
        rcu = RCU(kernel, grace_hint_ns=1_000)
        events = []

        def reader(task):
            yield from rcu.read_lock(task)
            yield ops.Delay(20_000)
            events.append(("reader-out", task.engine.now))
            yield from rcu.read_unlock(task)

        def writer(task):
            yield ops.Delay(1_000)  # reader is inside by now
            yield from rcu.synchronize(task)
            events.append(("gp-done", task.engine.now))

        kernel.spawn(reader, cpu=0)
        kernel.spawn(writer, cpu=1)
        kernel.run()
        assert events[0][0] == "reader-out"
        assert events[1][0] == "gp-done"
        assert rcu.completed_grace_periods == 1

    def test_synchronize_fast_when_idle(self, kernel):
        rcu = RCU(kernel, grace_hint_ns=1_000)

        def writer(task):
            yield from rcu.synchronize(task)

        task = kernel.spawn(writer, cpu=0)
        kernel.run()
        assert task.done
        assert task.finish_time < 5_000  # no readers: immediate-ish

    def test_new_readers_do_not_extend_grace_period(self, kernel):
        """A grace period waits only for readers that existed at its start."""
        rcu = RCU(kernel, grace_hint_ns=500)
        done_at = {}

        def churning_reader(task):
            for _ in range(100):
                yield from rcu.read_lock(task)
                yield ops.Delay(300)
                yield from rcu.read_unlock(task)
                yield ops.Delay(100)

        def writer(task):
            yield ops.Delay(2_000)
            yield from rcu.synchronize(task)
            done_at["t"] = task.engine.now

        kernel.spawn(churning_reader, cpu=0)
        kernel.spawn(writer, cpu=1)
        kernel.run()
        # The reader churns for ~40us; synchronize must finish long before
        # the churn ends (each section exit is a quiescent state).
        assert done_at["t"] < 15_000

    def test_call_rcu_defers_until_grace_period(self, kernel):
        rcu = RCU(kernel, grace_hint_ns=1_000)
        freed = []

        def reader(task):
            yield from rcu.read_lock(task)
            yield ops.Delay(10_000)
            yield from rcu.read_unlock(task)
            freed.append(("reader-out", task.engine.now))

        def writer(task):
            yield ops.Delay(500)
            yield from rcu.call_rcu(task, lambda: freed.append(("freed", kernel.now)))
            freed.append(("writer-returned", task.engine.now))
            yield ops.Delay(1)

        kernel.spawn(reader, cpu=0)
        kernel.spawn(writer, cpu=1)
        kernel.run()
        kinds = [k for k, _t in freed]
        assert kinds.index("writer-returned") < kinds.index("freed")
        assert kinds.index("reader-out") < kinds.index("freed")
        assert rcu.callbacks_pending == 0


class TestRCUReadScaling:
    def test_rcu_readers_scale_where_rwlock_readers_bounce(self):
        """The §6 motivation: RCU readers generate no lock traffic."""
        from repro.locks import NeutralRWLock

        def run_rcu(readers):
            kernel = Kernel(Topology(sockets=2, cores_per_socket=8), seed=2)
            rcu = RCU(kernel)

            def reader(task):
                for _ in range(200):
                    yield from rcu.read_lock(task)
                    yield ops.Delay(150)
                    yield from rcu.read_unlock(task)

            for cpu in range(readers):
                kernel.spawn(reader, cpu=cpu)
            return kernel.run()

        def run_rw(readers):
            kernel = Kernel(Topology(sockets=2, cores_per_socket=8), seed=2)
            lock = NeutralRWLock(kernel.engine)

            def reader(task):
                for _ in range(200):
                    yield from lock.read_acquire(task)
                    yield ops.Delay(150)
                    yield from lock.read_release(task)

            for cpu in range(readers):
                kernel.spawn(reader, cpu=cpu)
            return kernel.run()

        # With 16 readers, RCU's completion time barely moves while the
        # rwlock's grows with the contended entry/exit atomics.
        assert run_rcu(16) < run_rcu(1) * 1.5
        assert run_rw(16) > run_rcu(16) * 2


class TestSeqLock:
    def test_reader_sees_consistent_snapshot(self, kernel):
        lock = SeqLock(kernel.engine)
        pair = (kernel.engine.cell(0, "a"), kernel.engine.cell(0, "b"))
        torn = []

        def reader(task):
            for _ in range(60):
                while True:
                    seq = yield from lock.read_begin(task)
                    a = yield ops.Load(pair[0])
                    yield ops.Delay(120)
                    b = yield ops.Load(pair[1])
                    retry = yield from lock.read_retry(task, seq)
                    if not retry:
                        break
                if a != b:
                    torn.append((a, b))
                yield ops.Delay(60)

        def writer(task):
            for value in range(1, 31):
                yield from lock.write_acquire(task)
                yield ops.Store(pair[0], value)
                yield ops.Delay(100)
                yield ops.Store(pair[1], value)
                yield from lock.write_release(task)
                yield ops.Delay(700)

        for cpu in range(4):
            kernel.spawn(reader, cpu=cpu)
        kernel.spawn(writer, cpu=5)
        kernel.run()
        assert torn == []
        assert pair[0].peek() == 30

    def test_retries_happen_under_write_pressure(self, kernel):
        lock = SeqLock(kernel.engine)
        cell = kernel.engine.cell(0)

        def reader(task):
            for _ in range(100):
                while True:
                    seq = yield from lock.read_begin(task)
                    yield ops.Delay(400)  # long section: likely to race
                    retry = yield from lock.read_retry(task, seq)
                    if not retry:
                        break

        def writer(task):
            for _ in range(80):
                yield from lock.write_acquire(task)
                yield ops.Delay(50)
                yield from lock.write_release(task)
                yield ops.Delay(200)

        kernel.spawn(reader, cpu=0)
        kernel.spawn(writer, cpu=1)
        kernel.run()
        assert lock.read_retries > 0
        assert lock.reads == 100

    def test_writers_mutually_exclude(self, kernel):
        lock = SeqLock(kernel.engine)
        shared = kernel.engine.cell(0)

        def writer(task):
            for _ in range(50):
                yield from lock.write_acquire(task)
                value = yield ops.Load(shared)
                yield ops.Delay(60)
                yield ops.Store(shared, value + 1)
                yield from lock.write_release(task)
                yield ops.Delay(40)

        for cpu in range(4):
            kernel.spawn(writer, cpu=cpu)
        kernel.run()
        assert shared.peek() == 200
        assert lock.sequence.peek() % 2 == 0

    def test_sequence_always_even_when_idle(self, kernel):
        lock = SeqLock(kernel.engine)

        def writer(task):
            yield from lock.write_acquire(task)
            assert lock.sequence.peek() % 2 == 1  # odd while writing
            yield from lock.write_release(task)

        kernel.spawn(writer, cpu=0)
        kernel.run()
        assert lock.sequence.peek() == 2
