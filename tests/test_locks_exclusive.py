"""Mutual exclusion and protocol checks across every exclusive lock."""

import pytest

from repro import locks as L
from repro.sim import Engine, Topology, ops
from tests.conftest import run_counter_workers

EXCLUSIVE_FACTORIES = {
    "tas": lambda e: L.TASLock(e),
    "ttas": lambda e: L.TTASLock(e),
    "ticket": lambda e: L.TicketLock(e),
    "mcs": lambda e: L.MCSLock(e),
    "cna": lambda e: L.CNALock(e, flush_threshold=8),
    "cohort": lambda e: L.CohortLock(e, batch=4),
    "shfl-fifo": lambda e: L.ShflLock(e),
    "shfl-numa": lambda e: L.ShflLock(e, policy=L.NumaPolicy(), debug_checks=True),
    "shfl-blocking": lambda e: L.ShflLock(
        e, policy=L.NumaPolicy(), blocking=True, spin_budget_ns=800
    ),
    "mutex": lambda e: L.SpinParkMutex(e, spin_budget_ns=800),
    "switchable-mcs": lambda e: L.SwitchableLock(e, L.MCSLock(e)),
    "culling": lambda e: L.CullingLock(e, cap=2),
}


@pytest.fixture(params=sorted(EXCLUSIVE_FACTORIES))
def lock_factory(request):
    return EXCLUSIVE_FACTORIES[request.param]


class TestMutualExclusion:
    def test_counter_not_lost(self, topo, lock_factory):
        eng = Engine(topo, seed=3)
        lock = lock_factory(eng)
        shared = run_counter_workers(eng, lock, n_tasks=10, iters=40)
        assert shared.peek() == 400

    def test_single_thread_uncontended(self, topo, lock_factory):
        eng = Engine(topo, seed=1)
        lock = lock_factory(eng)
        shared = run_counter_workers(eng, lock, n_tasks=1, iters=20)
        assert shared.peek() == 20

    def test_never_two_owners(self, topo, lock_factory):
        """The base-class invariant would raise on overlap; also check
        directly with an in-CS flag."""
        eng = Engine(topo, seed=5)
        lock = lock_factory(eng)
        inside = {"count": 0, "max": 0}

        def worker(task):
            for _ in range(30):
                yield from lock.acquire(task)
                inside["count"] += 1
                inside["max"] = max(inside["max"], inside["count"])
                yield ops.Delay(60)
                inside["count"] -= 1
                yield from lock.release(task)
                yield ops.Delay(30)

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        assert inside["max"] == 1

    def test_double_release_raises(self, topo, lock_factory):
        eng = Engine(topo, seed=1)
        lock = lock_factory(eng)

        def bad(task):
            yield from lock.acquire(task)
            yield from lock.release(task)
            yield from lock.release(task)

        eng.spawn(bad, cpu=0)
        with pytest.raises(Exception):
            eng.run()


class TestHeldLocksTracking:
    def test_held_locks_updated(self, topo):
        eng = Engine(topo, seed=1)
        lock_a = L.MCSLock(eng, name="a")
        lock_b = L.MCSLock(eng, name="b")
        observed = []

        def worker(task):
            yield from lock_a.acquire(task)
            yield from lock_b.acquire(task)
            observed.append(list(task.held_locks))
            yield from lock_b.release(task)
            yield from lock_a.release(task)
            observed.append(list(task.held_locks))

        eng.spawn(worker, cpu=0)
        eng.run()
        assert observed[0] == [lock_a, lock_b]
        assert observed[1] == []


class TestTrylock:
    @pytest.mark.parametrize(
        "name", ["tas", "ticket", "mcs", "cna", "shfl-fifo", "mutex", "switchable-mcs"]
    )
    def test_trylock_succeeds_when_free(self, topo, name):
        eng = Engine(topo, seed=1)
        lock = EXCLUSIVE_FACTORIES[name](eng)
        results = []

        def worker(task):
            ok = yield from lock.try_acquire(task)
            results.append(ok)
            if ok:
                yield from lock.release(task)

        eng.spawn(worker, cpu=0)
        eng.run()
        assert results == [True]

    @pytest.mark.parametrize("name", ["tas", "mcs", "shfl-fifo", "mutex"])
    def test_trylock_fails_when_held(self, topo, name):
        eng = Engine(topo, seed=1)
        lock = EXCLUSIVE_FACTORIES[name](eng)
        results = []

        def holder(task):
            yield from lock.acquire(task)
            yield ops.Delay(5_000)
            yield from lock.release(task)

        def taster(task):
            yield ops.Delay(1_000)
            ok = yield from lock.try_acquire(task)
            results.append(ok)
            if ok:
                yield from lock.release(task)

        eng.spawn(holder, cpu=0)
        eng.spawn(taster, cpu=1)
        eng.run()
        assert results == [False]


class TestFairness:
    def test_queue_locks_roughly_fair(self, topo):
        """FIFO queue locks spread acquisitions evenly across threads."""
        for name in ("ticket", "mcs", "shfl-fifo"):
            eng = Engine(topo, seed=2)
            lock = EXCLUSIVE_FACTORIES[name](eng)

            def worker(task):
                task.stats["ops"] = 0
                while task.engine.now < 400_000:
                    yield from lock.acquire(task)
                    yield ops.Delay(100)
                    yield from lock.release(task)
                    task.stats["ops"] += 1
                    yield ops.Delay(50)

            for cpu in range(8):
                eng.spawn(worker, cpu=cpu)
            eng.run()
            counts = [t.stats["ops"] for t in eng.tasks]
            assert max(counts) <= 2 * min(counts) + 5, (name, counts)

    def test_tas_is_unfair_under_contention(self, topo):
        """Sanity: the pathological baseline really is pathological."""
        eng = Engine(topo, seed=2)
        lock = L.TASLock(eng, max_backoff_ns=4000)

        def worker(task):
            task.stats["ops"] = 0
            while task.engine.now < 400_000:
                yield from lock.acquire(task)
                yield ops.Delay(100)
                yield from lock.release(task)
                task.stats["ops"] += 1

        for cpu in range(8):
            eng.spawn(worker, cpu=cpu)
        eng.run()
        counts = sorted(t.stats["ops"] for t in eng.tasks)
        assert counts[-1] > counts[0]  # some imbalance is expected


class TestScalabilityShapes:
    """Coarse relative-performance assertions (the DESIGN.md claims)."""

    def _throughput(self, factory, threads, seed=5):
        topo = Topology(sockets=4, cores_per_socket=4)
        eng = Engine(topo, seed=seed)
        lock = factory(eng)
        rng = eng.rng

        def worker(task):
            task.stats["ops"] = 0
            while True:
                yield from lock.acquire(task)
                yield ops.Delay(100)
                yield from lock.release(task)
                task.stats["ops"] += 1
                yield ops.Delay(rng.randint(0, 300))

        for index in range(threads):
            eng.spawn(worker, cpu=index, at=rng.randint(0, 20_000))
        eng.run(until=1_500_000)
        return sum(t.stats["ops"] for t in eng.tasks)

    def test_mcs_beats_tas_under_contention(self):
        tas = self._throughput(lambda e: L.TASLock(e), 16)
        mcs = self._throughput(lambda e: L.MCSLock(e), 16)
        assert mcs > tas * 1.5

    def test_numa_shuffling_beats_fifo_at_scale(self):
        fifo = self._throughput(lambda e: L.ShflLock(e), 16)
        numa = self._throughput(lambda e: L.ShflLock(e, policy=L.NumaPolicy()), 16)
        assert numa > fifo
