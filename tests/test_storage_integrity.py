"""Self-healing storage: checksummed records, snapshots, scrub, repair.

The trust boundary under test is the byte level: every durable record
carries a CRC32 + sequence number (v2 envelope), compaction folds the
committed prefix into a checksummed snapshot, the :class:`Scrubber`
re-verifies everything on a cadence, and a corrupt or diverged replica
site is rebuilt byte-for-byte from quorum peers.  The property tests
flip a single byte at *every* offset of a journal file and of a site
record and demand detection each time; the fleet tests demand that an
unreplicated shard's rot ends in quarantine + salvage + revert debt,
never in an aborted recovery.
"""

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.controlplane import PolicyJournal, PolicyState
from repro.controlplane.journal import JournalCorruption
from repro.faults import (
    CHAOS_STORAGE_SITES,
    SITE_STORAGE_CORRUPT_LINE,
    FaultPlan,
    InjectedCrash,
    injected,
    sample_plan,
)
from repro.fleet import (
    FleetCoordinator,
    FleetManager,
    FleetRolloutState,
    HealthMonitor,
    HealthState,
    RolloutPlanner,
)
from repro.replication import ReplicaGroup, SiteState, StaleLeaderFenced
from repro.storage import (
    RecordCorruption,
    Scrubber,
    SnapshotCorruption,
    canonical,
    decode_record,
    decode_snapshot,
    encode_record,
    encode_snapshot,
    entries_digest,
    flip_byte,
    fold_entries,
)

from tests._fleet_util import ROLLOUT_KWARGS, add_member, good_factory, learn
from tests.test_chaos import assert_converged_and_debt_free
from tests.test_replication_fleet import PLANNER, replicated_fleet


def sample_entries():
    """A little of every journal entry kind (two heartbeats fold to one)."""
    return [
        {"kind": "client", "client": "ops"},
        {"kind": "submission", "name": "steady", "hook": "lock.acquired"},
        {"kind": "transition", "policy": "steady", "from": "VERIFIED", "to": "CANARY"},
        {"kind": "transition", "policy": "steady", "from": "CANARY", "to": "ACTIVE"},
        {"kind": "heartbeat", "member": "k1", "ts": 10},
        {"kind": "heartbeat", "member": "k1", "ts": 20},
        {"kind": "fleet", "event": "plan", "rollout": "steady@fleet"},
    ]


# ======================================================================
# Record framing
# ======================================================================
class TestRecordFraming:
    def test_roundtrip(self):
        entry = {"kind": "client", "client": "ops", "n": 3}
        assert decode_record(encode_record(7, entry)) == (7, entry)

    def test_legacy_v1_lines_decode_with_no_seq(self):
        entry = {"kind": "client", "client": "ops"}
        assert decode_record(json.dumps(entry)) == (None, entry)

    def test_every_single_byte_flip_is_detected(self):
        line = encode_record(3, sample_entries()[1])
        for offset in range(len(line)):
            with pytest.raises(RecordCorruption):
                decode_record(flip_byte(line, salt=offset))

    def test_checksum_binds_the_sequence_number(self):
        # Replaying a record at a different position must not verify:
        # the CRC covers "<seq>:<payload>", not the payload alone.
        obj = json.loads(encode_record(3, {"kind": "client", "client": "a"}))
        obj["seq"] = 4
        with pytest.raises(RecordCorruption, match="checksum mismatch"):
            decode_record(canonical(obj))


# ======================================================================
# Snapshots and folding
# ======================================================================
class TestSnapshots:
    def test_roundtrip(self):
        entries = fold_entries(sample_entries())
        assert decode_snapshot(encode_snapshot(entries, 9)) == (entries, 9)

    def test_every_single_byte_flip_is_detected(self):
        blob = encode_snapshot(fold_entries(sample_entries()), 7)
        for offset in range(len(blob)):
            with pytest.raises(SnapshotCorruption):
                decode_snapshot(flip_byte(blob, salt=offset))

    def test_fold_is_idempotent(self):
        folded = fold_entries(sample_entries())
        assert fold_entries(folded) == folded

    def test_fold_coalesces_heartbeats_keeping_the_last(self):
        folded = fold_entries(sample_entries())
        beats = [e for e in folded if e.get("kind") == "heartbeat"]
        assert beats == [{"kind": "heartbeat", "member": "k1", "ts": 20}]

    def test_folded_digest_is_representation_independent(self):
        # The anti-entropy invariant: a site that compacted its prefix
        # and one still holding the raw records digest identically once
        # both are folded.  fold(fold(prefix) + tail) == fold(prefix + tail).
        entries = sample_entries()
        raw = entries
        compacted = fold_entries(entries[:4]) + entries[4:]
        assert entries_digest(fold_entries(raw)) == entries_digest(
            fold_entries(compacted)
        )


# ======================================================================
# File-backed journal integrity
# ======================================================================
class TestJournalIntegrity:
    def test_appends_are_framed_v2_with_monotonic_seqs(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        for entry in sample_entries():
            journal.append(entry)
        with open(path) as fh:
            seqs = [decode_record(line)[0] for line in fh if line.strip()]
        assert seqs == list(range(1, len(sample_entries()) + 1))

    def test_legacy_v1_journal_reads_transparently(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        legacy = [{"kind": "client", "client": "a"}, {"kind": "client", "client": "b"}]
        with open(path, "w") as fh:
            fh.writelines(json.dumps(e) + "\n" for e in legacy)
        journal = PolicyJournal(path)
        assert journal.entries() == legacy
        journal.append({"kind": "heartbeat", "member": "k0", "ts": 1})
        assert len(PolicyJournal(path).entries()) == 3
        with open(path) as fh:
            last = [line for line in fh if line.strip()][-1]
        assert decode_record(last)[0] == 1  # new line is framed v2

    def test_corruption_error_names_line_path_and_member(self, tmp_path):
        path = str(tmp_path / "k1.jsonl")
        journal = PolicyJournal(path, member="k1")
        for entry in sample_entries():
            journal.append(entry)
        journal.close()
        with open(path) as fh:
            lines = fh.readlines()
        lines[1] = flip_byte(lines[1].rstrip("\n"), salt=5) + "\n"
        with open(path, "w") as fh:
            fh.writelines(lines)
        with pytest.raises(JournalCorruption) as excinfo:
            PolicyJournal(path, member="k1").entries()
        exc = excinfo.value
        assert exc.path == path and exc.line == 2 and exc.member == "k1"
        assert "line 2" in str(exc) and path in str(exc)
        assert "member k1" in str(exc)
        assert "not a torn write" in str(exc)

    def test_torn_final_line_is_dropped_and_trimmed(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        entries = sample_entries()[:3]
        for entry in entries:
            journal.append(entry)
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"crc":12')  # the crash: a torn, unterminated tail
        assert PolicyJournal(path).entries() == entries
        reopened = PolicyJournal(path)
        reopened.append({"kind": "heartbeat", "member": "k0", "ts": 1})
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 4  # torn tail trimmed, not preserved mid-file
        assert decode_record(lines[-1])[0] == 4

    def test_cache_notices_external_writes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        journal.append({"kind": "client", "client": "a"})
        assert journal.entries() == journal.entries()  # cached, stable
        sneaky = {"kind": "client", "client": "external"}
        with open(path, "a") as fh:
            fh.write(encode_record(2, sneaky) + "\n")
        assert journal.entries()[-1] == sneaky
        journal.append({"kind": "client", "client": "c"})  # seq continues
        with open(path) as fh:
            assert decode_record([l for l in fh if l.strip()][-1])[0] == 3

    def test_salvage_keeps_the_valid_prefix_and_the_evidence(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        entries = sample_entries()[:5]
        for entry in entries:
            journal.append(entry)
        journal.close()
        with open(path) as fh:
            lines = fh.readlines()
        lines[1] = flip_byte(lines[1].rstrip("\n"), salt=5) + "\n"
        with open(path, "w") as fh:
            fh.writelines(lines)
        rotten = PolicyJournal(path)
        report = rotten.salvage()
        assert report["kept"] == 1 and report["dropped"] == 4
        assert report["line"] == 2
        assert os.path.exists(path + ".corrupt")
        assert rotten.entries() == entries[:1]
        rotten.append({"kind": "client", "client": "after"})
        assert len(PolicyJournal(path).entries()) == 2

    def test_compaction_truncates_and_preserves_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = PolicyJournal(path)
        for entry in sample_entries():
            journal.append(entry)
        before = journal.entries()
        stats = journal.compact()
        assert stats["before"] == len(before)
        assert stats["after"] < stats["before"]
        assert os.path.exists(journal.snapshot_path)
        with open(path) as fh:
            assert fh.read() == ""  # log truncated; prefix lives in the snapshot
        assert journal.entries() == fold_entries(before)
        assert PolicyJournal(path).entries() == fold_entries(before)
        # Appends continue the sequence past the snapshot high-water mark.
        journal.append({"kind": "client", "client": "late"})
        with open(path) as fh:
            line = [l for l in fh if l.strip()][0]
        assert decode_record(line)[0] == stats["last_seq"] + 1
        assert PolicyJournal(path).entries()[-1] == {"kind": "client", "client": "late"}


# ======================================================================
# Every-offset corruption properties
# ======================================================================
JOURNAL_LINES = [encode_record(i + 1, e) for i, e in enumerate(sample_entries())]
JOURNAL_BYTES = ("\n".join(JOURNAL_LINES) + "\n").encode("utf-8")


class TestEveryOffsetFlip:
    def test_journal_file_flip_at_every_offset_is_found_by_scrub(self):
        # The one non-finding offset is the trailing newline: flipping
        # it is indistinguishable from a torn final write, which the
        # journal's crash model absorbs by trimming that line on open.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "journal.jsonl")
            for offset in range(len(JOURNAL_BYTES)):
                rotten = bytearray(JOURNAL_BYTES)
                rotten[offset] ^= 0x01
                with open(path, "wb") as fh:
                    fh.write(rotten)
                journal = PolicyJournal(path)
                if offset == len(JOURNAL_BYTES) - 1:
                    assert len(journal.entries()) == len(JOURNAL_LINES) - 1
                    continue
                report = Scrubber(repair=False).scrub_journal(journal)
                assert not report.ok, f"flip at byte {offset} went undetected"

    @given(offset=st.integers(min_value=0, max_value=len(JOURNAL_BYTES) - 2))
    @settings(max_examples=40, deadline=None)
    def test_journal_file_flip_property(self, offset):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "journal.jsonl")
            rotten = bytearray(JOURNAL_BYTES)
            rotten[offset] ^= 0x01
            with open(path, "wb") as fh:
                fh.write(rotten)
            report = Scrubber(repair=False).scrub_journal(PolicyJournal(path))
            assert not report.ok

    @staticmethod
    def build_group():
        group = ReplicaGroup("g")
        for entry in sample_entries():
            group.append(entry)
        return group

    def test_site_record_flip_at_every_offset_detected_and_repaired(self):
        group = self.build_group()
        committed = group.entries()
        follower = next(s for s in group.sites if s is not group.leader)
        seq = 3
        pristine = follower.log[seq]
        for offset in range(len(pristine)):
            follower.log[seq] = flip_byte(pristine, salt=offset)
            report = Scrubber().scrub_group(group)
            assert not report.ok, f"flip at byte {offset} went undetected"
            assert report.healed and follower.name in report.repaired
            # Zero committed-entry loss, byte-for-byte restoration.
            assert follower.log[seq] == pristine
            assert group.entries() == committed

    @given(
        pick_seq=st.integers(min_value=0, max_value=10**6),
        pick_site=st.integers(min_value=0, max_value=10**6),
        pick_offset=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_site_record_flip_property(self, pick_seq, pick_site, pick_offset):
        group = self.build_group()
        committed = group.entries()
        site = group.sites[pick_site % len(group.sites)]
        seq = 1 + pick_seq % group.commit_index
        pristine = dict(site.log)
        raw = site.log[seq]
        site.log[seq] = flip_byte(raw, salt=pick_offset % len(raw))
        report = Scrubber().scrub_group(group)
        assert not report.ok and report.healed
        assert site.log == pristine
        assert group.entries() == committed


# ======================================================================
# Group scrub, repair, and compaction
# ======================================================================
class TestGroupScrubAndRepair:
    def test_divergence_with_valid_checksums_is_caught_by_digests(self):
        group = TestEveryOffsetFlip.build_group()
        committed = group.entries()
        follower = next(s for s in group.sites if s is not group.leader)
        # A forged record: checksums verify, content silently diverges.
        follower.log[2] = encode_record(2, {"kind": "client", "client": "evil"})
        report = Scrubber().scrub_group(group)
        finding = next(f for f in report.findings if f.target == follower.name)
        assert finding.kind == "digest"
        assert report.healed and group.entries() == committed
        assert follower.last_scrub.startswith("repaired from")

    def test_scrub_agrees_across_snapshot_and_raw_log_representations(self):
        # A site that missed the compaction wave keeps raw records; the
        # folded digest must not mistake that representation for rot.
        group = TestEveryOffsetFlip.build_group()
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        stats = group.compact()
        assert stats["after"] < stats["before"]
        group.recover_site(follower.name)
        group.append({"kind": "heartbeat", "member": "k9", "ts": 30})
        assert group.leader.base is not None and follower.base is None
        report = Scrubber().scrub_group(group)
        assert report.ok, report.describe()
        assert follower.base is None  # no spurious "repair" rewrote it

    def test_compaction_is_fenced_by_the_lease_epoch(self):
        group = TestEveryOffsetFlip.build_group()
        stale = group.lease()
        group.fence(stale.epoch + 1)
        with pytest.raises(StaleLeaderFenced):
            group.compact(lease=stale)

    def test_injected_rot_at_append_time_is_silent_then_scrubbed(self):
        group = ReplicaGroup("g")
        follower_name = group.sites[1].name
        plan = FaultPlan(seed=1, name="rot")
        plan.fail(SITE_STORAGE_CORRUPT_LINE, times=1, match={"replica": follower_name})
        with injected(plan):
            for entry in sample_entries():
                group.append(entry)  # every append still reports success
        assert plan.fired[SITE_STORAGE_CORRUPT_LINE] == 1
        assert group.commit_index == len(sample_entries())
        report = Scrubber().scrub_group(group)
        assert not report.ok and report.healed
        assert len(group.entries()) == group.commit_index
        assert group.repairs == 1

    def test_health_surfaces_lag_and_scrub_verdicts(self):
        group = TestEveryOffsetFlip.build_group()
        follower = next(s for s in group.sites if s is not group.leader)
        group.fail_site(follower.name)
        group.append({"kind": "heartbeat", "member": "k9", "ts": 30})
        Scrubber().scrub_group(group)
        health = group.health()
        assert health["sites"][follower.name]["lag"] > 0
        up = next(s for s in group.sites if s.state is SiteState.UP)
        assert health["sites"][up.name]["scrub"] == "ok"
        assert "lag" in group.describe()

    def test_failed_scrub_is_journaled(self):
        group = TestEveryOffsetFlip.build_group()
        fleet_journal = ReplicaGroup("fleetj").journal()
        follower = next(s for s in group.sites if s is not group.leader)
        follower.log[2] = flip_byte(follower.log[2], salt=9)
        Scrubber(journal=fleet_journal).scrub_group(group)
        events = [e.get("event") for e in fleet_journal.entries()]
        assert "scrub-failed" in events and "scrub-repaired" in events


# ======================================================================
# Compacted-journal recovery equivalence
# ======================================================================
class TestCompactionEquivalence:
    def test_recovery_over_compacted_journal_matches_uncompacted(self, tmp_path):
        from tests.test_controlplane_recovery import (
            make_daemon,
            make_kernel,
            meter_submission,
            spin_park,
        )
        from repro.concord import Concord
        from repro.userspace import PolicyClient

        path = str(tmp_path / "journal.jsonl")
        daemon = make_daemon(Concord(make_kernel()), PolicyJournal(path))
        client = PolicyClient.connect(daemon, "ops")
        client.submit(meter_submission(impl_factory=spin_park, impl_name="spin_park"))
        record = client.rollout("steady", baseline_ns=40_000, canary_ns=40_000)
        assert record.state is PolicyState.ACTIVE
        for ts in (1, 2, 3):
            PolicyJournal(path).heartbeat(ts, member="k0")
        daemon.detach()

        raw_path = str(tmp_path / "raw.jsonl")
        compact_path = str(tmp_path / "compact.jsonl")
        shutil.copy(path, raw_path)
        shutil.copy(path, compact_path)
        stats = PolicyJournal(compact_path).compact()
        assert stats["after"] < stats["before"]
        assert fold_entries(PolicyJournal(raw_path).entries()) == PolicyJournal(
            compact_path
        ).entries()

        outcomes = {}
        for label, journal_path in (("raw", raw_path), ("compact", compact_path)):
            kernel = make_kernel()  # identical fresh boot for both replays
            fresh = make_daemon(Concord(kernel), PolicyJournal(journal_path))
            summary = fresh.recover()
            outcomes[label] = (
                summary,
                fresh.status("steady").state,
                {
                    name: type(kernel.locks.get(name).core.impl).__name__
                    for name in kernel.locks.select_names("svc.*.lock")
                },
                PolicyJournal(journal_path).last_transition("steady")["to"],
            )
        assert outcomes["raw"] == outcomes["compact"]
        assert outcomes["compact"][1] is PolicyState.ACTIVE


# ======================================================================
# Health-monitor scrub integration
# ======================================================================
class TestHealthScrubIntegration:
    def test_probe_all_scrubs_on_the_configured_cadence(self):
        fleet, groups = replicated_fleet()
        monitor = HealthMonitor(fleet, scrubber=Scrubber(), scrub_every=2)
        first = monitor.probe_all()
        assert not any(key.endswith(":scrub") for key in first)
        second = monitor.probe_all()
        assert second["k1:scrub"].ok and second["k1:scrub"].detail == "scrub: ok"

    def test_self_healed_rot_is_a_passing_probe(self):
        fleet, groups = replicated_fleet()
        member = fleet.member("k1")
        member.journal.heartbeat(1, member="k1")
        follower = next(
            s for s in groups["k1"].sites if s is not groups["k1"].leader
        )
        follower.log[1] = flip_byte(follower.log[1], salt=3)
        record = HealthMonitor(fleet, scrubber=Scrubber()).probe_all()["k1:scrub"]
        assert record.ok and "repaired" in record.detail
        assert follower.last_scrub.startswith("repaired from")

    def test_unhealable_rot_escalates_to_quarantine(self, tmp_path):
        path = str(tmp_path / "k0.jsonl")
        fleet = FleetManager()
        add_member(fleet, "k0", journal=PolicyJournal(path))
        member = fleet.member("k0")
        for entry in sample_entries()[:3]:
            member.journal.append(entry)
        with open(path) as fh:
            lines = fh.readlines()
        lines[1] = flip_byte(lines[1].rstrip("\n"), salt=5) + "\n"
        with open(path, "w") as fh:
            fh.writelines(lines)

        deaths = []
        monitor = HealthMonitor(
            fleet,
            scrubber=Scrubber(),
            dead_after=2,
            on_dead=lambda name, cause: deaths.append((name, cause)),
        )
        first = monitor.probe_all()
        assert first["k0"].ok and not first["k0:scrub"].ok
        monitor.probe_all()
        # The scrub verdict rides its own escalation ring: liveness
        # stays HEALTHY while persistent rot walks to DEAD.
        assert monitor.state("k0") is HealthState.HEALTHY
        assert monitor.state("k0:scrub") is HealthState.DEAD
        assert deaths and deaths[0][0] == "k0" and "scrub" in deaths[0][1]


# ======================================================================
# Fleet recovery over a rotten unreplicated shard
# ======================================================================
class TestCorruptShardQuarantine:
    def test_rotten_shard_quarantines_salvages_and_books_debt(self, tmp_path):
        fleet = FleetManager()
        shards = {}
        for name, locks, seed, tasks in (
            ("k0", 2, 11, 1),
            ("k1", 3, 12, 3),
            ("k2", 3, 13, 4),
        ):
            shards[name] = str(tmp_path / f"{name}.jsonl")
            add_member(
                fleet,
                name,
                locks=locks,
                seed=seed,
                tasks_per_lock=tasks,
                journal=PolicyJournal(shards[name]),
            )
        fleet_path = str(tmp_path / "fleet.jsonl")
        coordinator = FleetCoordinator(fleet, journal=PolicyJournal(fleet_path))
        result = coordinator.execute(
            RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet)),
            good_factory,
            **ROLLOUT_KWARGS,
        )
        assert result.state is FleetRolloutState.COMPLETE

        # Rot strikes after the ACTIVE transition, so salvage strands
        # live state that must be booked as revert debt.
        member = fleet.member("k1")
        for ts in (1, 2, 3):
            member.journal.heartbeat(ts, member="k1")
        member.journal.close()
        with open(shards["k1"]) as fh:
            lines = fh.readlines()
        rotten_line = len(lines) - 1
        lines[rotten_line - 1] = (
            flip_byte(lines[rotten_line - 1].rstrip("\n"), salt=17) + "\n"
        )
        with open(shards["k1"], "w") as fh:
            fh.writelines(lines)

        fresh = FleetCoordinator(fleet, journal=PolicyJournal(fleet_path))
        assert fresh.recover(good_factory, **ROLLOUT_KWARGS) is None
        assert fleet.is_quarantined("k1")
        assert "journal shard corrupt" in fleet.quarantined()["k1"]
        assert os.path.exists(shards["k1"] + ".corrupt")
        events = PolicyJournal(fleet_path).entries()
        corrupt = [e for e in events if e.get("event") == "shard-corrupt"]
        assert corrupt and corrupt[0]["kernel"] == "k1"
        debt = [
            e
            for e in events
            if e.get("event") == "revert-debt" and e.get("kernel") == "k1"
        ]
        assert debt and debt[0]["rollout"] == "numa-good"
        for name in ("k0", "k2"):
            record = fleet.member(name).daemon.records["numa-good"]
            assert record.state is PolicyState.ACTIVE

        fresh.reinstate("k1")
        drained = fresh.drain_debt()
        assert any(e.get("kernel") == "k1" for e in drained)
        record = fleet.member("k1").daemon.records.get("numa-good")
        assert record is None or not record.live


# ======================================================================
# Chaos: sampled storage rot
# ======================================================================
def test_chaos_storage_rot_is_scrubbed_without_losing_commits(chaos_seed):
    """RF=3 under a sampled ``storage.corrupt.*`` chaos plan *plus* one
    guaranteed record flip at a follower: whatever rots, the scrub pass
    detects and repairs it, and post-repair quorum reads serve the
    committed prefix whole — no committed ack is lost to media rot."""
    fleet, groups = replicated_fleet()
    placement = learn(fleet)
    fleet_group = ReplicaGroup("fleet")
    journal = fleet_group.journal()
    coord = FleetCoordinator(fleet, journal=journal)

    chaos = sample_plan(chaos_seed, storage_sites=CHAOS_STORAGE_SITES)
    follower = next(
        s for s in groups["k1"].sites if s is not groups["k1"].leader
    )
    chaos.fail(SITE_STORAGE_CORRUPT_LINE, times=1, match={"replica": follower.name})
    outcome = None
    with injected(chaos):
        try:
            outcome = coord.execute(
                RolloutPlanner(**PLANNER).plan("numa-good", placement),
                good_factory,
                **ROLLOUT_KWARGS,
            )
        except InjectedCrash:
            pass
        except Exception:
            pass  # a typed failure aborts the rollout; invariants must hold

    if outcome is None or outcome.state not in (
        FleetRolloutState.COMPLETE,
        FleetRolloutState.HALTED,
    ):
        FleetCoordinator(fleet, journal=journal).recover(
            good_factory, **ROLLOUT_KWARGS
        )
    assert_converged_and_debt_free(fleet, journal, "numa-good")

    scrubber = Scrubber()
    for group in list(groups.values()) + [fleet_group]:
        committed = group.entries()  # the quorum read self-heals if needed
        report = scrubber.scrub_group(group)
        assert report.ok or report.healed, report.describe()
        assert scrubber.scrub_group(group).ok  # repair converged: re-scrub clean
        assert group.entries() == committed
        assert len(group.entries()) == group.commit_index
