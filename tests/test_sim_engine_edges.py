"""Remaining engine edges: stop(), external unpark, error propagation,
run-loop bookkeeping."""

import pytest

from repro.sim import Engine, Topology, ops


def make_engine(**kw):
    return Engine(Topology(sockets=1, cores_per_socket=4), **kw)


class TestStop:
    def test_stop_halts_loop_immediately(self):
        eng = make_engine()

        def forever(task):
            while True:
                yield ops.Delay(100)

        eng.spawn(forever, cpu=0)
        eng.call_at(5_000, eng.stop)
        end = eng.run()
        assert end == 5_000

    def test_run_can_resume_after_stop(self):
        eng = make_engine()
        ticks = []

        def body(task):
            for _ in range(100):
                yield ops.Delay(100)
                ticks.append(task.engine.now)

        eng.spawn(body, cpu=0)
        eng.call_at(1_000, eng.stop)
        eng.run()
        first_count = len(ticks)
        eng.run(until=20_000)
        assert len(ticks) > first_count


class TestExternalControls:
    def test_unpark_external(self):
        eng = make_engine()

        def sleeper(task):
            woken = yield ops.Park()
            task.stats["woken"] = woken

        target = eng.spawn(sleeper, cpu=0)
        eng.call_at(2_000, lambda: eng.unpark_external(target))
        eng.run()
        assert target.stats["woken"] is True

    def test_unpark_external_before_park_leaves_token(self):
        eng = make_engine()

        def sleeper(task):
            yield ops.Delay(5_000)
            woken = yield ops.Park()
            task.stats["woken_at"] = task.engine.now

        target = eng.spawn(sleeper, cpu=0)
        eng.call_at(100, lambda: eng.unpark_external(target))
        eng.run()
        assert target.stats["woken_at"] < 6_000

    def test_unpark_done_task_is_noop(self):
        eng = make_engine()

        def quick(task):
            yield ops.Delay(10)

        target = eng.spawn(quick, cpu=0)
        eng.call_at(1_000, lambda: eng.unpark_external(target))
        eng.run()  # must not blow up
        assert target.done


class TestErrorPropagation:
    def test_task_exception_surfaces_and_is_recorded(self):
        eng = make_engine()

        def exploder(task):
            yield ops.Delay(10)
            raise ValueError("boom")

        task = eng.spawn(exploder, cpu=0)
        with pytest.raises(ValueError, match="boom"):
            eng.run()
        assert isinstance(task.error, ValueError)
        assert task.done

    def test_cpu_released_after_task_error(self):
        eng = make_engine()

        def exploder(task):
            yield ops.Delay(10)
            raise RuntimeError("x")

        def survivor(task):
            yield ops.Delay(100)
            task.stats["done"] = True

        eng.spawn(exploder, cpu=0)
        other = eng.spawn(survivor, cpu=0, at=5)
        with pytest.raises(RuntimeError):
            eng.run()
        eng.run()  # remaining events proceed: the CPU was released
        assert other.stats.get("done") is True


class TestBookkeeping:
    def test_events_processed_counts(self):
        eng = make_engine()

        def body(task):
            for _ in range(10):
                yield ops.Delay(10)

        eng.spawn(body, cpu=0)
        eng.run()
        assert eng.events_processed >= 10

    def test_run_until_is_idempotent_at_idle(self):
        eng = make_engine()

        def body(task):
            yield ops.Delay(50)

        eng.spawn(body, cpu=0)
        eng.run(until=1_000)
        assert eng.now == 1_000
        eng.run(until=2_000)
        assert eng.now == 2_000

    def test_cell_names_flow_to_repr(self):
        eng = make_engine()
        cell = eng.cell(5, name="glock")
        assert "glock" in repr(cell)
        assert cell.peek() == 5
