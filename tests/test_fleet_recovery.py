"""Mid-wave crash recovery: resume or unwind, never a split fleet.

The crash model matches the single-kernel drill — an ``InjectedCrash``
kills the whole control-plane process (coordinator + member daemons)
with no teardown; the kernels live on.  A new coordinator over the same
journals must converge the fleet to one of exactly two shapes:

* **resume** — every completed wave's kernels verified ACTIVE, the
  remaining waves executed, policy fleet-wide; or
* **unwind** — every patched kernel reverted to stock.

Anything in between is a split fleet, and is asserted against in every
scenario here.
"""

import pytest

from repro.controlplane import PolicyJournal, PolicyState
from repro.faults import (
    FaultPlan,
    InjectedCrash,
    SITE_FLEET_REVERT,
    SITE_FLEET_WAVE,
    injected,
)
from repro.fleet import FleetCoordinator, FleetRolloutState, RolloutPlanner
from repro.locks import SpinParkMutex

from tests._fleet_util import ROLLOUT_KWARGS, add_member, good_factory, learn

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)


def journaled_fleet(**extra):
    from repro.fleet import FleetManager

    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1,
               journal=PolicyJournal(), **extra)
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3,
               journal=PolicyJournal(), **extra)
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4,
               journal=PolicyJournal(), **extra)
    return fleet


def assert_not_split(fleet, policy):
    """The core invariant: all-patched or all-stock, nothing between."""
    states = {}
    for member in fleet.members():
        record = member.daemon.records.get(policy)
        states[member.name] = (
            record.state if record is not None and record.live else "stock"
        )
    live = [k for k, s in states.items() if s != "stock"]
    assert len(live) in (0, len(states)), f"split fleet: {states}"
    return states


def test_crash_between_waves_resumes_remaining_waves():
    fleet = journaled_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    fault = FaultPlan(seed=5)
    # First wave checkpoint passes; the second (wave 1) kills the
    # process after wave 0 was journaled done.
    fault.crash(SITE_FLEET_WAVE, after=1, times=1)
    with injected(fault):
        with pytest.raises(InjectedCrash):
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    # Wave 0's kernel is patched, waves 1's are not — mid-crash state.
    assert fleet.member("k0").daemon.records["numa-good"].state is PolicyState.ACTIVE

    fresh = FleetCoordinator(fleet, journal=journal)
    rollout = fresh.recover(good_factory, **ROLLOUT_KWARGS)
    assert rollout is not None
    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.resumed_from_wave == 1
    states = assert_not_split(fleet, "numa-good")
    assert all(s is PolicyState.ACTIVE for s in states.values())
    events = [e["event"] for e in journal.entries() if e.get("kind") == "fleet"]
    assert events[-1] == "complete"


def test_crash_mid_canary_rolls_back_then_resumes():
    fleet = journaled_fleet()
    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    fault = FaultPlan(seed=5)
    # Crash inside a canary watch window of wave 1 (the canary
    # checkpoint fires repeatedly during wave 0 — skip past those).
    fault.crash("controlplane.canary.checkpoint", after=6, times=1)
    with injected(fault):
        with pytest.raises(InjectedCrash):
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)

    fresh = FleetCoordinator(fleet, journal=journal)
    rollout = fresh.recover(good_factory, **ROLLOUT_KWARGS)
    assert rollout is not None
    # Member recovery rolled the unwatched canary back (terminal), so
    # the resumed wave re-submits it; either way the fleet converges.
    assert rollout.state in (FleetRolloutState.COMPLETE, FleetRolloutState.UNWOUND)
    states = assert_not_split(fleet, "numa-good")
    if rollout.state is FleetRolloutState.COMPLETE:
        assert all(s is PolicyState.ACTIVE for s in states.values())


def test_crash_during_revert_finishes_unwind_on_recovery():
    fleet = journaled_fleet()
    # Quorum planner would tolerate the breach; any-breach halts.
    plan = RolloutPlanner(**PLANNER).plan("bad-numa", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    from tests._fleet_util import bad_factory

    fault = FaultPlan(seed=5)
    fault.crash(SITE_FLEET_REVERT, times=1)  # die on the first revert
    with injected(fault):
        with pytest.raises(InjectedCrash):
            coord.execute(plan, bad_factory, **ROLLOUT_KWARGS)

    events = [e["event"] for e in journal.entries() if e.get("kind") == "fleet"]
    assert "halt" in events  # journaled before the crash

    fresh = FleetCoordinator(fleet, journal=journal)
    rollout = fresh.recover(bad_factory, **ROLLOUT_KWARGS)
    assert rollout is not None
    assert rollout.state is FleetRolloutState.UNWOUND
    states = assert_not_split(fleet, "bad-numa")
    assert all(s == "stock" for s in states.values())
    events = [e["event"] for e in journal.entries() if e.get("kind") == "fleet"]
    assert events[-1] == "unwound"


def test_unrecoverable_completed_wave_unwinds_everything():
    # The policy switches lock implementations via a factory registered
    # in each daemon's impl registry.  After the crash the registry
    # loses the factory (the operator's plugin didn't survive the
    # restart), so the completed wave's kernel cannot be re-attached —
    # member recovery rolls it back fail-open, and the fleet must then
    # unwind the rollout rather than resume into a split fleet.
    registry = {"spin_park": lambda old: SpinParkMutex(old.engine, name=f"sp.{old.name}")}
    fleet = journaled_fleet(impl_registry=registry)
    from repro.controlplane import PolicySubmission
    from repro.concord.policies.numa import make_numa_policy

    def switching_factory(member):
        return PolicySubmission(
            spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good"),
            impl_factory=registry["spin_park"],
            impl_name="spin_park",
        )

    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    fault = FaultPlan(seed=5)
    fault.crash(SITE_FLEET_WAVE, after=1, times=1)  # die entering wave 1
    with injected(fault):
        with pytest.raises(InjectedCrash):
            coord.execute(plan, switching_factory, **ROLLOUT_KWARGS)
    assert fleet.member("k0").daemon.records["numa-good"].state is PolicyState.ACTIVE

    registry.pop("spin_park")  # the factory does not survive the restart

    def crippled_factory(member):
        return PolicySubmission(
            spec=make_numa_policy(lock_selector="svc.*.lock", name="numa-good")
        )

    fresh = FleetCoordinator(fleet, journal=journal)
    rollout = fresh.recover(crippled_factory, **ROLLOUT_KWARGS)
    assert rollout is not None
    assert rollout.state is FleetRolloutState.UNWOUND
    assert "not ACTIVE" in rollout.halt_cause
    states = assert_not_split(fleet, "numa-good")
    assert all(s == "stock" for s in states.values())


def test_recover_with_nothing_in_flight_is_a_noop():
    fleet = journaled_fleet()
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    assert coord.recover(good_factory) is None

    plan = RolloutPlanner(**PLANNER).plan("numa-good", learn(fleet))
    rollout = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    assert rollout.state is FleetRolloutState.COMPLETE
    # Completed rollout: recovery restarts members, re-attaches their
    # ACTIVE policies, and has nothing fleet-level to do.
    fresh = FleetCoordinator(fleet, journal=journal)
    assert fresh.recover(good_factory, **ROLLOUT_KWARGS) is None
    states = assert_not_split(fleet, "numa-good")
    assert all(s is PolicyState.ACTIVE for s in states.values())


def test_recover_without_fleet_journal_is_refused():
    from repro.fleet import FleetError

    fleet = journaled_fleet()
    coord = FleetCoordinator(fleet, journal=None)
    with pytest.raises(FleetError, match="journal"):
        coord.recover(good_factory)


def test_crash_after_replan_resumes_the_replanned_tail():
    from repro.fleet import PlacementRefresher

    fleet = journaled_fleet()
    current = learn(fleet)
    planner = RolloutPlanner(**PLANNER)
    plan = planner.plan("numa-good", current)
    refresher = PlacementRefresher(
        fleet, "svc.*.lock", current,
        window_ns=150_000, adopt_above=0.0, settle_below=0.0,
    )
    journal = PolicyJournal()
    coord = FleetCoordinator(
        fleet, journal=journal, refresher=refresher, planner=planner
    )
    fault = FaultPlan(seed=5)
    # Wave 0 completes and its boundary refresh adopts a fresh map (the
    # replan entry lands); the wave-1 checkpoint then kills the process.
    fault.crash(SITE_FLEET_WAVE, after=1, times=1)
    with injected(fault):
        with pytest.raises(InjectedCrash):
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
    entries = [e for e in journal.entries() if e.get("kind") == "fleet"]
    replans = [e for e in entries if e["event"] == "replan"]
    assert len(replans) == 1

    # Recovery must resume against the journaled *replanned* tail, not
    # the original plan entry's stale wave structure.
    fresh = FleetCoordinator(fleet, journal=journal)
    rollout = fresh.recover(good_factory, **ROLLOUT_KWARGS)
    assert rollout is not None
    assert rollout.state is FleetRolloutState.COMPLETE
    assert rollout.resumed_from_wave == 1
    assert rollout.plan.serialize() == replans[0]["plan"]
    states = assert_not_split(fleet, "numa-good")
    assert all(s is PolicyState.ACTIVE for s in states.values())
