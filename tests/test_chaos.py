"""Randomized chaos runs: sampled fault plans, invariant assertions.

Unlike the targeted injection tests, these do not know which faults
will fire — :func:`repro.faults.chaos.sample_plan` draws a plan from
``--chaos-seed`` (CI passes fresh seeds; the default seeds make the
suite deterministic).  The contract is therefore not "the rollout
succeeded" but the invariants that must hold under *any* survivable
fault plan:

* the fleet is never split — every kernel patched, or every kernel
  stock, after recovery;
* no leaked installations — every loaded program belongs to a live
  record that owns it;
* the journal and the kernel agree after recovery.

A red seed reproduces bit-for-bit: ``pytest tests/test_chaos.py
--chaos-seed N``.
"""

import pytest

from repro.bpf.maps import HashMap
from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    Concordd,
    PolicyJournal,
    PolicyState,
    PolicySubmission,
    SLOGuard,
)
from repro.faults import (
    SITE_FLEET_MEMBER_CALL,
    InjectedCrash,
    injected,
    sample_plan,
)
from repro.fleet import (
    FleetCoordinator,
    FleetManager,
    FleetRolloutState,
    HealthMonitor,
    RolloutPlanner,
)
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    learn,
    spawn_shard_workload,
)

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)

METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def assert_no_leaked_programs(concord, records):
    """Every loaded program is owned by a live record."""
    owned = set()
    for record in records.values():
        if record.live:
            owned.update(spec.name for spec in record.submission.specs)
    leaked = set(concord.policies) - owned
    assert not leaked, f"leaked programs: {sorted(leaked)}"


def test_sampled_plan_is_deterministic(chaos_seed):
    one, two = sample_plan(chaos_seed), sample_plan(chaos_seed)
    assert len(one.rules) == len(two.rules)
    for a, b in zip(one.rules, two.rules):
        assert (a.site, a.delay_ns, a.times, a.after, a.error) == (
            b.site,
            b.delay_ns,
            b.times,
            b.after,
            b.error,
        )
    assert 2 <= len(one.rules) <= 4


def test_chaos_single_kernel_rollout(chaos_seed):
    """One daemon, one journal, a sampled adversary; after the dust
    settles and recovery runs, the kernel holds exactly what the
    records say it holds."""
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=chaos_seed)
    for index in range(3):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    journal = PolicyJournal()
    daemon = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=0.50),
        journal=journal,
        canary_fraction=0.5,
    )
    daemon.register_client("ops", allowed_selectors=("svc.*",))
    spawn_shard_workload(kernel, kernel.now + 6_000_000, tasks_per_lock=2)

    submission = PolicySubmission(
        spec=PolicySpec(
            name="meter",
            hook=HOOK_LOCK_ACQUIRED,
            source=METER_SOURCE,
            maps={"hits": HashMap("meter.hits", max_entries=4096)},
            lock_selector="svc.*.lock",
        )
    )
    plan = sample_plan(chaos_seed)
    crashed = False
    with injected(plan):
        try:
            daemon.submit("ops", submission)
            daemon.rollout("meter", **ROLLOUT_KWARGS)
        except InjectedCrash:
            crashed = True
        except Exception:
            pass  # a typed denial/failure is a fine outcome under chaos

    if crashed or daemon.records:
        # The process is gone (or suspect): restart over the same
        # journal, chaos cleared — the operator's second try.
        daemon = Concordd(
            concord,
            guard=SLOGuard(max_avg_wait_regression=0.50),
            journal=journal,
            canary_fraction=0.5,
        )
        daemon.recover()
    assert_no_leaked_programs(concord, daemon.records)
    record = daemon.records.get("meter")
    if record is not None and record.state is PolicyState.ACTIVE:
        assert "meter" in concord.policies


def test_chaos_fleet_rollout_never_splits(chaos_seed):
    """The headline invariant under a sampled adversary: whatever fires,
    the fleet converges to all-patched or all-stock."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    placement = learn(fleet)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", placement)
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    chaos = sample_plan(chaos_seed)
    outcome = None
    with injected(chaos):
        try:
            outcome = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # typed failure: rollout aborted, invariants must hold

    if outcome is None or outcome.state not in (
        FleetRolloutState.COMPLETE,
        FleetRolloutState.HALTED,
    ):
        # Crashed or aborted mid-flight: recover with the chaos cleared.
        fresh = FleetCoordinator(fleet, journal=journal)
        fresh.recover(good_factory, **ROLLOUT_KWARGS)

    assert_converged_and_debt_free(fleet, journal, "numa-good")


def test_chaos_member_death_never_splits_or_strands_debt(chaos_seed):
    """Member-outage chaos: probe/heartbeat/member-call/debt-drain
    faults (plus one guaranteed outage that outlasts the coordinator's
    retry envelope).  After reinstatement + recovery, the fleet is
    uniform and every journaled revert debt is drained."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    placement = learn(fleet)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", placement)
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    monitor = HealthMonitor(fleet, dead_after=2, on_dead=coord.quarantine)

    chaos = sample_plan(chaos_seed)
    chaos.fail(SITE_FLEET_MEMBER_CALL, times=4, after=1)
    with injected(chaos):
        for _ in range(2):
            monitor.probe_all()  # sampled probe faults may kill members here
        try:
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # typed failure: rollout aborted, invariants must hold

    assert_converged_and_debt_free(fleet, journal, "numa-good")


def assert_converged_and_debt_free(fleet, journal, policy):
    """Reinstate the quarantined, recover, and assert the ISSUE's
    invariant: no split fleet, no undrained revert debt, no leaks."""
    for name in list(fleet.quarantined()):
        fleet.reinstate(name)
    sweeper = FleetCoordinator(fleet, journal=journal)
    sweeper.recover(good_factory, **ROLLOUT_KWARGS)
    assert not sweeper.debt, f"undrained revert debt: {sweeper.debt}"

    # The journal agrees: every revert-debt has a later debt-drained.
    owed = set()
    for entry in journal.entries():
        key = (entry.get("kernel"), entry.get("rollout"))
        if entry.get("event") == "revert-debt":
            owed.add(key)
        elif entry.get("event") == "debt-drained":
            owed.discard(key)
    assert not owed, f"journal still owes reverts: {sorted(owed)}"

    states = {}
    for member in fleet.members():
        record = member.daemon.records.get(policy)
        states[member.name] = (
            "patched" if record is not None and record.live else "stock"
        )
        assert_no_leaked_programs(member.concord, member.daemon.records)
    patched = [k for k, s in states.items() if s == "patched"]
    assert len(patched) in (0, len(states)), f"split fleet: {states}"
