"""Randomized chaos runs: sampled fault plans, invariant assertions.

Unlike the targeted injection tests, these do not know which faults
will fire — :func:`repro.faults.chaos.sample_plan` draws a plan from
``--chaos-seed`` (CI passes fresh seeds; the default seeds make the
suite deterministic).  The contract is therefore not "the rollout
succeeded" but the invariants that must hold under *any* survivable
fault plan:

* the fleet is never split — every kernel patched, or every kernel
  stock, after recovery;
* no leaked installations — every loaded program belongs to a live
  record that owns it;
* the journal and the kernel agree after recovery.

A red seed reproduces bit-for-bit: ``pytest tests/test_chaos.py
--chaos-seed N``.
"""

import pytest

from repro.bpf.maps import HashMap
from repro.concord import Concord
from repro.concord.policy import PolicySpec
from repro.controlplane import (
    Concordd,
    PolicyJournal,
    PolicyState,
    PolicySubmission,
    SLOGuard,
)
from repro.controlplane import AdaptationLoop, culling_impl_factory
from repro.faults import (
    CHAOS_ADAPTIVE_SITES,
    SITE_FLEET_MEMBER_CALL,
    InjectedCrash,
    injected,
    sample_plan,
)
from repro.fleet import (
    FleetCoordinator,
    FleetManager,
    FleetRolloutState,
    HealthMonitor,
    RolloutPlanner,
)
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.culling import CullingLock
from repro.workloads.malthus import MalthusianBench
from repro.locks.base import HOOK_LOCK_ACQUIRED
from repro.sim import Topology

from tests._fleet_util import (
    ROLLOUT_KWARGS,
    add_member,
    good_factory,
    learn,
    spawn_shard_workload,
)

PLANNER = dict(max_concurrent_kernels=2, canary_kernels=1, bake_ns=100_000)

METER_SOURCE = """
def meter(ctx):
    hits.add(ctx.tid, 1)
    return 0
"""


def assert_no_leaked_programs(concord, records):
    """Every loaded program is owned by a live record."""
    owned = set()
    for record in records.values():
        if record.live:
            owned.update(spec.name for spec in record.submission.specs)
    leaked = set(concord.policies) - owned
    assert not leaked, f"leaked programs: {sorted(leaked)}"


def test_sampled_plan_is_deterministic(chaos_seed):
    one, two = sample_plan(chaos_seed), sample_plan(chaos_seed)
    assert len(one.rules) == len(two.rules)
    for a, b in zip(one.rules, two.rules):
        assert (a.site, a.delay_ns, a.times, a.after, a.error) == (
            b.site,
            b.delay_ns,
            b.times,
            b.after,
            b.error,
        )
    assert 2 <= len(one.rules) <= 4


def test_chaos_single_kernel_rollout(chaos_seed):
    """One daemon, one journal, a sampled adversary; after the dust
    settles and recovery runs, the kernel holds exactly what the
    records say it holds."""
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=chaos_seed)
    for index in range(3):
        kernel.add_lock(
            f"svc.shard{index}.lock", ShflLock(kernel.engine, name=f"shard{index}")
        )
    concord = Concord(kernel)
    journal = PolicyJournal()
    daemon = Concordd(
        concord,
        guard=SLOGuard(max_avg_wait_regression=0.50),
        journal=journal,
        canary_fraction=0.5,
    )
    daemon.register_client("ops", allowed_selectors=("svc.*",))
    spawn_shard_workload(kernel, kernel.now + 6_000_000, tasks_per_lock=2)

    submission = PolicySubmission(
        spec=PolicySpec(
            name="meter",
            hook=HOOK_LOCK_ACQUIRED,
            source=METER_SOURCE,
            maps={"hits": HashMap("meter.hits", max_entries=4096)},
            lock_selector="svc.*.lock",
        )
    )
    plan = sample_plan(chaos_seed)
    crashed = False
    with injected(plan):
        try:
            daemon.submit("ops", submission)
            daemon.rollout("meter", **ROLLOUT_KWARGS)
        except InjectedCrash:
            crashed = True
        except Exception:
            pass  # a typed denial/failure is a fine outcome under chaos

    if crashed or daemon.records:
        # The process is gone (or suspect): restart over the same
        # journal, chaos cleared — the operator's second try.
        daemon = Concordd(
            concord,
            guard=SLOGuard(max_avg_wait_regression=0.50),
            journal=journal,
            canary_fraction=0.5,
        )
        daemon.recover()
    assert_no_leaked_programs(concord, daemon.records)
    record = daemon.records.get("meter")
    if record is not None and record.state is PolicyState.ACTIVE:
        assert "meter" in concord.policies


def test_chaos_fleet_rollout_never_splits(chaos_seed):
    """The headline invariant under a sampled adversary: whatever fires,
    the fleet converges to all-patched or all-stock."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    placement = learn(fleet)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", placement)
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)

    chaos = sample_plan(chaos_seed)
    outcome = None
    with injected(chaos):
        try:
            outcome = coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # typed failure: rollout aborted, invariants must hold

    if outcome is None or outcome.state not in (
        FleetRolloutState.COMPLETE,
        FleetRolloutState.HALTED,
    ):
        # Crashed or aborted mid-flight: recover with the chaos cleared.
        fresh = FleetCoordinator(fleet, journal=journal)
        fresh.recover(good_factory, **ROLLOUT_KWARGS)

    assert_converged_and_debt_free(fleet, journal, "numa-good")


def test_chaos_member_death_never_splits_or_strands_debt(chaos_seed):
    """Member-outage chaos: probe/heartbeat/member-call/debt-drain
    faults (plus one guaranteed outage that outlasts the coordinator's
    retry envelope).  After reinstatement + recovery, the fleet is
    uniform and every journaled revert debt is drained."""
    fleet = FleetManager()
    add_member(fleet, "k0", locks=2, seed=11, tasks_per_lock=1, journal=PolicyJournal())
    add_member(fleet, "k1", locks=3, seed=12, tasks_per_lock=3, journal=PolicyJournal())
    add_member(fleet, "k2", locks=3, seed=13, tasks_per_lock=4, journal=PolicyJournal())
    placement = learn(fleet)
    plan = RolloutPlanner(**PLANNER).plan("numa-good", placement)
    journal = PolicyJournal()
    coord = FleetCoordinator(fleet, journal=journal)
    monitor = HealthMonitor(fleet, dead_after=2, on_dead=coord.quarantine)

    chaos = sample_plan(chaos_seed)
    chaos.fail(SITE_FLEET_MEMBER_CALL, times=4, after=1)
    with injected(chaos):
        for _ in range(2):
            monitor.probe_all()  # sampled probe faults may kill members here
        try:
            coord.execute(plan, good_factory, **ROLLOUT_KWARGS)
        except InjectedCrash:
            pass
        except Exception:
            pass  # typed failure: rollout aborted, invariants must hold

    assert_converged_and_debt_free(fleet, journal, "numa-good")


def assert_converged_and_debt_free(fleet, journal, policy):
    """Reinstate the quarantined, recover, and assert the ISSUE's
    invariant: no split fleet, no undrained revert debt, no leaks."""
    for name in list(fleet.quarantined()):
        fleet.reinstate(name)
    sweeper = FleetCoordinator(fleet, journal=journal)
    sweeper.recover(good_factory, **ROLLOUT_KWARGS)
    assert not sweeper.debt, f"undrained revert debt: {sweeper.debt}"

    # The journal agrees: every revert-debt has a later debt-drained.
    owed = set()
    for entry in journal.entries():
        key = (entry.get("kernel"), entry.get("rollout"))
        if entry.get("event") == "revert-debt":
            owed.add(key)
        elif entry.get("event") == "debt-drained":
            owed.discard(key)
    assert not owed, f"journal still owes reverts: {sorted(owed)}"

    states = {}
    for member in fleet.members():
        record = member.daemon.records.get(policy)
        states[member.name] = (
            "patched" if record is not None and record.live else "stock"
        )
        assert_no_leaked_programs(member.concord, member.daemon.records)
    patched = [k for k, s in states.items() if s == "patched"]
    assert len(patched) in (0, len(states)), f"split fleet: {states}"


class TestAdaptiveChaosSampler:
    def test_existing_seeds_byte_identical(self):
        # The adaptive rule is drawn after every other rule and gated on
        # a default-empty site list, so pre-existing chaos seeds keep
        # their exact plans.
        for seed in (3, 11, 19, 23, 31, 42):
            before = sample_plan(seed)
            after = sample_plan(seed, adaptive_sites=())
            assert [repr(r) for r in before.rules] == [repr(r) for r in after.rules]

    def test_adaptive_rule_only_appends(self):
        for seed in range(30):
            base = sample_plan(seed)
            with_adaptive = sample_plan(seed, adaptive_sites=CHAOS_ADAPTIVE_SITES)
            base_reprs = [repr(r) for r in base.rules]
            adaptive_reprs = [repr(r) for r in with_adaptive.rules]
            assert adaptive_reprs[: len(base_reprs)] == base_reprs
            extra = adaptive_reprs[len(base_reprs):]
            assert len(extra) <= 1
            for r in extra:
                assert any(site in r for site in CHAOS_ADAPTIVE_SITES)

    def test_some_seed_draws_an_adaptive_rule(self):
        drawn = sum(
            len(sample_plan(seed, adaptive_sites=CHAOS_ADAPTIVE_SITES).rules)
            - len(sample_plan(seed).rules)
            for seed in range(30)
        )
        assert drawn > 5  # ~half the seeds should draw a rule


def _adaptive_bench(seed):
    kernel = Kernel(Topology(sockets=2, cores_per_socket=4), seed=seed)
    bench = MalthusianBench()
    bench.setup(kernel)
    return kernel, bench


def _adaptive_loop(daemon):
    return AdaptationLoop(
        daemon=daemon,
        selector="bench.*",
        window_ns=400_000,
        baseline_ns=80_000,
        canary_ns=120_000,
        check_every_ns=20_000,
    )


def _spawn_malthus(kernel, bench, start, count):
    order = kernel.topology.fill_order()
    for index in range(start, start + count):
        kernel.spawn(
            lambda task, i=index: bench.worker(task, i),
            cpu=order[index],
            name=f"malthus-{index}",
        )


def assert_no_unjudged_cull(kernel, journal, daemon):
    """The adaptation loop's headline invariant: whatever fired, the
    journal never ends on an open ``cull-proposed``, and a culled impl
    is installed only under a *kept*, ACTIVE policy."""
    lock_of, open_proposals, kept = {}, {}, {}
    for entry in journal.entries():
        if entry.get("kind") != "adaptation":
            continue
        event, policy = entry.get("event"), entry.get("policy")
        if event == "cull-proposed":
            lock_of[policy] = entry.get("lock")
            open_proposals[policy] = entry
        elif event in ("cull-kept", "cull-rolled-back"):
            open_proposals.pop(policy, None)
            if event == "cull-kept":
                kept[lock_of.get(policy)] = policy
    assert not open_proposals, f"unjudged culls: {sorted(open_proposals)}"
    site = kernel.locks.get("bench.malthus")
    if isinstance(site.core.impl, CullingLock):
        policy = kept.get("bench.malthus")
        assert policy is not None, "culled impl installed without a kept cull"
        record = daemon.records.get(policy)
        assert record is not None and record.state is PolicyState.ACTIVE


def test_chaos_adaptive_loop_never_leaves_unjudged_cull(chaos_seed):
    """Run the adaptation loop over a genuine collapse with a sampled
    adversary (general chaos plus the ``adaptive.*`` sites).  Whatever
    fires — a skipped detect, an aborted proposal, a crashed canary —
    after the dust settles and recovery runs, no proposed-but-unjudged
    cull is installed."""
    kernel, bench = _adaptive_bench(chaos_seed)
    concord = Concord(kernel)
    journal = PolicyJournal()
    daemon = Concordd(concord, journal=journal)
    loop = _adaptive_loop(daemon)
    _spawn_malthus(kernel, bench, 0, 4)
    kernel.run(until=kernel.now + 100_000)
    assert loop.run_once().outcome == "idle"  # healthy reference, chaos-free
    _spawn_malthus(kernel, bench, 4, 4)
    kernel.run(until=kernel.now + 100_000)

    plan = sample_plan(chaos_seed, adaptive_sites=CHAOS_ADAPTIVE_SITES)
    died = False
    with injected(plan):
        try:
            loop.run(passes=4)
        except InjectedCrash:
            died = True
        except Exception:
            died = True  # an escaped error kills adaptd just the same

    if died:
        # Restart over the same journal, chaos cleared: the daemon's
        # recovery tears down any crashed canary, then the loop's
        # recovery resolves whatever proposal the crash left open.
        registry = {
            f"culling-cap{cap}": culling_impl_factory(cap) for cap in range(1, 9)
        }
        daemon = Concordd(concord, journal=journal, impl_registry=registry)
        daemon.recover()
        loop = _adaptive_loop(daemon)
        loop.recover()
        loop.run(passes=2)  # the operator's second try

    assert_no_unjudged_cull(kernel, journal, daemon)
