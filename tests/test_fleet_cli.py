"""The ``concordd fleet`` scenario and the ``--kernels`` flag.

Two contracts live here: the fleet acceptance run (three kernels, two
waves, halt-and-revert, mid-wave crash recovery) exits 0, and adding
``--kernels`` to the existing ``rollout``/``drill`` scenarios leaves
the single-kernel output byte-identical — N=1 stays the default and
prints exactly what it printed before the flag existed.
"""

import pytest

from repro.tools import concordd

ROLLOUT_ARGS = [
    "rollout",
    "--locks",
    "2",
    "--tasks-per-lock",
    "4",
    "--duration-ms",
    "2",
]


def test_fleet_scenario_passes(capsys, tmp_path):
    code = concordd.main(
        [
            "fleet",
            "--duration-ms",
            "4",
            "--journal-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "fleet of 3 kernels" in out
    # Two waves, quiet kernel canaries first.
    assert "wave 0 (canary): k0" in out
    assert "wave 1 (cohort): k1, k2" in out
    # Phase 1: the cross-kernel breach halts and reverts.
    assert "FAIL" in out and "HALTED" in out
    assert "[ok] every patched kernel reverted to stock" in out
    # Phase 2: fleet-wide ACTIVE.
    assert "[ok] numa-good ACTIVE on every kernel" in out
    # Phase 3: crash between waves, journal-driven resume.
    assert "[ok] recovery resumed from wave 1 (completed wave trusted)" in out
    assert "[ok] steady ACTIVE on every kernel — no split fleet" in out
    assert "[FAIL]" not in out
    assert "fleet scenario passed" in out
    # The journals the recovery read are real files on disk.
    assert (tmp_path / "fleet.jsonl").exists()
    assert (tmp_path / "journal.k0.jsonl").exists()


def test_fleet_requires_three_kernels(capsys):
    assert concordd.main(["fleet", "--kernels", "2"]) == 2
    assert "needs --kernels >= 3" in capsys.readouterr().err


def test_fleet_degraded_scenario_passes(capsys, tmp_path):
    code = concordd.main(
        [
            "fleet-degraded",
            "--duration-ms",
            "8",
            "--journal-dir",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "fleet of 4 kernels" in out
    # Phase 1: liveness probes.
    assert "[ok] all 4 members probe HEALTHY" in out
    assert "[ok] every member heartbeat reached its own journal shard" in out
    # Phase 2: any-breach halts, the victim is quarantined with debt.
    assert "[ok] any-breach verdict HALTED the rollout" in out
    assert "[ok] member-dead, quarantine, and revert-debt all journaled" in out
    assert "[ok] every reachable kernel converged to stock" in out
    # Phase 3: reinstate + recover drains the journaled debt.
    assert "[ok] revert debt drained after reinstatement" in out
    assert "reinstated at a higher epoch" in out
    # Phase 4: quorum completes degraded, then the fleet heals.
    assert "[ok] quorum (0.5) completed the rollout degraded" in out
    assert "[ok] healed fleet: fresh rollout ACTIVE on every kernel" in out
    assert "[FAIL]" not in out
    assert "fleet-degraded scenario passed" in out
    assert (tmp_path / "fleet.jsonl").exists()


def test_fleet_degraded_requires_four_kernels(capsys):
    assert concordd.main(["fleet-degraded", "--kernels", "3"]) == 2
    assert "needs --kernels >= 4" in capsys.readouterr().err


def test_rollout_single_kernel_output_is_unchanged(capsys):
    # ``--kernels 1`` (and the flag's default) must be byte-identical
    # to the pre-flag scenario: no per-kernel headers, same verdicts.
    code = concordd.main(ROLLOUT_ARGS)
    baseline = capsys.readouterr().out
    assert code == 0, baseline

    code = concordd.main(ROLLOUT_ARGS + ["--kernels", "1"])
    flagged = capsys.readouterr().out
    assert code == 0, flagged
    assert flagged == baseline
    assert "=== kernel" not in baseline


def test_rollout_many_kernels_runs_each_seed(capsys):
    code = concordd.main(ROLLOUT_ARGS + ["--kernels", "2", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "=== kernel k0 (seed 7) ===" in out
    assert "=== kernel k1 (seed 8) ===" in out
    assert out.count("bad policy  : ROLLED_BACK") == 2
    assert out.count("good policy : ACTIVE") == 2


def test_drill_many_kernels_gets_separate_journals(capsys, tmp_path):
    journal = str(tmp_path / "journal.jsonl")
    code = concordd.main(
        [
            "drill",
            "--duration-ms",
            "2",
            "--journal",
            journal,
            "--kernels",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "=== kernel k0" in out and "=== kernel k1" in out
    assert out.count("drill passed") == 2
    # Each kernel drills against its own journal file.
    assert (tmp_path / "journal.jsonl.k0").exists()
    assert (tmp_path / "journal.jsonl.k1").exists()
