"""Unit coverage of the simulated network layer.

Three subjects, in the order they stack: the :class:`Fabric` (links,
partitions, chaos fault sites, time), the seeded
:class:`PartitionSchedule` (replayable split-brain scripts), and the
:class:`RpcEnvelope` (deadline-aware retries with classified
exhaustion).  The contract under test everywhere is determinism: the
same seed must reproduce the same deliveries, the same schedule, the
same backoff sequence — chaos that cannot replay cannot be debugged.
"""

from random import Random

import pytest

from repro.faults import (
    SITE_NET_LINK_DELIVER,
    SITE_NET_PARTITION_FLIP,
    FaultPlan,
    injected,
)
from repro.netsim import (
    Fabric,
    LinkDown,
    LinkModel,
    MessageDropped,
    NetError,
    PartitionEvent,
    PartitionSchedule,
    RpcEnvelope,
    RpcExhausted,
    sample_partition_schedule,
)


# ----------------------------------------------------------------------
# Fabric: links and partitions
# ----------------------------------------------------------------------
def test_fresh_fabric_is_identity_network():
    """The load-bearing default: zero latency, no RNG draws — attaching
    a flat fabric to an existing scenario perturbs nothing."""
    fabric = Fabric(seed=7)
    assert fabric.deliver("a", "b") == 0
    assert fabric.deliver("b", "a", op="probe") == 0
    assert fabric.delivered == 2
    assert fabric.rejected == fabric.dropped == 0
    # The RNG was never touched: its next draw matches a virgin Random.
    assert fabric._rng.random() == Random(7).random()


def test_no_self_link():
    with pytest.raises(NetError):
        Fabric().link("a", "a")


def test_cut_is_directed():
    fabric = Fabric()
    fabric.cut("a", "b")
    with pytest.raises(LinkDown):
        fabric.deliver("a", "b")
    assert fabric.deliver("b", "a") == 0  # reverse direction untouched
    assert fabric.rejected == 1
    fabric.restore("a", "b")
    assert fabric.deliver("a", "b") == 0


def test_symmetric_cut_and_restore():
    fabric = Fabric()
    fabric.cut("a", "b", symmetric=True)
    for src, dst in (("a", "b"), ("b", "a")):
        with pytest.raises(LinkDown):
            fabric.deliver(src, dst)
    fabric.restore("a", "b", symmetric=True)
    assert fabric.deliver("a", "b") == 0
    assert fabric.deliver("b", "a") == 0


def test_partition_splits_groups_symmetrically():
    fabric = Fabric()
    fabric.partition([("a", "b"), ("c",)])
    # Across the split: dark both ways.
    for src, dst in (("a", "c"), ("c", "a"), ("b", "c"), ("c", "b")):
        with pytest.raises(LinkDown):
            fabric.deliver(src, dst)
    # Within a group: up.
    assert fabric.deliver("a", "b") == 0
    # An endpoint in no group keeps full connectivity.
    assert fabric.deliver("d", "a") == 0
    assert fabric.deliver("c", "d") == 0


def test_partition_needs_two_groups():
    with pytest.raises(NetError):
        Fabric().partition([("a", "b")])


def test_asymmetric_partition_first_group_hears_everyone():
    """groups[0] hears the others; nothing it sends crosses out — the
    half-open failure a deposed leader lives in."""
    fabric = Fabric()
    fabric.partition([("a",), ("b", "c")], asymmetric=True)
    assert fabric.deliver("b", "a") == 0
    assert fabric.deliver("c", "a") == 0
    for dst in ("b", "c"):
        with pytest.raises(LinkDown):
            fabric.deliver("a", dst)


def test_heal_restores_every_link():
    fabric = Fabric()
    fabric.partition([("a",), ("b",)])
    fabric.cut("c", "d")
    fabric.heal()
    for src, dst in (("a", "b"), ("b", "a"), ("c", "d")):
        assert fabric.deliver(src, dst) == 0
        assert fabric.reachable(src, dst)


def test_set_model_scoping():
    fabric = Fabric()
    fabric.link("a", "b")
    fabric.set_model(LinkModel(latency_ns=100))  # all links + default
    assert fabric.deliver("a", "b") == 100
    assert fabric.deliver("x", "y") == 100  # lazily created: default
    fabric.set_model(LinkModel(latency_ns=999), src="a", dst="b")
    assert fabric.deliver("a", "b") == 999
    assert fabric.deliver("x", "y") == 100  # untouched


# ----------------------------------------------------------------------
# Fabric: stochastic models are seeded
# ----------------------------------------------------------------------
def test_jitter_is_deterministic_per_seed():
    def draws(seed):
        fabric = Fabric(seed=seed)
        fabric.set_model(LinkModel(latency_ns=500, jitter_ns=400))
        return [fabric.deliver("a", "b") for _ in range(12)]

    assert draws(5) == draws(5)
    assert draws(5) != draws(6)
    assert all(500 <= d <= 900 for d in draws(5))


def test_drop_model_loses_the_message():
    fabric = Fabric()
    fabric.set_model(LinkModel(drop=1.0))
    with pytest.raises(MessageDropped):
        fabric.deliver("a", "b")
    assert fabric.dropped == 1 and fabric.delivered == 0


def test_duplicate_and_reorder_are_counted():
    fabric = Fabric()
    fabric.set_model(LinkModel(latency_ns=50, duplicate=1.0, reorder=1.0, reorder_ns=75))
    # Reorder shows up as extra latency; duplicate only as a counter —
    # the RPC layers above are idempotent, so a dup costs nothing.
    assert fabric.deliver("a", "b") == 125
    assert fabric.duplicated == 1 and fabric.reordered == 1
    # reorder_ns unset falls back to one more latency.
    fabric.set_model(LinkModel(latency_ns=50, reorder=1.0))
    assert fabric.deliver("a", "b") == 100


# ----------------------------------------------------------------------
# Fabric: time, timed partitions, chaos sites
# ----------------------------------------------------------------------
def test_advance_is_monotonic():
    fabric = Fabric()
    fabric.advance(100)
    fabric.advance(40)  # a lagging member's stale clock never rewinds
    assert fabric.clock_ns == 100


def test_partition_flip_stall_is_a_timed_self_healing_partition():
    fabric = Fabric()
    plan = FaultPlan(seed=1, name="flip")
    plan.stall(SITE_NET_PARTITION_FLIP, delay_ns=5_000, times=1)
    with injected(plan):
        fabric.advance(1_000)
        with pytest.raises(LinkDown):
            fabric.deliver("a", "b", now_ns=1_000)
    assert fabric.flips == 1
    # Still dark while the clock is inside the outage window...
    with pytest.raises(LinkDown):
        fabric.deliver("a", "b", now_ns=3_000)
    assert not fabric.reachable("a", "b")
    # ...and self-healed once simulated time passes it: the adversary
    # cannot strand the fleet forever.
    assert fabric.deliver("a", "b", now_ns=6_001) == 0
    assert fabric.reachable("a", "b")


def test_partition_flip_fail_rejects_one_message():
    fabric = Fabric()
    plan = FaultPlan(seed=1, name="flip-once")
    plan.fail(SITE_NET_PARTITION_FLIP, times=1)
    with injected(plan):
        with pytest.raises(LinkDown):
            fabric.deliver("a", "b")
    assert fabric.flips == 0  # a fail-rule is not a timed partition
    assert fabric.deliver("a", "b") == 0


def test_link_deliver_fault_matches_src_dst_op():
    fabric = Fabric()
    plan = FaultPlan(seed=1, name="drop-probe")
    plan.fail(SITE_NET_LINK_DELIVER, times=None, match={"dst": "b", "op": "probe"})
    with injected(plan):
        with pytest.raises(MessageDropped):
            fabric.deliver("a", "b", op="probe")
        assert fabric.deliver("a", "b", op="rollout") == 0  # op mismatch
        assert fabric.deliver("a", "c", op="probe") == 0  # dst mismatch


def test_link_deliver_stall_adds_latency():
    fabric = Fabric()
    plan = FaultPlan(seed=1, name="lag")
    plan.stall(SITE_NET_LINK_DELIVER, delay_ns=700, times=1)
    with injected(plan):
        assert fabric.deliver("a", "b") == 700
        assert fabric.deliver("a", "b") == 0


# ----------------------------------------------------------------------
# PartitionSchedule
# ----------------------------------------------------------------------
def test_schedule_applies_as_time_passes():
    schedule = PartitionSchedule(
        [
            PartitionEvent(at_ns=1_000, action="partition", groups=(("a",), ("b",))),
            PartitionEvent(at_ns=5_000, action="heal"),
        ],
        name="one-split",
    )
    fabric = Fabric(schedule=schedule)
    fabric.advance(999)
    assert fabric.applied == [] and fabric.deliver("a", "b") == 0
    fabric.advance(1_000)
    assert [e.action for e in fabric.applied] == ["partition"]
    with pytest.raises(LinkDown):
        fabric.deliver("a", "b")
    fabric.advance(5_000)
    assert [e.action for e in fabric.applied] == ["partition", "heal"]
    assert fabric.deliver("a", "b") == 0


def test_schedule_events_are_sorted_and_validated():
    schedule = PartitionSchedule(
        [
            PartitionEvent(at_ns=500, action="heal"),
            PartitionEvent(at_ns=100, action="partition", groups=(("a",), ("b",))),
        ]
    )
    assert [e.at_ns for e in schedule.events] == [100, 500]
    assert schedule.ends_healed
    with pytest.raises(NetError):
        PartitionSchedule([PartitionEvent(at_ns=0, action="flood")])
    with pytest.raises(NetError):
        PartitionSchedule([PartitionEvent(at_ns=0, action="partition", groups=(("a",),))])


def test_schedule_serialize_round_trips_exactly():
    schedule = sample_partition_schedule(31, ["k0", "k1", "k2", "k0/site0"], 1_000_000)
    clone = PartitionSchedule.deserialize(schedule.serialize())
    assert clone.name == schedule.name
    assert clone.events == schedule.events
    assert clone.serialize() == schedule.serialize()


@pytest.mark.parametrize("seed", [0, 3, 11, 19, 23, 42])
def test_sampled_schedules_are_deterministic_and_survivable(seed):
    endpoints = ["k0", "k1", "k2", "k3", "fleet"]
    one = sample_partition_schedule(seed, endpoints, 2_000_000)
    two = sample_partition_schedule(seed, endpoints, 2_000_000)
    assert one.serialize() == two.serialize()
    # Survivable by construction: every split is a strict minority and
    # the script always ends healed — convergence is reachable for
    # every seed a chaos job may pass.
    assert one.ends_healed
    for event in one.events:
        if event.action == "partition":
            assert len(event.groups[0]) <= (len(endpoints) - 1) // 2


# ----------------------------------------------------------------------
# RpcEnvelope
# ----------------------------------------------------------------------
class SimClock:
    """A tiny simulated clock: ``wait`` advances it, ``fn`` can too."""

    def __init__(self):
        self.now = 0
        self.pauses = []

    def clock(self):
        return self.now

    def wait(self, ns):
        self.pauses.append(ns)
        self.now += ns


def test_call_returns_on_first_success():
    sim = SimClock()
    env = RpcEnvelope(retries=3, jitter_ns=0)
    result = env.call(lambda attempt: attempt, clock=sim.clock, wait=sim.wait)
    assert result == 1 and sim.pauses == []


def test_call_retries_then_succeeds():
    sim = SimClock()
    env = RpcEnvelope(retries=3, backoff_ns=100, jitter_ns=0)

    def flaky(attempt):
        if attempt < 3:
            raise ValueError("transient")
        return "ok"

    assert env.call(flaky, clock=sim.clock, wait=sim.wait) == "ok"
    assert sim.pauses == [100, 200]  # exponential, jitter disabled


def test_exhausted_by_attempts_is_unreachable():
    sim = SimClock()
    env = RpcEnvelope(retries=2, backoff_ns=10, jitter_ns=0)

    def dead(attempt):
        raise ValueError("down")

    with pytest.raises(RpcExhausted) as info:
        env.call(dead, clock=sim.clock, wait=sim.wait, op="bake")
    exc = info.value
    assert exc.classification == "unreachable"
    assert exc.op == "bake" and exc.attempts == 3
    assert isinstance(exc.cause, ValueError)


def test_deadline_exceeded_is_classified_distinctly():
    """Time, not attempts, is the budget: a caller with retries to
    spare still gives up when simulated time blows the deadline — and
    the journal can tell the two apart."""
    sim = SimClock()
    env = RpcEnvelope(retries=50, backoff_ns=1_000, jitter_ns=0, deadline_ns=3_500)

    def dead(attempt):
        raise ValueError("slow")

    with pytest.raises(RpcExhausted) as info:
        env.call(dead, clock=sim.clock, wait=sim.wait)
    assert info.value.classification == "deadline-exceeded"
    assert info.value.attempts < 51  # gave up long before attempts ran out
    assert sim.now >= 3_500


def test_backoff_is_clipped_to_the_deadline():
    sim = SimClock()
    env = RpcEnvelope(retries=10, backoff_ns=10_000, jitter_ns=0, deadline_ns=4_000)

    def dead(attempt):
        raise ValueError("down")

    with pytest.raises(RpcExhausted):
        env.call(dead, clock=sim.clock, wait=sim.wait)
    # The first pause would be 10000ns; the deadline clips it so the
    # envelope never sleeps past its own budget.
    assert sim.pauses and max(sim.pauses) <= 4_000


def test_fail_fast_propagates_unwrapped():
    class Fenced(Exception):
        pass

    calls = []

    def fenced(attempt):
        calls.append(attempt)
        raise Fenced("epoch moved")

    env = RpcEnvelope(retries=5, jitter_ns=0)
    sim = SimClock()
    with pytest.raises(Fenced):
        env.call(fenced, clock=sim.clock, wait=sim.wait, fail_fast=(Fenced,))
    assert calls == [1]  # retrying cannot un-move an epoch


def test_corrupt_gives_up_immediately():
    class Rot(Exception):
        pass

    def rotten(attempt):
        raise Rot("bad checksum")

    env = RpcEnvelope(retries=5, jitter_ns=0)
    sim = SimClock()
    with pytest.raises(RpcExhausted) as info:
        env.call(rotten, clock=sim.clock, wait=sim.wait, corrupt_on=(Rot,))
    assert info.value.classification == "corrupt"
    assert info.value.attempts == 1


def test_give_up_short_circuits_as_unreachable():
    def dead(attempt):
        raise ValueError("down")

    env = RpcEnvelope(retries=5, jitter_ns=0)
    sim = SimClock()
    with pytest.raises(RpcExhausted) as info:
        env.call(
            dead, clock=sim.clock, wait=sim.wait, give_up=lambda exc: True
        )
    assert info.value.classification == "unreachable"
    assert info.value.attempts == 1 and sim.pauses == []


def test_backoff_jitter_is_seeded_and_deterministic():
    a = RpcEnvelope(retries=4, backoff_ns=1_000, seed=9)
    b = RpcEnvelope(retries=4, backoff_ns=1_000, seed=9)
    c = RpcEnvelope(retries=4, backoff_ns=1_000, seed=10)
    seq_a = [a.backoff(n) for n in range(1, 5)]
    seq_b = [b.backoff(n) for n in range(1, 5)]
    seq_c = [c.backoff(n) for n in range(1, 5)]
    assert seq_a == seq_b  # same seed: replayable
    assert seq_a != seq_c  # different seed: desynchronized
    # jitter_ns defaults to backoff_ns // 4.
    assert a.jitter_ns == 250
    for n, wait in enumerate(seq_a, start=1):
        base = 1_000 * 2 ** (n - 1)
        assert base <= wait <= base + 250


def test_zero_jitter_never_touches_the_rng():
    env = RpcEnvelope(retries=2, backoff_ns=500, jitter_ns=0, seed=3)
    assert [env.backoff(n) for n in (1, 2, 3)] == [500, 1_000, 2_000]
    assert env._rng.random() == Random(3).random()


def test_timed_out_respects_configuration():
    assert not RpcEnvelope().timed_out(10**9)  # no timeout configured
    env = RpcEnvelope(timeout_ns=5_000)
    assert not env.timed_out(5_000)
    assert env.timed_out(5_001)
