"""§3.1.2 realtime scheduling: phase-fair reader latency bounds.

"Lock developers can design an algorithm based on the phase-fair
property ... eliminates jitters and guarantees an upper bound on tail
latency for latency-critical applications."

We run latency-critical readers against a writer herd on (a) the neutral
rw lock and (b) the phase-fair lock installed at run time through
Concord's lock switching, and compare reader tail latency.
"""

import pytest

from repro.concord import Concord
from repro.kernel import Kernel
from repro.locks import NeutralRWLock, PhaseFairRWLock
from repro.sim import Topology, ops

from .conftest import DURATION_NS

_WRITERS = 10
_READERS = 4


def _run(phase_fair, seed=51):
    topo = Topology(sockets=2, cores_per_socket=8)
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_rwlock("rt.lock", NeutralRWLock(kernel.engine, name="neutral"))
    if phase_fair:
        concord = Concord(kernel)
        concord.switch_lock(
            "rt.lock", lambda old: PhaseFairRWLock(kernel.engine, name="pf")
        )
    rng = kernel.engine.rng
    reader_latencies = []

    def writer(task):
        while True:
            yield from site.write_acquire(task)
            yield ops.Delay(rng.randint(500, 3_000))
            yield from site.write_release(task)
            # Writers pause between bursts, keeping aggregate writer
            # demand just under capacity; without these gaps the neutral
            # lock starves readers *completely* (zero samples in the
            # whole window) — the pathology phase-fairness bounds.
            yield ops.Delay(rng.randint(8_000, 30_000))

    def reader(task):
        while True:
            start = task.engine.now
            yield from site.read_acquire(task)
            reader_latencies.append(task.engine.now - start)
            yield ops.Delay(200)
            yield from site.read_release(task)
            yield ops.Delay(rng.randint(500, 1_500))

    cpu = 0
    for _ in range(_WRITERS):
        kernel.spawn(writer, cpu=cpu, at=rng.randint(0, 5_000))
        cpu += 1
    for _ in range(_READERS):
        kernel.spawn(reader, cpu=cpu, at=rng.randint(0, 5_000))
        cpu += 1
    kernel.run(until=2 * DURATION_NS)
    reader_latencies.sort()
    n = len(reader_latencies)
    return {
        "samples": n,
        "p50": reader_latencies[n // 2],
        "p99": reader_latencies[min(n - 1, int(n * 0.99))],
        "max": reader_latencies[-1],
    }


@pytest.fixture(scope="module")
def phase_fair():
    return {"neutral": _run(False), "phase-fair": _run(True)}


def test_usecase_phase_fair(benchmark, phase_fair, save_table):
    data = benchmark.pedantic(lambda: phase_fair, rounds=1, iterations=1)
    lines = [
        f"Use case: phase-fair switch for RT readers ({_READERS} readers vs {_WRITERS} writers)",
        f"  {'':12}{'p50':>10}{'p99':>10}{'max':>10}  (reader acquire latency, ns)",
    ]
    for label in ("neutral", "phase-fair"):
        row = data[label]
        lines.append(
            f"  {label:<12}{row['p50']:>10}{row['p99']:>10}{row['max']:>10}"
        )
    save_table("usecase_phase_fair", "\n".join(lines))
    benchmark.extra_info["neutral p99"] = data["neutral"]["p99"]
    benchmark.extra_info["phase-fair p99"] = data["phase-fair"]["p99"]

    # Phase fairness bounds the reader tail well below the neutral lock's
    # (which can stack a whole writer convoy in front of a reader).
    assert data["phase-fair"]["p99"] < 0.7 * data["neutral"]["p99"]
