"""§3.1.2 scheduler subversion / scheduler-cooperative locking.

The premise: under FIFO, tasks with long critical sections take the
same number of turns as everyone else, so they dominate lock *time*
(Patel et al.'s scheduler subversion).  The paper suggests encoding
usage-based reordering via cmp_node.

Finding recorded here (and in EXPERIMENTS.md): the safe Table 1 surface
— decision hooks that only *reorder* waiters — cannot reduce a hog's
turn *frequency* in a closed loop, so the hold-time share barely moves;
full SCL needs banning, which these APIs deliberately do not expose
(they are designed so a bad policy cannot break liveness).  What the
policy does deliver is correct usage metering and reordering decisions,
at a bounded overhead, which is what we assert.
"""

import pytest

from repro.workloads import MixedCSBench, run_throughput

from .conftest import DURATION_NS


@pytest.fixture(scope="module")
def scl(topo):
    out = {}
    for mode in ("fifo", "scl"):
        workload = MixedCSBench(mode, hog_every=4)
        out[mode] = run_throughput(workload, topo, threads=16, duration_ns=DURATION_NS)
    return out


def test_usecase_scl(benchmark, scl, save_table):
    data = benchmark.pedantic(lambda: scl, rounds=1, iterations=1)
    fifo, scl_run = data["fifo"], data["scl"]
    lines = [
        "Use case: scheduler subversion (4 hogs x 6000ns CS vs 12 mice x 300ns CS)",
        f"  {'':8}{'hog hold share':>16}{'ops/msec':>12}",
        f"  {'FIFO':<8}{fifo.extras['hog_hold_share']:>15.1%}{fifo.ops_per_msec:>12.0f}",
        f"  {'SCL':<8}{scl_run.extras['hog_hold_share']:>15.1%}{scl_run.ops_per_msec:>12.0f}",
        "",
        "Finding: reorder-only decision hooks cannot reduce hog turn",
        "frequency in a closed loop (see EXPERIMENTS.md, §3.1.2-scl) —",
        "the subversion premise holds in both configurations.",
    ]
    save_table("usecase_scl", "\n".join(lines))
    benchmark.extra_info["fifo hog share"] = round(fifo.extras["hog_hold_share"], 3)
    benchmark.extra_info["scl hog share"] = round(scl_run.extras["hog_hold_share"], 3)

    # The subversion premise: hogs dominate lock time under FIFO.
    assert fifo.extras["hog_hold_share"] > 0.6
    # SCL-via-reordering does not make it worse...
    assert scl_run.extras["hog_hold_share"] < fifo.extras["hog_hold_share"] + 0.05
    # ...and its metering/hook overhead stays bounded.
    assert scl_run.ops_per_msec > 0.6 * fifo.ops_per_msec
