"""§3.1.1 lock priority boosting: prioritize an annotated syscall path.

Userspace marks two latency-critical tasks (in the policy's TID map);
the shuffler moves their waiters forward.  We compare the boosted tasks'
acquisition latency and throughput against the herd, with and without
the policy.
"""

import statistics

import pytest

from repro.concord import Concord
from repro.concord.policies import make_priority_policy
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import ops

from .conftest import DURATION_NS

_THREADS = 24
_CRITICAL = 2


def _run(topo, boosted, seed=21):
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_lock("uc.lock", ShflLock(kernel.engine, name="impl"))
    boost_map = None
    if boosted:
        concord = Concord(kernel)
        spec, boost_map = make_priority_policy(lock_selector="uc.lock")
        concord.load_policy(spec)
    rng = kernel.engine.rng
    waits = {"critical": [], "normal": []}

    def worker(task, label):
        task.stats["ops"] = 0
        while True:
            start = task.engine.now
            yield from site.acquire(task)
            waits[label].append(task.engine.now - start)
            yield ops.Delay(200)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    order = topo.fill_order()
    for index in range(_THREADS):
        label = "critical" if index < _CRITICAL else "normal"
        task = kernel.spawn(
            lambda t, lb=label: worker(t, lb),
            cpu=order[index],
            name=f"{label}{index}",
            at=rng.randint(0, 10_000),
        )
        if boosted and label == "critical":
            boost_map[task.tid] = 1
    kernel.run(until=DURATION_NS)
    ops_by = {"critical": 0, "normal": 0}
    for task in kernel.engine.tasks:
        ops_by["critical" if task.name.startswith("critical") else "normal"] += (
            task.stats.get("ops", 0)
        )
    return {
        "critical_wait": statistics.mean(waits["critical"]),
        "normal_wait": statistics.mean(waits["normal"]),
        "critical_ops": ops_by["critical"] / _CRITICAL,
        "normal_ops": ops_by["normal"] / (_THREADS - _CRITICAL),
    }


@pytest.fixture(scope="module")
def boost(topo):
    return {"fifo": _run(topo, False), "boosted": _run(topo, True)}


def test_usecase_priority_boost(benchmark, boost, save_table):
    data = benchmark.pedantic(lambda: boost, rounds=1, iterations=1)
    fifo, boosted = data["fifo"], data["boosted"]
    lines = [
        f"Use case: priority boosting ({_CRITICAL} critical / {_THREADS - _CRITICAL} normal)",
        f"  {'':14}{'crit wait':>12}{'norm wait':>12}{'crit ops':>10}{'norm ops':>10}",
        f"  {'FIFO':<14}{fifo['critical_wait']:>11.0f}ns{fifo['normal_wait']:>11.0f}ns"
        f"{fifo['critical_ops']:>10.0f}{fifo['normal_ops']:>10.0f}",
        f"  {'boost policy':<14}{boosted['critical_wait']:>11.0f}ns{boosted['normal_wait']:>11.0f}ns"
        f"{boosted['critical_ops']:>10.0f}{boosted['normal_ops']:>10.0f}",
    ]
    save_table("usecase_priority_boost", "\n".join(lines))
    benchmark.extra_info["crit wait speedup"] = round(
        fifo["critical_wait"] / boosted["critical_wait"], 2
    )

    # Boosted tasks wait meaningfully less and complete more operations.
    assert boosted["critical_wait"] < 0.85 * fifo["critical_wait"]
    assert boosted["critical_ops"] > 1.2 * fifo["critical_ops"]
    # The herd keeps making progress (bounded starvation).
    assert boosted["normal_ops"] > 0.3 * fifo["normal_ops"]
