"""Table 1: the seven Concord APIs and their hazards, measured.

The paper's table is qualitative (API -> hazard).  This bench puts a
number behind each row: throughput of a contended lock with exactly one
minimal program attached to that hook, normalized to the unpatched
baseline.  Decision hooks run off the critical path (small cost);
profiling hooks run inside acquire/release (the "increase critical
section" hazard).
"""

import pytest

from repro.concord import Concord, HOOK_HAZARDS, PolicySpec
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.locks.base import (
    ALL_HOOKS,
    DECISION_HOOKS,
    HOOK_SCHEDULE_WAITER,
)
from repro.sim import ops

from .conftest import DURATION_NS

_THREADS = 16

#: A minimal program per hook: the cheapest legal attachment.
_NULL_SOURCES = {
    hook: "def p(ctx):\n    return 0\n" for hook in ALL_HOOKS
}
# schedule_waiter's result is a spin budget; 0 would mean "park at once",
# so return the lock's current budget instead.
_NULL_SOURCES[HOOK_SCHEDULE_WAITER] = "def p(ctx):\n    return ctx.spin_budget_ns\n"


def _throughput(topo, hook=None, blocking=False):
    kernel = Kernel(topo, seed=7)
    impl = ShflLock(
        kernel.engine, name="t1.impl", blocking=blocking, spin_budget_ns=3_000
    )
    site = kernel.add_lock("t1.lock", impl)
    if hook is not None:
        concord = Concord(kernel)
        concord.load_policy(
            PolicySpec(
                name=f"null.{hook}",
                hook=hook,
                source=_NULL_SOURCES[hook],
                lock_selector="t1.lock",
            )
        )
    rng = kernel.engine.rng

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(150)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    order = topo.fill_order()
    for index in range(_THREADS):
        kernel.spawn(worker, cpu=order[index], at=rng.randint(0, 20_000))
    kernel.run(until=DURATION_NS)
    return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)


@pytest.fixture(scope="module")
def table1(topo):
    rows = {}
    baseline_spin = _throughput(topo)
    baseline_block = _throughput(topo, blocking=True)
    for hook in ALL_HOOKS:
        blocking = hook == HOOK_SCHEDULE_WAITER  # consulted in blocking mode
        baseline = baseline_block if blocking else baseline_spin
        with_hook = _throughput(topo, hook=hook, blocking=blocking)
        rows[hook] = with_hook / baseline
    return rows


def test_table1_api_overhead(benchmark, table1, save_table):
    rows = benchmark.pedantic(lambda: table1, rounds=1, iterations=1)
    header = f"{'API':<18} {'hazard':<26} {'normalized tput':>16}"
    lines = ["Table 1: Concord APIs, measured with a null program attached",
             header, "-" * len(header)]
    for hook in ALL_HOOKS:
        lines.append(f"{hook:<18} {HOOK_HAZARDS[hook]:<26} {rows[hook]:>16.3f}")
    save_table("table1_api_overhead", "\n".join(lines))

    for hook, ratio in rows.items():
        benchmark.extra_info[hook] = round(ratio, 3)
        # No single null hook may cost more than ~half the throughput
        # (they are designed to be cheap); decision hooks sit near 1.0.
        assert ratio > 0.5, (hook, ratio)


def test_table1_fairness_hazard_demo(benchmark, topo, save_table):
    """The cmp_node fairness hazard is real: an adversarial policy that
    always promotes one task's waiters skews acquisition counts."""

    def run(with_bias):
        kernel = Kernel(topo, seed=9)
        site = kernel.add_lock("t1.lock", ShflLock(kernel.engine, name="impl"))
        if with_bias:
            concord = Concord(kernel)
            concord.load_policy(
                PolicySpec(
                    name="favor-tid-1",
                    hook="cmp_node",
                    source="def p(ctx):\n    return ctx.curr_tid == 1\n",
                    lock_selector="t1.lock",
                )
            )
        rng = kernel.engine.rng

        def worker(task):
            task.stats["ops"] = 0
            while True:
                yield from site.acquire(task)
                yield ops.Delay(150)
                yield from site.release(task)
                task.stats["ops"] += 1
                yield ops.Delay(rng.randint(0, 200))

        order = topo.fill_order()
        for index in range(12):
            kernel.spawn(worker, cpu=order[index], name=f"w{index}", at=rng.randint(0, 10_000))
        kernel.run(until=DURATION_NS)
        counts = {t.name: t.stats.get("ops", 0) for t in kernel.engine.tasks}
        others = [v for k, v in counts.items() if k != "w0"]
        return counts["w0"] / (sum(others) / len(others))

    def both():
        return run(False), run(True)

    fair, biased = benchmark.pedantic(both, rounds=1, iterations=1)
    save_table(
        "table1_fairness_hazard",
        "cmp_node fairness hazard: favored task's ops vs average\n"
        f"  FIFO policy      : {fair:.2f}x\n"
        f"  favor-one policy : {biased:.2f}x",
    )
    benchmark.extra_info["favored/avg"] = round(biased, 2)
    assert biased > fair * 1.2  # the favored task measurably benefits
