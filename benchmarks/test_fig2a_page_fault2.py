"""Figure 2(a): page_fault2 — Stock vs BRAVO vs Concord-BRAVO.

Paper's claim: Concord can install BRAVO over the stock rw-semaphore at
run time with "almost negligible overhead" relative to compiled-in
BRAVO, while both scale far beyond stock for this read-mostly workload.

Shape checks asserted here:

* Stock peaks around one socket's worth of threads and then declines;
* BRAVO keeps scaling (>= 3x stock at 80 threads);
* Concord-BRAVO tracks BRAVO within 15%.
"""

import pytest

from repro.workloads import PageFault2, ascii_chart, format_sweep_table, sweep

from .conftest import DURATION_NS, PAPER_THREADS


@pytest.fixture(scope="module")
def fig2a(topo):
    return {
        mode: sweep(
            lambda m=mode: PageFault2(m),
            topo,
            PAPER_THREADS,
            duration_ns=DURATION_NS,
        )
        for mode in ("stock", "bravo", "concord-bravo")
    }


def test_fig2a_page_fault2(benchmark, topo, fig2a, save_table):
    def exhibit():
        return fig2a

    data = benchmark.pedantic(exhibit, rounds=1, iterations=1)
    sweeps = [data["stock"], data["bravo"], data["concord-bravo"]]
    table = format_sweep_table(sweeps, "Figure 2(a) page_fault2 (ops/msec)")
    chart = ascii_chart(
        {mode: s.series() for mode, s in data.items()},
        title="Figure 2(a) shape",
    )
    save_table("fig2a_page_fault2", table + "\n\n" + chart)

    stock = data["stock"]
    bravo = data["bravo"]
    concord = data["concord-bravo"]
    for mode, s in data.items():
        benchmark.extra_info[f"{mode}@80 ops/msec"] = round(s.at(80).ops_per_msec, 1)

    # Shape 1: stock declines past its peak.
    stock_peak = max(p.ops_per_msec for p in stock.points)
    assert stock.at(80).ops_per_msec < stock_peak * 0.8
    # Shape 2: BRAVO wins big at scale.
    assert bravo.at(80).ops_per_msec > 3 * stock.at(80).ops_per_msec
    # Shape 3: dynamic installation is nearly free (the paper's headline).
    ratio = concord.at(80).ops_per_msec / bravo.at(80).ops_per_msec
    assert 0.85 < ratio < 1.15, f"Concord-BRAVO/BRAVO = {ratio:.3f}"


def test_fig2a_bravo_fastpath_dominates(benchmark, topo, fig2a):
    """Sanity on mechanism: at scale, reads go through the visible-readers
    table, not the underlying semaphore."""

    def extract():
        return fig2a["bravo"].at(80).extras

    extras = benchmark.pedantic(extract, rounds=1, iterations=1)
    assert extras["bravo_fastpath"] > 20 * max(extras["bravo_slowpath"], 1)
