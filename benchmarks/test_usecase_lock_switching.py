"""§3.1.1 lock switching: retarget a lock to the workload's phase.

Scenario (i) from the paper: "switch from a neutral readers-writer lock
design to a per-CPU ... readers-intensive design for a read-intensive
workload".  We run a read-heavy workload on the stock rw-semaphore, let
Concord switch the call site to the per-CPU distributed lock mid-run
(the workers never stop), and compare the two phases' throughput.

The reverse case is measured too: with 10% writers the per-CPU lock is
the *wrong* choice — which is exactly why run-time switching (rather
than a one-time build decision) is the feature.
"""

import pytest

from repro.concord import Concord
from repro.kernel import Kernel
from repro.locks import PerCPURWLock, RWSemaphore
from repro.sim import ops

from .conftest import DURATION_NS

_THREADS = 40


def _spawn_workers(kernel, site, read_ratio, counter):
    rng = kernel.engine.rng

    def worker(task):
        while True:
            if read_ratio >= 1.0 or rng.random() < read_ratio:
                yield from site.read_acquire(task)
                yield ops.Delay(400)
                yield from site.read_release(task)
            else:
                yield from site.write_acquire(task)
                yield ops.Delay(400)
                yield from site.write_release(task)
            counter["ops"] += 1
            yield ops.Delay(rng.randint(0, 200))

    order = kernel.topology.fill_order()
    for index in range(_THREADS):
        kernel.spawn(worker, cpu=order[index], at=kernel.now + rng.randint(0, 10_000))


def _standalone(topo, impl_factory, read_ratio, seed):
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_rwlock("uc.lock", impl_factory(kernel))
    counter = {"ops": 0}
    _spawn_workers(kernel, site, read_ratio, counter)
    kernel.run(until=200_000)
    baseline = counter["ops"]
    kernel.run(until=200_000 + DURATION_NS)
    return counter["ops"] - baseline


@pytest.fixture(scope="module")
def switching(topo):
    results = {}

    # One continuous run: readers on rwsem, then a live switch to per-CPU.
    kernel = Kernel(topo, seed=11)
    site = kernel.add_rwlock("uc.lock", RWSemaphore(kernel.engine, name="sem"))
    concord = Concord(kernel)
    counter = {"ops": 0}
    _spawn_workers(kernel, site, 1.0, counter)
    kernel.run(until=200_000)  # warmup
    before_phase_a = counter["ops"]
    kernel.run(until=200_000 + DURATION_NS)
    results["rwsem/readers"] = counter["ops"] - before_phase_a

    concord.switch_lock("uc.lock", lambda old: PerCPURWLock(kernel.engine, name="pcpu"))
    kernel.run(until=kernel.now + 100_000)  # drain + settle
    results["switch_latency_ns"] = concord.switch_latency("uc.lock")
    before_phase_b = counter["ops"]
    start = kernel.now
    kernel.run(until=start + DURATION_NS)
    results["percpu/readers"] = counter["ops"] - before_phase_b

    # Fresh kernels for the write-heavy counter-case (10% writers).
    results["percpu/mixed"] = _standalone(
        topo, lambda k: PerCPURWLock(k.engine, name="pcpu"), 0.9, seed=12
    )
    results["rwsem/mixed"] = _standalone(
        topo, lambda k: RWSemaphore(k.engine, name="sem"), 0.9, seed=12
    )
    return results


def test_usecase_lock_switching(benchmark, switching, save_table):
    data = benchmark.pedantic(lambda: switching, rounds=1, iterations=1)
    lines = [
        f"Use case: lock switching (read-only phase, {_THREADS} threads)",
        f"  rwsem   readers-only : {data['rwsem/readers']:>8} ops",
        f"  per-CPU readers-only : {data['percpu/readers']:>8} ops  (after live switch)",
        f"  switch latency       : {data['switch_latency_ns']} ns",
        "",
        "Counter-case: 10% writers make per-CPU the wrong choice",
        f"  rwsem   mixed        : {data['rwsem/mixed']:>8} ops",
        f"  per-CPU mixed        : {data['percpu/mixed']:>8} ops",
    ]
    save_table("usecase_lock_switching", "\n".join(lines))
    benchmark.extra_info.update(dict(data))

    assert data["switch_latency_ns"] is not None
    # Read-only phase: the distributed lock wins after the switch.
    assert data["percpu/readers"] > 1.3 * data["rwsem/readers"]
    # Write-heavy: the neutral lock wins — switching direction matters.
    assert data["rwsem/mixed"] > data["percpu/mixed"]
