"""Figure 2(c): global-lock hash table — Concord's worst-case overhead.

Paper's claim: "dynamically modifying lock algorithms can incur up to
20% overhead in the worst-case scenario when no userspace code is
executed" — i.e. short critical sections expose the patched call site's
trampoline/dispatch costs.

We reproduce the normalized-throughput series (Concord-ShflLock over
plain ShflLock) and additionally isolate the pure-machinery case
(patched site, no programs) that the quote describes.
"""

import pytest

from repro.workloads import HashTableBench, format_normalized, sweep

from .conftest import DURATION_NS, PAPER_THREADS


@pytest.fixture(scope="module")
def fig2c(topo):
    return {
        mode: sweep(
            lambda m=mode: HashTableBench(m),
            topo,
            PAPER_THREADS,
            duration_ns=DURATION_NS,
        )
        for mode in ("shfllock", "concord-shfllock", "concord-nopolicy")
    }


def test_fig2c_hashtable_normalized(benchmark, fig2c, save_table):
    data = benchmark.pedantic(lambda: fig2c, rounds=1, iterations=1)
    base = data["shfllock"]
    concord = data["concord-shfllock"]
    nopolicy = data["concord-nopolicy"]

    text = (
        format_normalized(base, concord, "Figure 2(c): Concord-ShflLock / ShflLock")
        + "\n\n"
        + format_normalized(
            base, nopolicy, "Worst case: patched site, no userspace code"
        )
    )
    save_table("fig2c_hashtable", text)

    ratios = [
        concord.at(n).ops_per_msec / base.at(n).ops_per_msec for n in PAPER_THREADS
    ]
    machinery = [
        nopolicy.at(n).ops_per_msec / base.at(n).ops_per_msec for n in PAPER_THREADS
    ]
    benchmark.extra_info["worst normalized"] = round(min(ratios), 3)
    benchmark.extra_info["worst machinery-only"] = round(min(machinery), 3)

    # The overhead exists...
    assert min(ratios) < 1.0
    # ...and stays in the paper's ballpark ("up to 20%", give or take
    # our calibration): never catastrophically worse.
    assert min(ratios) > 0.65, f"normalized series: {ratios}"
    assert min(machinery) > 0.7, f"machinery series: {machinery}"
