"""Trace replay throughput: how fast the simulator chews traffic.

Generates one sizable trace (a diurnal day with a burst riding the
peak), replays it into a sharded kernel, and records the *host*
replay rate — simulated events per wall-clock second — plus per-phase
replay tails.  The JSON artifact (``results/BENCH_traffic.json``) is
the perf trajectory later PRs measure against: the event-driven fleet
engine (ROADMAP) should move events/sec up, and regressions in the
engine's hot path show up here first.
"""

from __future__ import annotations

import json
import os
import time

from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology
from repro.traffic import (
    LockBinding,
    Phase,
    PhaseSchedule,
    PoissonProcess,
    Tenant,
    TenantSet,
    TraceGenerator,
    TraceRunner,
)

from .conftest import RESULTS_DIR, run_once

#: One simulated "day": a diurnal arc with a burst spliced onto the peak.
DAY_NS = 20_000_000
RATE_PER_MS = 120.0
SHARDS = 4
SEED = 7


def _schedule() -> PhaseSchedule:
    arc = PhaseSchedule.diurnal(DAY_NS, steps=6, trough_scale=0.3)
    phases = list(arc.phases)
    # Splice a 6x burst into the early peak (after step 2).
    phases.insert(3, Phase("burst", DAY_NS // 10, 6.0))
    return PhaseSchedule(phases)


def _build():
    schedule = _schedule()
    tenants = TenantSet(
        [
            Tenant("web", 6.0, [(f"shard{i}", 1.0) for i in range(SHARDS)]),
            Tenant("batch", 1.0, [("shard0", 1.0), ("shard1", 1.0)]),
        ]
    )
    trace = TraceGenerator(
        schedule, PoissonProcess(RATE_PER_MS), tenants, seed=SEED
    ).generate()
    bindings = {
        f"shard{i}": LockBinding(f"svc.shard{i}.lock", cs_ns=400)
        for i in range(SHARDS)
    }
    kernel = Kernel(Topology(sockets=2, cores_per_socket=8), seed=SEED)
    for i in range(SHARDS):
        kernel.add_lock(f"svc.shard{i}.lock", ShflLock(kernel.engine, name=f"s{i}"))
    return trace, TraceRunner(trace, bindings), kernel


def _replay():
    trace, runner, kernel = _build()
    start = time.perf_counter()
    runner.install(kernel, tag="bench")
    kernel.run(until=trace.total_ns + 5_000_000)
    wall_s = time.perf_counter() - start
    return trace, runner, kernel, wall_s


def test_traffic_replay(benchmark, save_table):
    trace, runner, kernel, wall_s = run_once(_replay)(benchmark)

    phases = {}
    for phase in trace.phase_names():
        stats = runner.phase_stats(phase)
        phases[phase] = {
            "arrivals": stats.arrivals,
            "completions": stats.completions,
            "wait_p50_ns": stats.wait_p50(),
            "wait_p99_ns": stats.wait_p99(),
        }
    payload = {
        "bench": "traffic_replay",
        "trace_events": len(trace),
        "trace_total_ns": trace.total_ns,
        "sim_events_processed": kernel.engine.events_processed,
        "replay_wall_s": round(wall_s, 4),
        "trace_events_per_sec": round(len(trace) / wall_s, 1),
        "sim_events_per_sec": round(kernel.engine.events_processed / wall_s, 1),
        "phases": phases,
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_traffic.json")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(
        {k: v for k, v in payload.items() if k != "phases"}
    )

    lines = [
        "traffic replay throughput",
        f"  trace: {len(trace)} events over {trace.total_ns / 1e6:.1f}ms "
        f"({len(trace.phase_names())} phases, {SHARDS} shards)",
        f"  replay: {wall_s:.3f}s wall, "
        f"{payload['trace_events_per_sec']:,.0f} trace events/sec, "
        f"{payload['sim_events_per_sec']:,.0f} sim events/sec",
        "",
        runner.report(),
        "",
        f"  [saved to {json_path}]",
    ]
    save_table("traffic_replay", "\n".join(lines))

    # Sanity: every request completed and the burst is visible.
    for phase, stats in phases.items():
        assert stats["completions"] == stats["arrivals"], phase
    assert phases["burst"]["wait_p99_ns"] > phases["diurnal-0"]["wait_p99_ns"]
