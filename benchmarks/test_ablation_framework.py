"""Ablations over the framework's design knobs (DESIGN.md §5).

1. Trampoline/dispatch cost vs hash-table overhead (the Figure 2c knob);
2. BPF interpretation cost (per-instruction ns) vs policy hook cost —
   the "revisit eBPF overhead" discussion in the paper's §6;
3. Policy chain depth vs per-decision cost (composition price);
4. Livepatch quiescence (switch latency) vs critical-section length;
5. Shuffle window vs NUMA batching quality.
"""

import pytest

from repro.bpf.vm import VM
from repro.concord import Concord, PolicySpec
from repro.concord.policies import make_numa_policy
from repro.kernel import Kernel
from repro.locks import MCSLock, ShflLock, NumaPolicy
from repro.sim import Topology, ops

from .conftest import DURATION_NS


def _hashtable_like(topo, seed, dispatch_ns=None, chain_depth=0, per_insn_ns=None):
    """One contended-lock run.  ``dispatch_ns=None`` is the baseline:
    the same NUMA policy *compiled in* (so every configuration shuffles
    identically and only the framework costs differ)."""
    kernel = Kernel(topo, seed=seed)
    if dispatch_ns is None and not chain_depth:
        site = kernel.add_lock(
            "ab.lock", ShflLock(kernel.engine, name="impl", policy=NumaPolicy())
        )
    else:
        site = kernel.add_lock("ab.lock", ShflLock(kernel.engine, name="impl"))
        vm = VM(per_insn_ns=per_insn_ns) if per_insn_ns is not None else None
        concord = Concord(kernel, dispatch_ns=dispatch_ns or 35, vm=vm)
        concord.load_policy(make_numa_policy(lock_selector="ab.lock"))
        for index in range(chain_depth):
            concord.load_policy(
                PolicySpec(
                    name=f"extra{index}",
                    hook="cmp_node",
                    source="def p(ctx):\n    return 0\n",
                    lock_selector="ab.lock",
                )
            )
    rng = kernel.engine.rng

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(120)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 250))

    order = topo.fill_order()
    for index in range(16):
        kernel.spawn(worker, cpu=order[index], at=rng.randint(0, 10_000))
    kernel.run(until=DURATION_NS)
    return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)


def _trampoline_only(topo, seed, trampoline_ns):
    """FIFO lock, all threads on ONE socket; only the patched-site
    trampoline varies.  NUMA and shuffling are deliberately excluded:
    cross-socket queue orderings form multi-stable attractors whose
    selection a 40ns perturbation can flip, swamping the direct cost
    this ablation isolates (that hysteresis is measured by the shuffle-
    window ablation instead)."""
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_lock("ab.lock", ShflLock(kernel.engine, name="impl"))
    if trampoline_ns is not None:
        site.set_patched(True, trampoline_ns=trampoline_ns)
    rng = kernel.engine.rng

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(120)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 250))

    for cpu in topo.cpus_of_socket(0):
        kernel.spawn(worker, cpu=cpu, at=rng.randint(0, 10_000))
    kernel.run(until=DURATION_NS)
    return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)


def test_ablation_trampoline_cost(benchmark, topo, save_table):
    """Figure 2c's overhead is (mostly) the dispatch cost: sweep it."""

    def run():
        seeds = (71, 171, 271)
        baseline = sum(_trampoline_only(topo, s, None) for s in seeds)
        return {
            ns: sum(_trampoline_only(topo, s, ns) for s in seeds) / baseline
            for ns in (0, 20, 40, 80)
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: trampoline/dispatch cost vs normalized throughput",
             f"  {'dispatch_ns':>12} {'normalized':>11}"]
    for ns, ratio in ratios.items():
        lines.append(f"  {ns:>12} {ratio:>11.3f}")
        benchmark.extra_info[f"dispatch={ns}"] = round(ratio, 3)
    save_table("ablation_trampoline", "\n".join(lines))
    # Higher dispatch cost, lower throughput (it sits on the critical path).
    assert ratios[80] < ratios[0]
    assert ratios[80] < 0.95


def test_ablation_vm_interpretation_cost(benchmark, topo, save_table):
    """The §6 'revisit eBPF design' knob: per-instruction interpretation
    cost.  A JIT would approach per_insn=0."""

    def run():
        # Concord-to-Concord: the per_insn=2 default is the baseline, so
        # shuffling machinery is identical and only the VM knob moves.
        seeds = (72, 172, 272, 372, 472)
        baseline = sum(
            _hashtable_like(topo, seed=s, dispatch_ns=35, per_insn_ns=2)
            for s in seeds
        )
        return {
            per_insn: sum(
                _hashtable_like(topo, seed=s, dispatch_ns=35, per_insn_ns=per_insn)
                for s in seeds
            )
            / baseline
            for per_insn in (0, 2, 10, 30)
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: BPF interpretation cost (ns/insn) vs normalized throughput",
             f"  {'per_insn_ns':>12} {'normalized':>11}"]
    for per_insn, ratio in ratios.items():
        lines.append(f"  {per_insn:>12} {ratio:>11.3f}")
        benchmark.extra_info[f"per_insn={per_insn}"] = round(ratio, 3)
    save_table("ablation_vm_cost", "\n".join(lines))
    # Finding: cmp_node interpretation happens while *waiting*, so even a
    # 15x per-instruction cost stays within the shuffling dynamics' noise
    # band — hook placement, not the VM, protects the fast path.
    assert 0.7 < ratios[30] < 1.3
    assert 0.7 < ratios[0] < 1.3


def test_ablation_policy_chain_depth(benchmark, topo, save_table):
    """Composition price: every chained program runs on each decision."""

    def run():
        seeds = (73, 173, 273, 373, 473)
        baseline = sum(_hashtable_like(topo, seed=s, dispatch_ns=35) for s in seeds)
        return {
            depth: sum(
                _hashtable_like(topo, seed=s, dispatch_ns=35, chain_depth=depth)
                for s in seeds
            )
            / baseline
            for depth in (0, 1, 3, 6)
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: cmp_node chain depth vs normalized throughput",
             f"  {'extra policies':>15} {'normalized':>11}"]
    for depth, ratio in ratios.items():
        lines.append(f"  {depth:>15} {ratio:>11.3f}")
        benchmark.extra_info[f"depth={depth}"] = round(ratio, 3)
    save_table("ablation_chain_depth", "\n".join(lines))
    # Finding: chained decision programs run off the critical path, so
    # composition stays within the noise band even at depth 6.
    assert 0.7 < ratios[6] < 1.35


def test_ablation_switch_quiescence(benchmark, topo, save_table):
    """Patch latency = drain time: grows with critical-section length."""

    def measure(cs_ns):
        kernel = Kernel(topo, seed=74)
        site = kernel.add_lock("ab.lock", MCSLock(kernel.engine, name="impl"))
        concord = Concord(kernel)
        rng = kernel.engine.rng

        def worker(task):
            while True:
                yield from site.acquire(task)
                yield ops.Delay(cs_ns)
                yield from site.release(task)
                yield ops.Delay(rng.randint(0, 100))

        for index in range(8):
            kernel.spawn(worker, cpu=index, at=rng.randint(0, 5_000))
        kernel.run(until=100_000)
        concord.switch_lock(
            "ab.lock", lambda old: ShflLock(kernel.engine, name="new", policy=NumaPolicy())
        )
        kernel.run(until=kernel.now + 50 * cs_ns + 200_000)
        return concord.switch_latency("ab.lock")

    def run():
        return {cs: measure(cs) for cs in (100, 1_000, 10_000)}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: livepatch quiescence latency vs critical-section length",
             f"  {'cs_ns':>8} {'switch latency (ns)':>20}"]
    for cs, latency in latencies.items():
        lines.append(f"  {cs:>8} {latency:>20}")
        benchmark.extra_info[f"cs={cs}"] = latency
    save_table("ablation_quiescence", "\n".join(lines))
    assert latencies[10_000] > latencies[100]


def test_ablation_shuffle_window(benchmark, topo, save_table):
    """Shuffling budget: larger windows group better, to a point."""

    def throughput(window):
        kernel = Kernel(topo, seed=75)
        site = kernel.add_lock(
            "ab.lock",
            ShflLock(kernel.engine, name="impl", policy=NumaPolicy(),
                     max_shuffle_window=window),
        )
        rng = kernel.engine.rng

        def worker(task):
            task.stats["ops"] = 0
            while True:
                yield from site.acquire(task)
                yield ops.Delay(100)
                yield from site.release(task)
                task.stats["ops"] += 1
                yield ops.Delay(rng.randint(0, 300))

        order = topo.fill_order()
        for index in range(40):
            kernel.spawn(worker, cpu=order[index], at=rng.randint(0, 20_000))
        kernel.run(until=DURATION_NS)
        return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)

    def run():
        return {window: throughput(window) for window in (1, 4, 16, 64)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: shuffle window vs lock2-style throughput (40 threads)",
             f"  {'window':>8} {'ops':>10}"]
    for window, total in results.items():
        lines.append(f"  {window:>8} {total:>10}")
        benchmark.extra_info[f"window={window}"] = total
    save_table("ablation_shuffle_window", "\n".join(lines))
    assert results[16] > results[1] * 0.9  # wider windows never catastrophic
