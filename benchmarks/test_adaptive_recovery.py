"""Adaptive overload defense: what culling buys, and how fast the loop acts.

Two exhibits in one artifact (``results/BENCH_adaptive.json``):

* **Throughput around the knee** — the Malthusian bench swept stock
  (MCS admits everyone) vs pre-culled (``CullingLock`` cap 2) across
  the collapse.  Below the knee the two are equivalent; past it the
  stock curve falls off while the culled curve holds, which is the
  whole Malthusian claim in one table.
* **Detect -> keep latency** — the closed adaptation loop run against
  a live collapse: simulated nanoseconds from the first post-collapse
  window to the cull being judged *kept* (detection window + canary +
  clearance check).  This is the reaction time an operator no longer
  has to provide.
"""

from __future__ import annotations

import json
import os
import time

from repro.concord import Concord
from repro.controlplane import AdaptationLoop, Concordd, PolicyJournal
from repro.kernel import Kernel
from repro.locks.culling import CullingLock
from repro.sim import Topology
from repro.workloads import (
    MalthusianBench,
    ascii_chart,
    format_sweep_table,
    knee_threads,
    sweep,
)

from .conftest import RESULTS_DIR, run_once

#: The bench's calibrated machine (the tests' 2x4 box, not the paper
#: machine): the knee must sit inside the swept range.
TOPO = Topology(sockets=2, cores_per_socket=4)
THREADS = [1, 2, 3, 4, 6, 8]
DURATION_NS = 2_000_000
WARMUP_NS = 200_000
CAP = 2


class CulledMalthusianBench(MalthusianBench):
    """The same crowd-sensitive workload with the cull pre-installed."""

    def __init__(self, cap: int = CAP, **kwargs) -> None:
        super().__init__(**kwargs)
        self.cap = cap
        self.name = f"malthus-cull{cap}"

    def setup(self, kernel: Kernel) -> None:
        self.site = kernel.add_lock(
            "bench.malthus",
            CullingLock(kernel.engine, name="bench.malthus", cap=self.cap),
        )


def _sweeps():
    stock = sweep(
        lambda: MalthusianBench(),
        TOPO,
        THREADS,
        duration_ns=DURATION_NS,
        warmup_ns=WARMUP_NS,
    )
    culled = sweep(
        lambda: CulledMalthusianBench(),
        TOPO,
        THREADS,
        duration_ns=DURATION_NS,
        warmup_ns=WARMUP_NS,
    )
    return stock, culled


def _adaptation_latency():
    """Drive the closed loop over a live collapse; returns sim-ns from
    the first collapsed window to the kept verdict."""
    kernel = Kernel(TOPO, seed=42)
    bench = MalthusianBench()
    bench.setup(kernel)
    daemon = Concordd(Concord(kernel), journal=PolicyJournal())
    loop = AdaptationLoop(
        daemon=daemon,
        selector="bench.*",
        window_ns=400_000,
        baseline_ns=80_000,
        canary_ns=120_000,
        check_every_ns=20_000,
    )
    order = kernel.topology.fill_order()

    def spawn(start, count):
        for i in range(start, start + count):
            kernel.spawn(
                lambda task, i=i: bench.worker(task, i),
                cpu=order[i],
                name=f"malthus-{i}",
            )

    spawn(0, 4)
    kernel.run(until=kernel.now + 100_000)
    assert loop.run_once().outcome == "idle"  # the healthy reference
    spawn(4, 4)
    kernel.run(until=kernel.now + 100_000)
    collapse_starts = kernel.now
    decisions = loop.run(passes=6)
    kept = decisions[-1]
    assert kept.outcome == "kept", kept.describe()
    return kernel.now - collapse_starts, kept


def _run_all():
    start = time.perf_counter()
    stock, culled = _sweeps()
    latency_ns, kept = _adaptation_latency()
    wall_s = time.perf_counter() - start
    return stock, culled, latency_ns, kept, wall_s


def test_adaptive_recovery(benchmark, save_table):
    stock, culled, latency_ns, kept, wall_s = run_once(_run_all)(benchmark)

    knee = knee_threads(stock)
    stock_at = {p.threads: p.ops_per_msec for p in stock.points}
    culled_at = {p.threads: p.ops_per_msec for p in culled.points}
    recovery = culled_at[8] / stock_at[8]

    payload = {
        "bench": "adaptive_recovery",
        "threads": THREADS,
        "stock_ops_per_msec": {str(t): round(r, 1) for t, r in stock_at.items()},
        "culled_ops_per_msec": {str(t): round(r, 1) for t, r in culled_at.items()},
        "cull_cap": CAP,
        "measured_knee_threads": knee,
        "recovery_at_8_threads": round(recovery, 3),
        "adaptation_latency_sim_ns": latency_ns,
        "kept_policy": kept.policy,
        "wall_s": round(wall_s, 4),
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_adaptive.json")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info.update(payload)

    table = format_sweep_table(
        [stock, culled], "Malthusian collapse: stock vs culled (ops/msec)"
    )
    chart = ascii_chart(
        {"stock": stock.series(), f"cull{CAP}": culled.series()},
        title="throughput around the knee",
    )
    lines = [
        table,
        "",
        chart,
        "",
        f"  measured knee: {knee} threads; "
        f"recovery at 8 threads: {recovery:.2f}x stock",
        f"  detect -> keep: {latency_ns} sim-ns "
        f"({kept.policy}, cap {CAP})",
        f"  [saved to {json_path}]",
    ]
    save_table("adaptive_recovery", "\n".join(lines))

    # The claims the artifact rides on: the stock curve has an interior
    # knee, the cull restores most of the lost throughput past it, and
    # the loop judged a cull without operator input.
    assert knee is not None and knee < 8
    assert recovery > 1.5, f"culling recovered only {recovery:.2f}x"
    assert culled_at[8] > 0.6 * max(stock_at.values())
    assert latency_ns > 0
