"""§3.1.1 lock inheritance: un-stall multi-lock chains.

The rename workload produces L1-then-L2 chains: a renamer holds the
rename mutex and a directory lock while queueing FIFO behind lock-free
creators for the second directory.  The inheritance policy moves
lock-holding waiters forward; we compare rename latency percentiles and
per-class throughput against plain FIFO.
"""

import pytest

from repro.workloads import RenameBench, run_throughput

from .conftest import DURATION_NS


@pytest.fixture(scope="module")
def inheritance(topo):
    out = {}
    for mode in ("fifo", "inheritance"):
        workload = RenameBench(mode, renamer_ratio=1 / 16, files=64)
        result = run_throughput(workload, topo, threads=32, duration_ns=DURATION_NS)
        out[mode] = result
    return out


def test_usecase_lock_inheritance(benchmark, inheritance, save_table):
    data = benchmark.pedantic(lambda: inheritance, rounds=1, iterations=1)
    fifo, inh = data["fifo"], data["inheritance"]
    lines = ["Use case: lock inheritance (rename chains vs creators, 32 threads)"]
    for label, result in (("FIFO", fifo), ("inheritance", inh)):
        lines.append(
            f"  {label:<12} renames={result.extras['renames']:>6} "
            f"p50={result.extras.get('rename_p50_ns', 0):>8}ns "
            f"p99={result.extras.get('rename_p99_ns', 0):>8}ns "
            f"total={result.ops_per_msec:.0f} ops/msec"
        )
    save_table("usecase_lock_inheritance", "\n".join(lines))

    benchmark.extra_info["fifo p50"] = fifo.extras.get("rename_p50_ns")
    benchmark.extra_info["inheritance p50"] = inh.extras.get("rename_p50_ns")

    # The policy must cut the chained operation's latency...
    assert inh.extras["rename_p50_ns"] < 0.92 * fifo.extras["rename_p50_ns"]
    assert inh.extras["rename_p99_ns"] < fifo.extras["rename_p99_ns"]
    # ...and not reduce rename completions...
    assert inh.extras["renames"] >= 0.9 * fifo.extras["renames"]
    # ...without cratering overall throughput (policy costs allowed).
    assert inh.ops_per_msec > 0.5 * fifo.ops_per_msec
