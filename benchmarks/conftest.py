"""Shared benchmark infrastructure.

Every benchmark regenerates one exhibit from the paper (or one §3 use
case / design ablation).  Conventions:

* thread sweeps use the paper's 8-socket, 80-core machine;
* each bench saves its human-readable table under
  ``benchmarks/results/<name>.txt`` (pytest captures stdout, so files
  are the reliable artifact) and also prints it (visible with ``-s``);
* the wall-clock number pytest-benchmark reports is the cost of
  *simulating* the exhibit once — useful for tracking simulator
  performance, not a claim about lock performance.  The lock results
  live in the tables and in ``benchmark.extra_info``.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import paper_machine

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The paper's x-axis (Figure 2 sweeps 0..80; we sample it).
PAPER_THREADS = [1, 10, 20, 40, 80]
#: Simulated measurement window per point.
DURATION_NS = 2_000_000


@pytest.fixture(scope="session")
def topo():
    return paper_machine()


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    def _save(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(fn):
    """Adapter: run an expensive simulation exactly once under
    pytest-benchmark (rounds=1 — a deterministic simulation has no
    run-to-run variance worth paying for)."""

    def runner(benchmark):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
