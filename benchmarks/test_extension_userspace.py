"""Extension exhibit (§6): userspace locks — interposition vs retuning.

"Existing techniques, such as library interposition, allow only a one
time change to a different lock implementation when the application
starts its execution."  The cost of being stuck with the startup choice:
an application whose workload shifts mid-run (uniform -> all threads
hammer one lock) keeps the wrong lock under interposition, while C3
retunes it live.
"""

import pytest

from repro.kernel import Kernel
from repro.locks import MCSLock, ShflLock, NumaPolicy
from repro.sim import ops, paper_machine
from repro.userspace import UserspaceRuntime

from .conftest import DURATION_NS

_THREADS = 32


def _run(retune_at_shift, seed=91):
    """Phase 1: light contention (MCS is fine).  Phase 2: heavy NUMA
    contention (ShflLock-NUMA is the right lock).  Returns phase-2 ops."""
    topo = paper_machine()
    kernel = Kernel(topo, seed=seed)
    runtime = UserspaceRuntime(kernel, app_name="svc")
    site = runtime.create_lock("hot", MCSLock(kernel.engine, name="svc.hot"))
    rng = kernel.engine.rng
    shift_at = DURATION_NS
    stop_at = 2 * DURATION_NS
    phase2_ops = {"n": 0}

    def worker(task):
        while task.engine.now < stop_at:
            yield from site.acquire(task)
            yield ops.Delay(120)
            yield from site.release(task)
            if task.engine.now >= shift_at:
                phase2_ops["n"] += 1
            # Phase 1: long think (light contention); phase 2: hot loop.
            high = 5_000 if task.engine.now < shift_at else 400
            yield ops.Delay(rng.randint(0, high))

    order = topo.fill_order()
    for index in range(_THREADS):
        runtime.spawn(worker, cpu=order[index], at=rng.randint(0, 20_000))

    if retune_at_shift:
        kernel.engine.call_at(
            shift_at,
            lambda: runtime.retune(
                "hot",
                lambda old: ShflLock(kernel.engine, name="svc.hot2", policy=NumaPolicy()),
            ),
        )
    kernel.run(until=stop_at + 100_000)
    return phase2_ops["n"]


@pytest.fixture(scope="module")
def userspace():
    return {"interposed (stuck)": _run(False), "retuned live": _run(True)}


def test_extension_userspace_retuning(benchmark, userspace, save_table):
    data = benchmark.pedantic(lambda: userspace, rounds=1, iterations=1)
    stuck = data["interposed (stuck)"]
    retuned = data["retuned live"]
    gain = retuned / stuck
    save_table(
        "extension_userspace",
        "Extension: userspace lock control after a mid-run workload shift\n"
        f"  interposition (startup choice only) : {stuck:>8} phase-2 ops\n"
        f"  C3 retuning (switched at the shift) : {retuned:>8} phase-2 ops  ({gain:.2f}x)",
    )
    benchmark.extra_info["gain"] = round(gain, 2)
    assert gain > 1.1
