"""Extension exhibit (§2.2 + §6): the read-side mechanism spectrum.

The paper's background frames lock design as an evolution driven by
hardware, and its discussion wants Concord extended beyond locks (RCU,
seqlocks, optimistic schemes).  This bench lines the whole spectrum up
on one read-mostly workload: reader throughput at increasing core
counts for every read-side mechanism in the repository.

Expected ordering at scale (and asserted):
    rwsem  <  BRAVO  <  per-CPU  <=  seqlock  <=  RCU
because each step removes more shared-line traffic from the read path.
"""

import pytest

from repro.kernel import RCU, Kernel
from repro.locks import BravoLock, PerCPURWLock, RWSemaphore, SeqLock
from repro.sim import ops

from .conftest import DURATION_NS

THREADS = [1, 10, 40, 80]
_READ_NS = 300


def _measure(topo, make_ctx, readers, seed=81):
    """make_ctx(kernel) -> (enter, exit) generator-functions."""
    kernel = Kernel(topo, seed=seed)
    enter, leave = make_ctx(kernel)
    rng = kernel.engine.rng

    def reader(task):
        task.stats["ops"] = 0
        while True:
            yield from enter(task)
            yield ops.Delay(_READ_NS)
            yield from leave(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 200))

    order = topo.fill_order()
    for index in range(readers):
        kernel.spawn(reader, cpu=order[index], at=rng.randint(0, 20_000))
    kernel.run(until=DURATION_NS)
    return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)


def _rwsem(kernel):
    lock = RWSemaphore(kernel.engine, name="sem")
    return lock.read_acquire, lock.read_release


def _bravo(kernel):
    lock = BravoLock(kernel.engine, RWSemaphore(kernel.engine, name="sem"))
    return lock.read_acquire, lock.read_release


def _percpu(kernel):
    lock = PerCPURWLock(kernel.engine, name="pcpu")
    return lock.read_acquire, lock.read_release


def _seqlock(kernel):
    lock = SeqLock(kernel.engine, name="seq")

    def enter(task):
        task.stats["_seq"] = yield from lock.read_begin(task)

    def leave(task):
        yield from lock.read_retry(task, task.stats["_seq"])

    return enter, leave


def _rcu(kernel):
    rcu = RCU(kernel)
    return rcu.read_lock, rcu.read_unlock


_MECHANISMS = {
    "rwsem": _rwsem,
    "bravo": _bravo,
    "percpu-rw": _percpu,
    "seqlock": _seqlock,
    "rcu": _rcu,
}


@pytest.fixture(scope="module")
def spectrum(topo):
    return {
        name: {n: _measure(topo, ctx, n) for n in THREADS}
        for name, ctx in _MECHANISMS.items()
    }


def test_extension_read_path_spectrum(benchmark, spectrum, save_table):
    data = benchmark.pedantic(lambda: spectrum, rounds=1, iterations=1)
    header = f"{'#threads':>9}" + "".join(f"{name:>12}" for name in _MECHANISMS)
    lines = [
        "Extension: read-side mechanism spectrum (reader ops, read-only)",
        header,
        "-" * len(header),
    ]
    for n in THREADS:
        lines.append(f"{n:>9}" + "".join(f"{data[name][n]:>12}" for name in _MECHANISMS))
    save_table("extension_read_paths", "\n".join(lines))
    at80 = {name: data[name][80] for name in _MECHANISMS}
    for name, value in at80.items():
        benchmark.extra_info[f"{name}@80"] = value

    # The evolution ordering the background section describes:
    assert at80["bravo"] > 1.5 * at80["rwsem"]
    assert at80["percpu-rw"] > at80["rwsem"]
    assert at80["rcu"] >= 0.9 * at80["percpu-rw"]
    # RCU's read side is traffic-free: near-linear in thread count.
    assert data["rcu"][80] > 30 * data["rcu"][1]
