"""§3.2 dynamic lock profiling: selectivity is the feature.

"They can profile all spinlocks running in the kernel, locks in a
specific function, code path or namespace, or even a single lock
instance" — unlike lockstat, which profiles everything and charges
everyone.  We measure workload throughput (a) unprofiled, (b) with only
the hot lock profiled, and (c) with every lock profiled (the lockstat
strawman), and show the profiler correctly fingers the bottleneck.
"""

import pytest

from repro.concord import Concord, LockProfiler
from repro.kernel import Kernel, VFS
from repro.locks import ShflLock
from repro.sim import Topology, ops

from .conftest import DURATION_NS

_THREADS = 12


def _build(seed=61):
    topo = Topology(sockets=2, cores_per_socket=8)
    kernel = Kernel(topo, seed=seed)
    # One hot lock, many cold ones (a VFS tree's worth).
    kernel.add_lock("hot.lock", ShflLock(kernel.engine, name="hot"))
    vfs = VFS(kernel)
    return kernel, vfs


def _run(selector, seed=61):
    kernel, vfs = _build(seed)
    concord = Concord(kernel)
    session = LockProfiler(concord).start(selector) if selector else None
    site = kernel.locks.get("hot.lock")
    rng = kernel.engine.rng

    def hot_worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(300)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 200))

    def cold_worker(task):
        task.stats["ops"] = 0
        seq = 0
        while True:
            name = f"{task.name}.{seq}"
            seq += 1
            yield from vfs.create(task, vfs.root, name)
            yield from vfs.unlink(task, vfs.root, name)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 400))

    for index in range(_THREADS):
        body = hot_worker if index % 2 == 0 else cold_worker
        kernel.spawn(body, cpu=index, name=f"w{index}", at=rng.randint(0, 10_000))
    kernel.run(until=DURATION_NS)
    total = sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)
    report = session.stop() if session else None
    return total, report


@pytest.fixture(scope="module")
def profiling():
    unprofiled, _ = _run(None)
    single, single_report = _run("hot.lock")
    everything, full_report = _run("*")
    return {
        "unprofiled": unprofiled,
        "single": single,
        "everything": everything,
        "single_report": single_report,
        "full_report": full_report,
    }


def test_usecase_profiling(benchmark, profiling, save_table):
    data = benchmark.pedantic(lambda: profiling, rounds=1, iterations=1)
    single_cost = data["single"] / data["unprofiled"]
    full_cost = data["everything"] / data["unprofiled"]
    hottest = data["full_report"].hottest()
    lines = [
        "Use case: dynamic lock profiling (ops, normalized to unprofiled)",
        f"  unprofiled          : {data['unprofiled']:>8}  (1.000)",
        f"  single-lock profile : {data['single']:>8}  ({single_cost:.3f})",
        f"  profile everything  : {data['everything']:>8}  ({full_cost:.3f})  <- the lockstat strawman",
        "",
        "Report for the selective session:",
        data["single_report"].format(),
        "",
        f"Hottest lock per the full profile: {hottest.lock_name}",
    ]
    save_table("usecase_profiling", "\n".join(lines))
    benchmark.extra_info["single cost"] = round(single_cost, 3)
    benchmark.extra_info["full cost"] = round(full_cost, 3)

    # Selective profiling must be cheaper than profile-everything.
    assert data["single"] > data["everything"]
    # The profiler correctly identifies the contended lock.
    assert hottest.lock_name == "hot.lock"
    # Selective profiling's cost stays bounded (the paper itself flags
    # eBPF profiling overhead as future work to reduce, §6).
    assert single_cost > 0.5
