"""§3.1.1 exposing scheduler semantics: vCPU-preemption-aware locking.

Double scheduling: the hypervisor periodically deschedules vCPUs.  If a
preempted vCPU's waiter is promoted to queue head, the whole lock stalls
until the vCPU runs again.  With the vcpu policy the hypervisor mirrors
scheduling state into a map and the shuffler groups *runnable* waiters
ahead of frozen ones.
"""

import pytest

from repro.concord import Concord
from repro.concord.policies import make_vcpu_policy
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import Topology, ops

from .conftest import DURATION_NS

_THREADS = 16
_FREEZE_NS = 150_000
_PERIOD_NS = 300_000


def _run(aware, seed=31):
    topo = Topology(sockets=2, cores_per_socket=8)
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_lock("uc.lock", ShflLock(kernel.engine, name="impl"))
    vcpu_map = None
    if aware:
        concord = Concord(kernel)
        spec, vcpu_map = make_vcpu_policy(nr_vcpus=topo.nr_cpus, lock_selector="uc.lock")
        concord.load_policy(spec)
    rng = kernel.engine.rng

    # The hypervisor: round-robin preemption of one vCPU at a time,
    # publishing its schedule into the policy map just before each freeze.
    def hypervisor(round_index=[0]):
        victim = round_index[0] % _THREADS
        round_index[0] += 1
        if vcpu_map is not None:
            vcpu_map[victim] = 0
            restore = victim

            def back():
                vcpu_map[restore] = 1

            kernel.engine.call_after(_FREEZE_NS, back)
        kernel.engine.freeze_cpu(victim, _FREEZE_NS)
        kernel.engine.call_after(_PERIOD_NS, hypervisor)

    kernel.engine.call_at(50_000, hypervisor)

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(300)
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 200))

    for index in range(_THREADS):
        kernel.spawn(worker, cpu=index, at=rng.randint(0, 10_000))
    kernel.run(until=3 * DURATION_NS)
    return sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)


@pytest.fixture(scope="module")
def vcpu():
    return {"oblivious": _run(False), "aware": _run(True)}


def test_usecase_vcpu_awareness(benchmark, vcpu, save_table):
    data = benchmark.pedantic(lambda: vcpu, rounds=1, iterations=1)
    gain = data["aware"] / data["oblivious"]
    save_table(
        "usecase_vcpu",
        "Use case: vCPU-preemption-aware waiter ordering\n"
        f"  oblivious : {data['oblivious']:>8} ops\n"
        f"  aware     : {data['aware']:>8} ops   ({gain:.2f}x)",
    )
    benchmark.extra_info["gain"] = round(gain, 2)
    # Knowing the hypervisor's schedule must not hurt, and should help.
    assert gain > 1.0
