"""Figure 2(b): lock2 — Stock vs ShflLock vs Concord-ShflLock.

Paper's claim: the NUMA-awareness policy loaded through Concord performs
like the compiled-in ShflLock policy — userspace policy injection costs
almost nothing — and both beat the stock queue lock once the workload
spans sockets.

Shape checks:

* stock (MCS/qspinlock) degrades once threads span sockets;
* ShflLock-NUMA beats stock at 80 threads;
* Concord-ShflLock lands within 20% of compiled ShflLock.
"""

import pytest

from repro.workloads import Lock2, ascii_chart, format_sweep_table, sweep

from .conftest import DURATION_NS, PAPER_THREADS


@pytest.fixture(scope="module")
def fig2b(topo):
    return {
        mode: sweep(
            lambda m=mode: Lock2(m),
            topo,
            PAPER_THREADS,
            duration_ns=DURATION_NS,
        )
        for mode in ("stock", "shfllock", "concord-shfllock")
    }


def test_fig2b_lock2(benchmark, fig2b, save_table):
    data = benchmark.pedantic(lambda: fig2b, rounds=1, iterations=1)
    table = format_sweep_table(
        [data["stock"], data["shfllock"], data["concord-shfllock"]],
        "Figure 2(b) lock2 (ops/msec)",
    )
    chart = ascii_chart(
        {mode: s.series() for mode, s in data.items()}, title="Figure 2(b) shape"
    )
    save_table("fig2b_lock2", table + "\n\n" + chart)

    stock, shfl, concord = data["stock"], data["shfllock"], data["concord-shfllock"]
    for mode, s in data.items():
        benchmark.extra_info[f"{mode}@80 ops/msec"] = round(s.at(80).ops_per_msec, 1)

    # Stock collapses across sockets.
    assert stock.at(80).ops_per_msec < max(p.ops_per_msec for p in stock.points) * 0.6
    # ShflLock's shuffling wins at scale.
    assert shfl.at(80).ops_per_msec > 1.15 * stock.at(80).ops_per_msec
    # Concord-injected policy is close to compiled-in.
    ratio = concord.at(80).ops_per_msec / shfl.at(80).ops_per_msec
    assert ratio > 0.8, f"Concord-ShflLock/ShflLock = {ratio:.3f}"


def test_fig2b_shuffling_active_in_both(benchmark, fig2b):
    """Mechanism check: both variants actually reorder the queue."""

    def extract():
        return (
            fig2b["shfllock"].at(80).extras,
            fig2b["concord-shfllock"].at(80).extras,
        )

    compiled, injected = benchmark.pedantic(extract, rounds=1, iterations=1)
    assert compiled["shuffle_moves"] > 0
    assert injected["shuffle_moves"] > 0
