"""§3.1.2 task-fair locks on AMP machines.

On an asymmetric part, slow cores' critical sections run N-times longer,
throttling a FIFO lock for everyone.  Userspace knows the platform (the
paper's M1/Alder Lake motivation) and declares the fast-core set; the
policy groups fast-core waiters forward, trading slow-core fairness for
lock throughput — exactly the trade §3.1.2 describes.
"""

import pytest

from repro.concord import Concord
from repro.concord.policies import make_amp_policy
from repro.kernel import Kernel
from repro.locks import ShflLock
from repro.sim import amp_machine, ops

from .conftest import DURATION_NS

_BIG = 4
_LITTLE = 12
_SLOWDOWN = 4.0


def _run(aware, seed=41):
    topo = amp_machine(big_cores=_BIG, little_cores=_LITTLE, little_slowdown=_SLOWDOWN)
    kernel = Kernel(topo, seed=seed)
    site = kernel.add_lock("uc.lock", ShflLock(kernel.engine, name="impl"))
    if aware:
        concord = Concord(kernel)
        spec, _fast = make_amp_policy(topo, lock_selector="uc.lock")
        concord.load_policy(spec)
    rng = kernel.engine.rng

    def worker(task):
        task.stats["ops"] = 0
        while True:
            yield from site.acquire(task)
            yield ops.Delay(400)  # scaled by core speed inside the engine
            yield from site.release(task)
            task.stats["ops"] += 1
            yield ops.Delay(rng.randint(0, 300))

    for cpu in range(topo.nr_cpus):
        kernel.spawn(worker, cpu=cpu, name=f"cpu{cpu}", at=rng.randint(0, 10_000))
    kernel.run(until=DURATION_NS)
    total = sum(t.stats.get("ops", 0) for t in kernel.engine.tasks)
    big_ops = sum(t.stats.get("ops", 0) for t in kernel.engine.tasks[:_BIG])
    return {"total": total, "big": big_ops, "little": total - big_ops}


@pytest.fixture(scope="module")
def amp():
    return {"fifo": _run(False), "amp-aware": _run(True)}


def test_usecase_amp(benchmark, amp, save_table):
    data = benchmark.pedantic(lambda: amp, rounds=1, iterations=1)
    fifo, aware = data["fifo"], data["amp-aware"]
    gain = aware["total"] / fifo["total"]
    lines = [
        f"Use case: AMP-aware locking ({_BIG} big + {_LITTLE} little @ {_SLOWDOWN}x slower)",
        f"  {'':10}{'total ops':>10}{'big-core ops':>14}{'little-core ops':>16}",
        f"  {'FIFO':<10}{fifo['total']:>10}{fifo['big']:>14}{fifo['little']:>16}",
        f"  {'AMP-aware':<10}{aware['total']:>10}{aware['big']:>14}{aware['little']:>16}",
        f"  throughput gain: {gain:.2f}x (fairness hazard: little cores wait longer)",
    ]
    save_table("usecase_amp", "\n".join(lines))
    benchmark.extra_info["gain"] = round(gain, 2)

    # Prioritizing fast cores improves aggregate lock throughput.
    # (Magnitude note for EXPERIMENTS.md: reorder-only decision hooks
    # cannot take turns *away* from slow cores in a closed loop, so the
    # gain comes from batching, not from starving little cores.)
    assert gain > 1.02
    # ...by shifting work toward big cores (the documented hazard).
    assert aware["big"] / aware["total"] > fifo["big"] / fifo["total"]
    # Little cores still make progress (bounded starvation).
    assert aware["little"] > 0
